"""AIMD window-controller math (no simulator)."""

import pytest

from repro.config import QosConfig
from repro.qos import AimdController


def test_additive_increase_every_probe_interval():
    ctl = AimdController(min_window=1, max_window=16, probe_interval=4)
    assert ctl.window == 1
    for _ in range(4):
        ctl.on_ack(1_000)
    assert ctl.window == 2
    for _ in range(8):
        ctl.on_ack(1_000)
    assert ctl.window == 4


def test_window_capped_at_max():
    ctl = AimdController(min_window=1, max_window=3, probe_interval=1)
    for _ in range(50):
        ctl.on_ack(1_000)
    assert ctl.window == 3


def test_rtt_inflation_cuts_multiplicatively():
    ctl = AimdController(min_window=1, max_window=64, probe_interval=1,
                         rtt_inflation=3.0, decrease=0.5, initial=16)
    ctl.on_ack(1_000)  # establishes best_rtt
    # Sustained queueing delay: smoothed RTT climbs past 3x best.
    for _ in range(200):
        ctl.on_ack(50_000)
        if ctl.cuts:
            break
    assert ctl.cuts == 1
    assert ctl.window == 8


def test_cooldown_absorbs_one_congestion_episode():
    """The inflated RTTs already queued when a cut fires must not each
    trigger another cut — one episode, one cut."""
    ctl = AimdController(min_window=1, max_window=64, probe_interval=1,
                         rtt_inflation=3.0, decrease=0.5, initial=32)
    ctl.on_ack(1_000)
    while not ctl.cuts:
        ctl.on_ack(100_000)
    window_after_first_cut = ctl.window
    for _ in range(ctl.window):  # the in-flight stragglers land
        ctl.on_ack(100_000)
    assert ctl.cuts == 1
    assert ctl.window == window_after_first_cut


def test_loss_cuts_and_respects_min():
    ctl = AimdController(min_window=2, max_window=64, initial=3)
    for _ in range(10):
        ctl.on_loss()
    assert ctl.window == 2
    assert ctl.losses == 10


def test_from_config_round_trip():
    qos = QosConfig(aimd_min_window=2, aimd_max_window=9,
                    aimd_probe_interval=5, aimd_rtt_inflation=4.0)
    ctl = AimdController.from_config(qos, initial=7)
    assert (ctl.min_window, ctl.max_window) == (2, 9)
    assert ctl.probe_interval == 5
    assert ctl.rtt_inflation == 4.0
    assert ctl.window == 7


def test_validates_parameters():
    with pytest.raises(ValueError):
        AimdController(rtt_smooth=0.0)
    with pytest.raises(ValueError):
        AimdController(rtt_inflation=1.0)
    with pytest.raises(ValueError):
        AimdController(decrease=1.0)
