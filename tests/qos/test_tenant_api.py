"""Tenant-scoped client API: golden default-path digest, typed
throttling (never a silent stall), fairness under skew, server-side
shed, and the flat-config deprecation shim."""

import pytest

from repro import (
    HydraCluster,
    QosConfig,
    SimConfig,
    TenantThrottled,
)
from repro.sim import Simulator

US = 1_000
MS = 1_000_000


def _cfg(**qos):
    return SimConfig().with_overrides(
        hydra={"msg_slots_per_conn": 8},
        client={"max_inflight_per_conn": 8, "rptr_cache_enabled": False},
        traversal={"enabled": False},
        qos=qos,
    )


def _mixed_ops(cluster, client, n=60):
    keys = [f"k{i:04d}".encode() for i in range(16)]

    def app():
        for i in range(n):
            key = keys[i % len(keys)]
            if i % 3 == 0:
                yield from client.put(key, b"v" * 32)
            elif i % 3 == 1:
                yield from client.get(key)
            else:
                yield from client.get_many(keys[:8])

    cluster.run(app())


# ---------------------------------------------------------------------------
# golden: the default tenant IS the legacy client


def _digest(tenant_kwargs) -> tuple[str, int]:
    sim = Simulator()
    sim.trace_schedule()
    cluster = HydraCluster(config=_cfg(), n_server_machines=1,
                           shards_per_server=1, n_client_machines=1,
                           sim=sim)
    cluster.start()
    client = cluster.client(**tenant_kwargs)
    _mixed_ops(cluster, client)
    return sim.schedule_digest(), sim.k_dispatched


def test_default_tenant_schedule_is_bit_identical_to_legacy():
    """``tenant="default"`` (no qos) must add ZERO events: same digest,
    same dispatch count, as the anonymous pre-tenant client."""
    legacy = _digest({})
    default_tenant = _digest({"tenant": "default"})
    assert default_tenant == legacy
    assert legacy[1] > 1_000  # the run was non-trivial


def test_named_tenant_changes_the_wire_but_still_completes():
    named = _digest({"tenant": "team-a"})
    assert named[1] > 1_000


# ---------------------------------------------------------------------------
# admission: typed errors, never silent stalls


def test_throttled_raises_promptly_without_retry_budget():
    cluster = HydraCluster(config=_cfg(), n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    cluster.start()
    client = cluster.client(tenant="t", deadline_us=0,
                            qos=QosConfig(rate_ops=1_000.0, burst=1))
    hits = {}

    def app():
        yield from client.put(b"k", b"v")  # burst token
        t0 = cluster.sim.now
        with pytest.raises(TenantThrottled) as err:
            yield from client.put(b"k", b"v")
        hits["elapsed"] = cluster.sim.now - t0
        hits["retry_after"] = err.value.retry_after_ns
        hits["tenant"] = err.value.tenant

    cluster.run(app())
    # Prompt refusal with an actionable hint — not a stall-until-timeout.
    assert hits["elapsed"] < 1 * MS
    assert 0 < hits["retry_after"] <= 1 * MS
    assert hits["tenant"] == "t"
    assert cluster.metrics.counter("client.tenant.t.throttled").value > 0


def test_throttled_with_budget_sleeps_and_completes():
    """With a retry budget the op waits out the refill and succeeds —
    throttling shapes, it does not lose work."""
    cluster = HydraCluster(config=_cfg(), n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    cluster.start()
    client = cluster.client(tenant="t",
                            qos=QosConfig(rate_ops=10_000.0, burst=1))
    done = {}

    def app():
        t0 = cluster.sim.now
        for _ in range(5):
            yield from client.put(b"k", b"v")
        done["elapsed"] = cluster.sim.now - t0

    cluster.run(app())
    # Four ops waited ~100us each for the bucket; none failed.
    assert done["elapsed"] >= 4 * 100 * US
    assert done["elapsed"] < 10 * MS


def test_batch_larger_than_burst_is_admitted_in_chunks():
    cluster = HydraCluster(config=_cfg(), n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    cluster.start()
    client = cluster.client(tenant="t",
                            qos=QosConfig(rate_ops=100_000.0, burst=2))
    ok = {}

    def app():
        pairs = [(f"k{i}".encode(), b"v") for i in range(8)]
        yield from client.put_many(pairs)  # 8 ops through a 2-deep bucket
        ok["done"] = True

    cluster.run(app())
    assert ok.get("done")


# ---------------------------------------------------------------------------
# fairness under skew


def _contended_victim_share(fair_queueing: bool) -> float:
    cluster = HydraCluster(config=_cfg(), n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    cluster.start()
    victim = cluster.client(
        tenant="victim", qos=QosConfig(fair_queueing=fair_queueing))
    agg = cluster.client(
        tenant="agg", qos=QosConfig(fair_queueing=fair_queueing))
    horizon = cluster.sim.now + 3 * MS
    served = {"victim": 0, "agg": 0}
    keys = [f"k{i:04d}".encode() for i in range(16)]

    def preload():
        for key in keys:
            yield from victim.put(key, b"v" * 32)

    cluster.run(preload())

    def pound(client, name, batch):
        while cluster.sim.now < horizon:
            if name == "victim":
                yield from client.get_many(keys[:batch])
            else:
                yield from client.put_many([(k, b"w" * 32)
                                            for k in keys[:batch]])
            if cluster.sim.now < horizon:
                served[name] += batch

    cluster.run(pound(victim, "victim", 8),
                pound(agg, "agg", 8), pound(agg, "agg", 8))
    total = served["victim"] + served["agg"]
    return served["victim"] / total if total else 0.0


def test_fair_queueing_lifts_victim_share_under_skew():
    """One victim process vs two aggressor processes on shared slots:
    DRR arbitration must pull the victim's share toward half."""
    without = _contended_victim_share(fair_queueing=False)
    with_fq = _contended_victim_share(fair_queueing=True)
    assert with_fq > without
    assert with_fq >= 0.35  # near-equal split, not a starved straggler


# ---------------------------------------------------------------------------
# server-side shed


def test_server_shed_is_typed_and_counted():
    cluster = HydraCluster(config=_cfg(server_shed_slots=2),
                           n_server_machines=1, shards_per_server=1,
                           n_client_machines=1)
    cluster.start()
    client = cluster.client(tenant="flood", deadline_us=0)
    seen = {"throttled": 0, "ok": 0}

    def flood():
        pairs = [(f"k{i:04d}".encode(), b"v" * 32) for i in range(32)]
        for _ in range(4):
            try:
                yield from client.put_many(pairs)
                seen["ok"] += 1
            except TenantThrottled as exc:
                assert exc.retry_after_ns > 0
                seen["throttled"] += 1

    cluster.run(flood())
    assert seen["throttled"] > 0
    assert cluster.metrics.counter("shard.shed_ops").value > 0
    assert cluster.metrics.counter(
        "client.tenant.flood.server_shed").value > 0


# ---------------------------------------------------------------------------
# config shim


@pytest.fixture(autouse=True)
def _fresh_deprecation_state():
    """The moved-key warning fires once per process; reset per test."""
    from repro import config as config_mod
    config_mod._warned_moved_keys.clear()
    yield
    config_mod._warned_moved_keys.clear()


def test_moved_hydra_keys_resolve_with_deprecation_warning():
    cfg = SimConfig()
    with pytest.warns(DeprecationWarning, match="max_inflight_per_conn"):
        assert cfg.hydra.max_inflight_per_conn == \
            cfg.client.max_inflight_per_conn
    with pytest.warns(DeprecationWarning, match="index_traversal"):
        assert cfg.hydra.index_traversal == cfg.traversal.enabled


def test_moved_hydra_key_writes_forward_to_new_section():
    cfg = SimConfig()
    with pytest.warns(DeprecationWarning):
        cfg.hydra.op_timeout_ns = 123_456
    assert cfg.client.op_timeout_ns == 123_456


def test_with_overrides_accepts_legacy_flat_keys():
    with pytest.warns(DeprecationWarning):
        cfg = SimConfig().with_overrides(
            hydra={"max_inflight_per_conn": 5})
    assert cfg.client.max_inflight_per_conn == 5


def test_unknown_hydra_key_still_raises():
    cfg = SimConfig()
    with pytest.raises(AttributeError):
        _ = cfg.hydra.definitely_not_a_knob
