"""Deficit-round-robin scheduling math and slot-arbiter accounting."""

import pytest

from repro.qos import DeficitRoundRobin, SlotArbiter
from repro.sim import Simulator


def _drain(drr, eligible=None, limit=1_000):
    order = []
    for _ in range(limit):
        nxt = drr.next(eligible=eligible)
        if nxt is None:
            break
        order.append(nxt)
    return order


def test_equal_weights_alternate():
    drr = DeficitRoundRobin()
    for i in range(4):
        drr.enqueue("a", f"a{i}")
        drr.enqueue("b", f"b{i}")
    tenants = [t for t, _ in _drain(drr)]
    assert tenants == ["a", "b"] * 4


def test_weighted_service_ratio():
    drr = DeficitRoundRobin()
    for i in range(90):
        drr.enqueue("heavy", i, weight=2.0)
        drr.enqueue("light", i, weight=1.0)
    served = [t for t, _ in _drain(drr, limit=45)]
    heavy = served.count("heavy")
    light = served.count("light")
    assert heavy == pytest.approx(2 * light, abs=2)


def test_fifo_within_tenant():
    drr = DeficitRoundRobin()
    for i in range(5):
        drr.enqueue("a", i)
    assert [item for _, item in _drain(drr)] == [0, 1, 2, 3, 4]


def test_drained_queue_forfeits_deficit():
    """An idle tenant cannot bank credit while away (standard DRR)."""
    drr = DeficitRoundRobin()
    drr.enqueue("a", "a0")
    assert drr.next() == ("a", "a0")  # queue drains; deficit forfeited
    for i in range(4):
        drr.enqueue("a", f"a{i + 1}")
        drr.enqueue("b", f"b{i}")
    tenants = [t for t, _ in _drain(drr)]
    # a gets no head start from its earlier visit
    assert tenants.count("a") == tenants.count("b")


def test_remove_withdraws_queued_item():
    drr = DeficitRoundRobin()
    drr.enqueue("a", "x")
    drr.enqueue("a", "y")
    assert drr.remove("a", "x")
    assert not drr.remove("a", "x")
    assert _drain(drr) == [("a", "y")]


def test_eligible_veto_skips_and_rotates():
    drr = DeficitRoundRobin()
    drr.enqueue("a", "a0")
    drr.enqueue("b", "b0")
    # a vetoed: b is served instead; a stays queued.
    assert drr.next(eligible=lambda t: t != "a") == ("b", "b0")
    assert drr.pending("a") == 1
    # Veto lifted: a is served on the next call.
    assert drr.next() == ("a", "a0")


def test_all_vetoed_returns_none_without_spinning():
    drr = DeficitRoundRobin()
    drr.enqueue("a", "a0")
    drr.enqueue("b", "b0")
    assert drr.next(eligible=lambda t: False) is None
    assert len(drr) == 2  # nothing served, nothing lost


# ---------------------------------------------------------------------------
# SlotArbiter


def _arb():
    return SlotArbiter(Simulator())


def test_grants_in_drr_order_and_fire_gates():
    arb = _arb()
    t1 = arb.submit("a")
    t2 = arb.submit("b")
    t3 = arb.submit("a")
    assert arb.pump(2) == 2
    assert t1.granted and t2.granted and not t3.granted
    assert arb.outstanding == 2


def test_consume_moves_reservation_to_inflight():
    arb = _arb()
    t = arb.submit("a")
    arb.pump(1)
    assert arb.reserved["a"] == 1 and arb.occupancy("a") == 1
    arb.consume(t)
    assert arb.outstanding == 0
    assert arb.reserved["a"] == 0 and arb.inflight["a"] == 1
    arb.release("a")
    assert arb.occupancy("a") == 0


def test_outstanding_reservations_block_overgrant():
    arb = _arb()
    arb.submit("a")
    arb.submit("a")
    assert arb.pump(1) == 1
    # Capacity 1 with 1 grant outstanding: nothing more to give.
    assert arb.pump(1) == 0


def test_cancel_returns_grant_or_withdraws():
    arb = _arb()
    t1 = arb.submit("a")
    t2 = arb.submit("a")
    arb.pump(1)
    arb.cancel(t1)  # granted: returns the reservation
    assert arb.outstanding == 0
    arb.cancel(t2)  # queued: withdrawn
    assert arb.waiting() == 0


def test_occupancy_caps_bound_the_aggressor():
    """With two active tenants at weights 3:1 over 8 slots, the
    light tenant is capped at 2 even if it submits first and often."""
    arb = _arb()
    tickets = [arb.submit("agg") for _ in range(8)]
    arb.submit("victim", weight=3.0)
    arb.pump(8, total=8)
    agg_granted = sum(1 for t in tickets if t.granted)
    assert agg_granted == 2  # max(1, 8 * 1/4) = 2
    assert arb.occupancy("victim") == 1


def test_single_tenant_is_uncapped():
    """Work conservation: alone, a tenant takes the whole window."""
    arb = _arb()
    tickets = [arb.submit("solo") for _ in range(8)]
    arb.pump(8, total=8)
    assert all(t.granted for t in tickets)


def test_cap_lifts_when_other_tenant_goes_idle():
    arb = _arb()
    agg = [arb.submit("agg") for _ in range(4)]
    vic = arb.submit("victim", weight=3.0)
    arb.pump(4, total=4)
    arb.consume(vic)
    arb.release("victim")  # victim done and gone
    arb.pump(4, total=4)   # agg now alone: remaining grants flow
    assert sum(1 for t in agg if t.granted) == 4
