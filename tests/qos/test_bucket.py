"""Token-bucket admission math (no simulator)."""

import pytest

from repro.qos import TokenBucket

US = 1_000
MS = 1_000_000


def test_starts_full_and_burst_drains():
    b = TokenBucket(rate_ops=1_000.0, burst=4, now_ns=0)
    for _ in range(4):
        assert b.take(0) == 0
    assert b.take(0) > 0  # empty now


def test_refusal_does_not_consume():
    b = TokenBucket(rate_ops=1_000.0, burst=1, now_ns=0)
    assert b.take(0) == 0
    level = b.level
    wait = b.take(0)
    assert wait > 0
    assert b.level == level  # nothing consumed by the refusal


def test_retry_after_is_exact_refill_time():
    b = TokenBucket(rate_ops=1_000.0, burst=1, now_ns=0)  # 1 token / ms
    assert b.take(0) == 0
    wait = b.take(0)
    assert wait == pytest.approx(1 * MS, rel=1e-6)
    # One ns early: still refused.  At the hint: granted.
    assert b.take(wait - 1) > 0
    assert b.take(wait) == 0


def test_multi_token_take():
    b = TokenBucket(rate_ops=1_000.0, burst=8, now_ns=0)
    assert b.take(0, n=8) == 0
    wait = b.take(0, n=4)
    assert wait == pytest.approx(4 * MS, rel=1e-6)
    assert b.take(4 * MS, n=4) == 0


def test_refill_caps_at_burst():
    b = TokenBucket(rate_ops=1_000_000.0, burst=2, now_ns=0)
    b.take(0)
    b.refill(1_000 * MS)  # aeons later
    assert b.level == 2.0


def test_steady_state_paces_at_rate():
    """Grants settle onto the 1/rate beat regardless of caller timing."""
    b = TokenBucket(rate_ops=10_000.0, burst=1, now_ns=0)
    grants = []
    now = 0
    for _ in range(5):
        wait = b.take(now)
        if wait:
            now += wait
            assert b.take(now) == 0
        grants.append(now)
        now += 3 * US  # caller does some work
    gaps = [b - a for a, b in zip(grants, grants[1:])]
    for gap in gaps:
        assert gap == pytest.approx(100 * US, rel=1e-3)


def test_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        TokenBucket(rate_ops=0.0)
