"""End-to-end consistency: storms, races, reclamation, determinism."""

import numpy as np

from repro import HydraCluster, SimConfig
from repro.kvmem import POISON_BYTE, parse_item
from repro.protocol import Status
from repro.rdma import RemotePointer


def test_mixed_op_storm_matches_model():
    """Many clients hammer the cluster; the final state must equal a
    sequential model (per-key ops are issued by a single owner client, so
    the model is deterministic)."""
    cluster = HydraCluster(n_server_machines=1, shards_per_server=4,
                           n_client_machines=2)
    cluster.start()
    n_clients, keys_per_client, rounds = 8, 10, 12
    model: dict[bytes, bytes] = {}

    def worker(cid, client, rng):
        for r in range(rounds):
            for k in range(keys_per_client):
                key = f"c{cid}-k{k}".encode()
                roll = rng.random()
                if roll < 0.5:
                    value = f"v{cid}-{r}-{k}".encode()
                    status = yield from client.put(key, value)
                    assert status is Status.OK
                    model[key] = value
                elif roll < 0.65:
                    status = yield from client.delete(key)
                    expected = (Status.OK if key in model
                                else Status.NOT_FOUND)
                    assert status is expected
                    model.pop(key, None)
                else:
                    got = yield from client.get(key)
                    assert got == model.get(key)

    procs = []
    for cid in range(n_clients):
        client = cluster.client(cid % 2)
        rng = np.random.default_rng(100 + cid)
        procs.append(worker(cid, client, rng))
    cluster.run(*procs)
    final = {}
    for shard in cluster.shards():
        final.update(shard.store.dump())
    assert final == model


def test_stale_read_detected_never_garbage():
    """A stale remote pointer within the lease window returns the *dead*
    old item (detected via the guardian); the client falls back and gets
    the new value — garbage is never returned."""
    cfg = SimConfig()
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, n_client_machines=2,
                           scribble_on_reclaim=True)
    cluster.start()
    c1, c2 = cluster.client(0), cluster.client(1)
    observed = {}

    def app():
        yield from c1.put(b"hot", b"version-1")
        yield from c1.get(b"hot")  # c1 caches the pointer
        stale = c1.cache.lookup(b"hot", cluster.sim.now)
        assert stale is not None
        yield from c2.update(b"hot", b"version-2")
        # Raw RDMA read of the stale pointer: item present but DEAD.
        conn = c1.connection_to(cluster.shards()[0])
        wc = yield conn.client_qp.post_read(stale.rptr)
        item = parse_item(wc.data)
        observed["raw"] = item
        # The client library detects and falls back transparently.
        value = yield from c1.get(b"hot")
        observed["value"] = value

    cluster.run(app())
    assert observed["raw"] is not None
    assert not observed["raw"].live
    assert observed["raw"].value == b"version-1"  # intact until lease ends
    assert observed["value"] == b"version-2"
    assert c1.cache.invalid_hits == 1


def test_lease_protects_extent_until_expiry_then_poison():
    """The retired extent stays parseable for the whole lease, and only
    after expiry is it reclaimed (scribbled) — the lease contract."""
    lease_ms = 2_000_000  # 2 ms lease for a fast test
    cfg = SimConfig().with_overrides(
        hydra={"lease_min_ns": lease_ms, "lease_max_ns": lease_ms * 4},
        memory={"reclaim_period_ns": 100_000},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, scribble_on_reclaim=True)
    cluster.start()
    client = cluster.client()
    shard = cluster.shards()[0]
    state = {}

    def app():
        yield from client.put(b"k", b"old-value")
        yield from client.get(b"k")
        entry = client.cache.lookup(b"k", cluster.sim.now)
        state["rptr"] = entry.rptr
        yield from client.update(b"k", b"new-value")
        # Within the lease: dead but intact.
        conn = client.connection_to(shard)
        wc = yield conn.client_qp.post_read(state["rptr"])
        item = parse_item(wc.data)
        assert item is not None and not item.live
        assert item.value == b"old-value"
        # Wait out the lease + a reclaim sweep.
        yield cluster.sim.timeout(lease_ms * 5)
        wc = yield conn.client_qp.post_read(state["rptr"])
        state["after"] = bytes(wc.data)

    cluster.run(app())
    # After reclamation the extent is poison: parse must reject it.
    assert parse_item(state["after"]) is None
    assert POISON_BYTE in state["after"]


def test_expired_lease_entry_not_used_by_client():
    lease = 1_000_000  # 1 ms
    cfg = SimConfig().with_overrides(
        hydra={"lease_min_ns": lease, "lease_max_ns": lease})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1)
    cluster.start()
    client = cluster.client()

    def app():
        yield from client.put(b"k", b"v")
        yield from client.get(b"k")
        assert b"k" in client.cache._map
        yield cluster.sim.timeout(lease * 3)
        reads_before = cluster.metrics.counter("client.rdma_reads").value
        value = yield from client.get(b"k")  # lease gone: message path
        assert value == b"v"
        assert cluster.metrics.counter("client.rdma_reads").value == \
            reads_before
        assert client.cache.expired == 1

    cluster.run(app())


def test_arena_stays_bounded_under_update_churn():
    """Updates retire extents; after leases lapse and sweeps run, the
    arena's live extents return to ~one per key (no leak)."""
    lease = 500_000
    cfg = SimConfig().with_overrides(
        hydra={"lease_min_ns": lease, "lease_max_ns": lease},
        memory={"reclaim_period_ns": 200_000},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1)
    cluster.start()
    client = cluster.client()
    shard = cluster.shards()[0]

    def app():
        for r in range(30):
            for k in range(5):
                yield from client.put(f"k{k}".encode(), f"v{r}".encode())
        yield cluster.sim.timeout(lease * 10)

    cluster.run(app())
    assert len(shard.store) == 5
    assert shard.store.alloc.live_extents == 5
    assert shard.store.reclaimer.pending == 0


def test_rdma_read_of_unrelated_region_offset_rejected_or_detected():
    """A (buggy/malicious) pointer into the arena at a wrong offset must
    parse as garbage, not as a value."""
    cluster = HydraCluster(n_server_machines=1, shards_per_server=1)
    cluster.start()
    client = cluster.client()
    shard = cluster.shards()[0]
    out = {}

    def app():
        yield from client.put(b"k", b"value")
        conn = client.connection_to(shard)
        bogus = RemotePointer(shard.store.region.rkey, 8, 48)  # misaligned
        wc = yield conn.client_qp.post_read(bogus)
        out["item"] = parse_item(wc.data)

    cluster.run(app())
    assert out["item"] is None


def test_deterministic_across_runs():
    def run_once():
        from repro.bench.runner import run_hydra_ycsb
        from repro.workloads.ycsb import YcsbSpec, YcsbWorkload
        wl = YcsbWorkload(YcsbSpec(name="det", n_records=800, n_ops=800,
                                   get_fraction=0.8, seed=5))
        cluster = HydraCluster(n_server_machines=1, shards_per_server=2)
        res = run_hydra_ycsb(cluster, wl, n_clients=6)
        return (res.measured_ops, res.duration_ns,
                res.get_latency.mean_us, cluster.sim.now)

    assert run_once() == run_once()


def test_send_recv_mode_full_storm():
    cfg = SimConfig().with_overrides(
        hydra={"rdma_write_messaging": False, "rptr_cache_enabled": False})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=2)
    cluster.start()
    model = {}

    def worker(cid, client):
        for i in range(40):
            key = f"c{cid}-{i % 8}".encode()
            value = f"v{cid}-{i}".encode()
            assert (yield from client.put(key, value)) is Status.OK
            model[key] = value
            assert (yield from client.get(key)) == value

    cluster.run(*[worker(cid, cluster.client()) for cid in range(4)])
    final = {}
    for shard in cluster.shards():
        final.update(shard.store.dump())
    assert final == model
