"""Stateful property test: the cluster behaves as a linearizable dict.

Hypothesis drives random op sequences through the *full* protocol stack
(framing, RDMA writes/reads, leases, guardian words, shard loops) and
checks every response against a model dictionary; invariants over the
arena and index are asserted after every step.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro import HydraCluster
from repro.protocol import Status

KEYS = [f"key-{i}".encode() for i in range(12)]


class ClusterMachine(RuleBasedStateMachine):
    values = Bundle("values")

    @initialize()
    def build(self):
        self.cluster = HydraCluster(n_server_machines=1,
                                    shards_per_server=2)
        self.cluster.start()
        self.client = self.cluster.client()
        self.model: dict[bytes, bytes] = {}

    def _run(self, gen):
        return self.cluster.run(gen)

    @rule(target=values, v=st.binary(min_size=0, max_size=64))
    def make_value(self, v):
        return v

    @rule(key=st.sampled_from(KEYS), value=values)
    def put(self, key, value):
        def op():
            status = yield from self.client.put(key, value)
            assert status is Status.OK

        self._run(op())
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS), value=values)
    def insert(self, key, value):
        def op():
            status = yield from self.client.insert(key, value)
            expected = (Status.EXISTS if key in self.model else Status.OK)
            assert status is expected

        self._run(op())
        self.model.setdefault(key, value)

    @rule(key=st.sampled_from(KEYS), value=values)
    def update(self, key, value):
        def op():
            status = yield from self.client.update(key, value)
            expected = (Status.OK if key in self.model
                        else Status.NOT_FOUND)
            assert status is expected

        self._run(op())
        if key in self.model:
            self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def get(self, key):
        def op():
            value = yield from self.client.get(key)
            assert value == self.model.get(key)

        self._run(op())

    @rule(key=st.sampled_from(KEYS))
    def get_twice_exercises_fast_path(self, key):
        def op():
            v1 = yield from self.client.get(key)
            v2 = yield from self.client.get(key)
            assert v1 == v2 == self.model.get(key)

        self._run(op())

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key):
        def op():
            status = yield from self.client.delete(key)
            expected = (Status.OK if key in self.model
                        else Status.NOT_FOUND)
            assert status is expected

        self._run(op())
        self.model.pop(key, None)

    @rule(key=st.sampled_from(KEYS))
    def lease_renew(self, key):
        def op():
            status = yield from self.client.lease_renew(key)
            expected = (Status.OK if key in self.model
                        else Status.NOT_FOUND)
            assert status is expected

        self._run(op())

    @invariant()
    def stores_match_model(self):
        if not hasattr(self, "cluster"):
            return
        combined = {}
        for shard in self.cluster.shards():
            combined.update(shard.store.dump())
        assert combined == self.model

    @invariant()
    def index_sizes_consistent(self):
        if not hasattr(self, "cluster"):
            return
        total = sum(len(s.store) for s in self.cluster.shards())
        assert total == len(self.model)
        for shard in self.cluster.shards():
            # Live extents = live items + retired-awaiting-lease.
            assert shard.store.alloc.live_extents >= len(shard.store)


TestClusterStateful = ClusterMachine.TestCase
TestClusterStateful.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None)
