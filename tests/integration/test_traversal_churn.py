"""Cold one-sided index traversal racing live PUT/DELETE churn.

The reader's pointer cache is wiped before every multi-GET, so each
batch walks the exported buckets remotely while a writer concurrently
replaces and deletes the same keys.  With scribble-on-reclaim armed, a
traversal that ever followed a reclaimed extent would surface poison
bytes — the legality check below would catch it.
"""

import numpy as np

from repro import HydraCluster, SimConfig


def test_cold_get_many_under_put_delete_churn():
    cfg = SimConfig().with_overrides(hydra={
        "msg_slots_per_conn": 16, "max_inflight_per_conn": 16,
        "traversal_min_fanout": 1, "buckets_per_shard": 4})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=2, n_client_machines=2,
                           scribble_on_reclaim=True)
    cluster.start()
    reader, writer = cluster.client(0), cluster.client(1)
    keys = [f"churn-{i:02d}".encode() for i in range(24)]
    # Per-key single writer: the legal observations for a key are exactly
    # None (deleted / not yet written) or a value that writer ever wrote.
    written: dict[bytes, set[bytes]] = {k: set() for k in keys}
    stop = {"done": False}

    def mutator(rng):
        r = 0
        while not stop["done"]:
            r += 1
            for k in keys:
                if stop["done"]:
                    return
                if rng.random() < 0.3:
                    yield from writer.delete(k)
                else:
                    v = f"{k.decode()}:r{r}".encode()
                    written[k].add(v)
                    yield from writer.put(k, v)

    def reader_proc():
        for _round in range(12):
            for k in keys:
                reader.cache.invalidate(k)
            values = yield from reader.get_many(keys + [b"never-there"])
            assert values[-1] is None
            for k, v in zip(keys, values):
                # Never torn, never poison, never another key's value.
                assert v is None or v in written[k], (k, v)
        stop["done"] = True

    cluster.run(reader_proc(), mutator(np.random.default_rng(7)))
    counters = cluster.metrics.counter
    # The batches really went one-sided: bucket walks happened, and every
    # shard mutation versioned the exported index for the walkers.
    assert counters("client.bucket_reads").value > 0
    assert counters("shard.index_mutations_versioned").value > 0
