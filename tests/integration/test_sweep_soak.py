"""Behavior-identity soak: the three sweep layers must not change results.

The same randomized op sequence runs under every combination of
(occupancy-word x ready-hints x response-batching); final store contents,
per-op statuses/values, and item versions must be identical — the layers
may only change *when* work happens, never *what* happens.
"""

import random

from repro import HydraCluster, SimConfig
from repro.protocol import Op, Status

N_WORKERS = 3
OPS_PER_WORKER = 50


def soak_config(occupancy, hints, batching, **extra):
    over = {
        "msg_slots_per_conn": 8,
        "max_inflight_per_conn": 8,
        "occupancy_word": occupancy,
        "ready_hints": hints,
        "resp_doorbell_batch": 8 if batching else 0,
    }
    over.update(extra)
    return SimConfig().with_overrides(hydra=over)


def op_script(seed=1234):
    """Deterministic per-worker op tapes (each worker owns its keys, so
    per-key ordering — and therefore every status — is deterministic
    regardless of cross-worker interleaving)."""
    rng = random.Random(seed)
    tapes = []
    for w in range(N_WORKERS):
        tape = []
        for i in range(OPS_PER_WORKER):
            key = f"w{w}-k{rng.randrange(8)}".encode()
            roll = rng.random()
            if roll < 0.35:
                tape.append((Op.PUT, key, f"p{w}-{i}".encode()))
            elif roll < 0.5:
                tape.append((Op.INSERT, key, f"i{w}-{i}".encode()))
            elif roll < 0.65:
                tape.append((Op.UPDATE, key, f"u{w}-{i}".encode()))
            elif roll < 0.8:
                tape.append((Op.GET, key, None))
            else:
                tape.append((Op.DELETE, key, None))
        tapes.append(tape)
    return tapes


def run_soak(config, **cluster_kw):
    cluster_kw.setdefault("n_server_machines", 1)
    cluster_kw.setdefault("shards_per_server", 2)
    cluster = HydraCluster(config=config, **cluster_kw)
    cluster.start()
    tapes = op_script()
    results = [[] for _ in range(N_WORKERS)]

    def worker(w, client):
        for op, key, value in tapes[w]:
            if op is Op.GET:
                results[w].append((yield from client.get(key)))
            elif op is Op.PUT:
                results[w].append((yield from client.put(key, value)))
            elif op is Op.INSERT:
                results[w].append((yield from client.insert(key, value)))
            elif op is Op.UPDATE:
                results[w].append((yield from client.update(key, value)))
            else:
                results[w].append((yield from client.delete(key)))

    cluster.run(*(worker(w, cluster.client()) for w in range(N_WORKERS)))
    # Final state: contents and versions straight from the stores.
    state = {}
    for w in range(N_WORKERS):
        for k in range(8):
            key = f"w{w}-k{k}".encode()
            res = cluster.route(key).store_for_key(key).get(key)
            state[key] = (res.status, res.value, res.version)
    return results, state


COMBOS = [(occ, hints, batching)
          for occ in (True, False)
          for hints in (True, False)
          for batching in (True, False)]


def test_all_layer_combos_behave_identically():
    baseline_results, baseline_state = run_soak(
        soak_config(False, False, False))
    # The all-off combo is the seed design; sanity-check it did real work.
    assert any(s is Status.OK for r in baseline_results for s in r)
    for occ, hints, batching in COMBOS[:-1]:
        results, state = run_soak(soak_config(occ, hints, batching))
        label = f"occ={occ} hints={hints} batch={batching}"
        assert results == baseline_results, f"op results diverged: {label}"
        assert state == baseline_state, f"store state diverged: {label}"


def test_layers_identical_under_strict_replication():
    # Batched replication waits must not reorder acked writes: strict
    # mode acks every record, so result identity covers the ack path.
    rep = {"replicas": 1, "mode": "strict"}
    base = run_soak(soak_config(False, False, False)
                    .with_overrides(replication=rep))
    full = run_soak(soak_config(True, True, True)
                    .with_overrides(replication=rep))
    assert full == base


def test_layers_identical_on_subsharded_instances():
    cfgs = [soak_config(occ, occ, occ, subshards=2) for occ in (False, True)]
    base = run_soak(cfgs[0], shards_per_server=1)
    full = run_soak(cfgs[1], shards_per_server=1)
    assert full == base


def test_layers_identical_on_pipelined_instances():
    cfgs = [soak_config(occ, occ, occ, pipelined_shards=True)
            for occ in (False, True)]
    base = run_soak(cfgs[0], shards_per_server=1)
    full = run_soak(cfgs[1], shards_per_server=1)
    assert full == base
