"""Failover-aware client: retries, deadlines, and the HydraError taxonomy.

The tentpole contract under test: with the default deadline budget, a
primary crash mid-workload is invisible to applications — every public
operation replays through the versioned routing table onto the promoted
secondary, no acked write is lost, and the blackout is bounded by
detection (ZK session expiry) + promotion, not by anything the client
adds on top.
"""

import pytest

from repro import HydraCluster, SimConfig
from repro.core import (BadStatus, HydraError, LifecycleError,
                        RequestTimeout, RoutingTable, ShardUnavailable,
                        SlotOverflow)
from repro.core.api import HydraCluster as _ApiCluster
from repro.protocol import Status

MS = 1_000_000


def ha_cluster(n_client_machines=1, **hydra):
    cfg = SimConfig().with_overrides(
        replication={"replicas": 1},
        hydra={"op_timeout_ns": 5 * MS, **hydra},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1,
                           n_client_machines=n_client_machines)
    ha = cluster.enable_ha()
    cluster.start()
    return cluster, ha


# -- the tentpole: ride-through under load --------------------------------
def test_failover_under_load_is_invisible_to_clients():
    """Kill the primary mid-write-storm: zero client-visible exceptions,
    zero lost acked writes, bounded blackout, failover metrics recorded."""
    cluster, ha = ha_cluster(n_client_machines=2)
    sim = cluster.sim
    acked: dict[bytes, bytes] = {}
    exceptions: list[BaseException] = []
    completions: list[int] = []
    kill_at = 30 * MS

    def killer():
        yield sim.timeout(kill_at)
        cluster.servers[0].kill()

    def writer(cid, client):
        i = 0
        while sim.now < kill_at + 4_000 * MS:
            key = f"c{cid}-k{i:06d}".encode()
            value = f"v{cid}-{i}".encode()
            try:
                status = yield from client.put(key, value)
            except HydraError as exc:  # pragma: no cover - must not happen
                exceptions.append(exc)
                return
            if status is Status.OK:
                acked[key] = value
                completions.append(sim.now)
            i += 1

    clients = [cluster.client(i % 2) for i in range(4)]
    sim.process(killer())
    cluster.run(*[writer(i, c) for i, c in enumerate(clients)])
    assert exceptions == []
    assert ha.swat.failovers == 1
    # No acked write may be missing from the promoted store.
    shard_id = cluster.routing.shard_ids()[0]
    survivor = cluster.routing.resolve(shard_id).store.dump()
    lost = {k: v for k, v in acked.items() if survivor.get(k) != v}
    assert lost == {}, f"{len(lost)} acknowledged writes lost"
    assert len(acked) > 100
    # The client-side failover machinery fired and recorded its latency.
    assert cluster.metrics.counter("client.retries").value >= 1
    assert cluster.metrics.counter("client.failovers").value >= 1
    assert cluster.metrics.tally("client.failover_latency_ns").count >= 1
    # Blackout (largest inter-completion gap straddling the kill) is
    # bounded by detection + promotion, with headroom for backoff: well
    # under the 4s deadline budget and over in time for more traffic.
    gaps = [b - a for a, b in zip(completions, completions[1:])]
    blackout = max(gaps)
    assert blackout < 3_500 * MS
    after = [t for t in completions if t > kill_at + blackout]
    assert len(after) > 50  # service genuinely resumed


def test_get_and_get_many_ride_through_failover():
    cluster, ha = ha_cluster()
    client = cluster.client()
    keys = [f"k{i}".encode() for i in range(8)]

    def load():
        for k in keys:
            yield from client.put(k, b"v-" + k)

    cluster.run(load())
    cluster.sim.run(until=cluster.sim.now + 20 * MS)
    cluster.servers[0].kill()

    def during():
        # Single-key and batched GETs issued mid-blackout both complete.
        assert (yield from client.get(keys[0])) == b"v-" + keys[0]
        values = yield from client.get_many(keys + [b"missing"])
        assert values == [b"v-" + k for k in keys] + [None]

    cluster.run(during())
    assert ha.swat.failovers == 1 or cluster.routing.generation >= 1


def test_put_many_rides_through_failover():
    cluster, ha = ha_cluster()
    client = cluster.client()
    pairs = [(f"pm{i}".encode(), f"w{i}".encode()) for i in range(8)]

    def before():
        yield from client.put(b"warm", b"up")

    cluster.run(before())
    cluster.sim.run(until=cluster.sim.now + 20 * MS)
    cluster.servers[0].kill()

    def during():
        statuses = yield from client.put_many(pairs)
        assert statuses == [Status.OK] * len(pairs)

    cluster.run(during())
    shard_id = cluster.routing.shard_ids()[0]
    survivor = cluster.routing.resolve(shard_id).store.dump()
    for key, value in pairs:
        assert survivor[key] == value


def test_deadline_exhaustion_raises_shard_unavailable():
    # No replicas: nothing can be promoted, so the budget must lapse.
    cfg = SimConfig().with_overrides(
        hydra={"op_timeout_ns": 5 * MS, "op_deadline_us": 100_000})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1)
    cluster.start()
    client = cluster.client()
    sim = cluster.sim

    def app():
        yield from client.put(b"k", b"v")
        cluster.servers[0].kill()
        t0 = sim.now
        with pytest.raises(ShardUnavailable):
            yield from client.get(b"k")
        # The budget bounds the stall: deadline plus at most one attempt.
        assert sim.now - t0 <= 2 * 100 * MS
        # ShardUnavailable still satisfies legacy RequestTimeout handlers.
        cluster.servers[0].machine.nic.recover()

    cluster.run(app())
    assert cluster.metrics.counter("client.retries").value >= 1
    assert cluster.metrics.counter("client.failovers").value == 0


# -- error taxonomy -------------------------------------------------------
def test_error_hierarchy_relationships():
    assert issubclass(RequestTimeout, HydraError)
    assert issubclass(ShardUnavailable, RequestTimeout)
    assert issubclass(BadStatus, HydraError)
    # Back-compat: pre-taxonomy handlers caught ValueError/RuntimeError.
    assert issubclass(SlotOverflow, HydraError)
    assert issubclass(SlotOverflow, ValueError)
    assert issubclass(LifecycleError, HydraError)
    assert issubclass(LifecycleError, RuntimeError)
    exc = BadStatus(Status.ERROR, "GET b'k'")
    assert exc.status is Status.ERROR
    assert "ERROR" in str(exc)


def test_public_ops_raise_only_hydra_errors():
    # Grep-level guarantee, enforced structurally: no bare RuntimeError /
    # ValueError raises are left in the client module.
    import inspect

    import repro.core.client as client_mod
    src = inspect.getsource(client_mod)
    assert "raise RuntimeError" not in src
    assert "raise ValueError" not in src or "StaticRouter" in src


# -- routing-table generations --------------------------------------------
def test_routing_generation_bumps_on_swap_only():
    table = RoutingTable()
    table.set("s0", "shard-a")  # initial install: no bump
    assert table.generation == 0
    table.set("s0", "shard-a")  # idempotent republish: no bump
    assert table.generation == 0
    table.set("s0", "shard-b")  # swap: bump
    assert table.generation == 1
    table.set("s1", "other")
    assert table.generation == 1


def test_routing_generation_visible_through_cluster_and_fires_gate():
    cluster, ha = ha_cluster()
    fired = []
    cluster.route_change.wait().callbacks.append(
        lambda ev: fired.append(ev._value))
    assert cluster.generation == 0
    cluster.sim.run(until=cluster.sim.now + 20 * MS)
    cluster.servers[0].kill()
    cluster.sim.run(until=cluster.sim.now + 4_000 * MS)
    assert cluster.generation == 1
    assert fired == [cluster.routing.shard_ids()[0]]


# -- satellite: drop_connection eviction ----------------------------------
def test_drop_connection_evicts_pipeline_state():
    cluster, _ha = ha_cluster()
    client = cluster.client()
    shard = cluster.shards()[0]
    conn = client.connection_to(shard)
    client._pipe(conn).free_slots.clear()  # dirty slot state
    client.drop_connection(shard)
    assert shard not in client.conns
    assert conn.conn_id not in client._pipes
    assert conn not in shard.conns  # the shard stops sweeping it
    # Reconnect starts from a clean slot map.
    conn2 = client.connection_to(shard)
    assert conn2.conn_id != conn.conn_id
    assert client._pipe(conn2).free_slots == list(range(conn2.n_slots))


def test_stale_connection_is_replaced_up_front():
    cluster, _ha = ha_cluster()
    client = cluster.client()
    shard = cluster.shards()[0]
    conn = client.connection_to(shard)
    conn.close()  # QPs destroyed: no longer usable
    assert not conn.client_qp.usable
    conn2 = client.connection_to(shard)
    assert conn2 is not conn
    assert conn2.client_qp.usable


# -- satellite: lifecycle --------------------------------------------------
def test_cluster_context_manager_and_deadline_override():
    with HydraCluster(n_server_machines=1, shards_per_server=1) as cluster:
        assert isinstance(cluster, _ApiCluster)
        client = cluster.client(deadline_us=123)
        assert client.deadline_us == 123
        legacy = cluster.client(deadline_us=0)
        assert legacy.deadline_us == 0
        default = cluster.client()
        assert default.deadline_us == cluster.config.hydra.op_deadline_us

        def app():
            assert (yield from client.put(b"k", b"v")) is Status.OK
            assert (yield from client.get(b"k")) == b"v"

        cluster.run(app())
        with pytest.raises(LifecycleError):
            cluster.start()
    # __exit__ stopped everything; stop() is idempotent.
    assert all(not s.alive for s in cluster.shards())
    cluster.stop()


def test_get_many_returns_none_per_miss_not_raise():
    with HydraCluster(n_server_machines=1, shards_per_server=2) as cluster:
        client = cluster.client()

        def app():
            yield from client.put(b"present", b"yes")
            values = yield from client.get_many(
                [b"absent0", b"present", b"absent1"])
            assert values == [None, b"yes", None]

        cluster.run(app())
