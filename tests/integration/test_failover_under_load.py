"""Failover while a workload is running: liveness + zero acked-write loss."""

import pytest

from repro import HydraCluster, SimConfig
from repro.core import RequestTimeout
from repro.protocol import Status

MS = 1_000_000


def test_failover_during_write_storm_loses_no_acked_write():
    cfg = SimConfig().with_overrides(
        replication={"replicas": 1},
        hydra={"op_timeout_ns": 5 * MS},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, n_client_machines=2)
    ha = cluster.enable_ha()
    cluster.start()
    sim = cluster.sim
    acked: dict[bytes, bytes] = {}
    timeouts = {"n": 0}
    kill_at = 30 * MS

    def killer():
        yield sim.timeout(kill_at)
        cluster.servers[0].kill()

    def writer(cid, client):
        i = 0
        # Write until well after failover has completed.
        while sim.now < kill_at + 4_500 * MS:
            key = f"c{cid}-k{i:06d}".encode()
            value = f"v{cid}-{i}".encode()
            try:
                status = yield from client.put(key, value)
                if status is Status.OK:
                    acked[key] = value
            except RequestTimeout:
                timeouts["n"] += 1
                # Back off briefly and retry through (possibly new) routing.
                yield sim.timeout(50 * MS)
                continue
            i += 1

    # Single-attempt clients: this test exercises the hand-rolled
    # retry-on-timeout loop above, not the built-in replay engine.
    clients = [cluster.client(i % 2, deadline_us=0) for i in range(4)]
    sim.process(killer())
    cluster.run(*[writer(i, c) for i, c in enumerate(clients)])
    assert ha.swat.failovers == 1
    assert timeouts["n"] >= 1  # the crash was actually observed
    shard_id = cluster.routing.shard_ids()[0]
    survivor = cluster.routing.resolve(shard_id).store.dump()
    lost = {k: v for k, v in acked.items() if survivor.get(k) != v}
    assert lost == {}, f"{len(lost)} acknowledged writes lost"
    # Plenty of writes landed both before and after the failover.
    assert len(acked) > 100


def test_reads_resume_after_failover_with_stale_pointers():
    """Cached remote pointers into the dead machine fail cleanly (RC retry
    exhaustion) and reads recover via the promoted shard."""
    cfg = SimConfig().with_overrides(
        replication={"replicas": 1},
        hydra={"op_timeout_ns": 5 * MS},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    cluster.enable_ha()
    cluster.start()
    sim = cluster.sim
    client = cluster.client()

    def load():
        for i in range(10):
            yield from client.put(f"k{i}".encode(), f"v{i}".encode())
        # Prime pointers AND popularity: explicit lease renewals stretch
        # the lease well past the failover window, so the stale pointers
        # are still trusted and the dead-NIC path is what detects them.
        for _ in range(8):
            for i in range(10):
                yield from client.lease_renew(f"k{i}".encode())

    cluster.run(load())
    sim.run(until=sim.now + 20 * MS)
    cluster.servers[0].kill()
    sim.run(until=sim.now + 4_000 * MS)

    def verify():
        for i in range(10):
            value = yield from client.get(f"k{i}".encode())
            assert value == f"v{i}".encode()

    cluster.run(verify())
    # The stale pointers were detected as invalid (dead NIC / RETRY_EXC).
    assert client.cache.invalid_hits >= 1


def test_double_failure_without_remaining_replica_is_detected():
    cfg = SimConfig().with_overrides(
        replication={"replicas": 1},
        hydra={"op_timeout_ns": 5 * MS},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1)
    ha = cluster.enable_ha()
    cluster.start()
    sim = cluster.sim
    client = cluster.client()

    def load():
        yield from client.put(b"k", b"v")

    cluster.run(load())
    sim.run(until=sim.now + 20 * MS)
    # First failure: promoted onto the replica machine.
    cluster.servers[0].kill()
    sim.run(until=sim.now + 4_000 * MS)
    assert ha.swat.failovers == 1
    # Second failure: the promoted primary has no secondary left.
    shard_id = cluster.routing.shard_ids()[0]
    promoted = cluster.routing.resolve(shard_id)
    promoted.kill()
    promoted.machine.nic.fail()
    sim.run(until=sim.now + 4_000 * MS)
    assert cluster.metrics.counter("swat.data_loss").value >= 1


def test_failover_with_pytest_marker_sanity():
    # Guard: enable_ha on a started cluster still registers agents.
    cluster = HydraCluster(
        config=SimConfig().with_overrides(replication={"replicas": 1}),
        n_server_machines=1, shards_per_server=2)
    ha = cluster.enable_ha()
    cluster.start()
    cluster.sim.run(until=20 * MS)
    assert len(ha.agents) == 2
    with pytest.raises(RuntimeError):
        cluster.start()  # double start rejected
