"""Compact hash table: correctness, overflow chaining, merge, cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index import CompactHashTable, SLOTS_PER_BUCKET, hash64
from repro.index.hashing import bucket_index, signature16


class Arena:
    """Minimal arena stub: offset -> key bytes."""

    def __init__(self):
        self.keys: dict[int, bytes] = {}
        self._next = 0

    def store(self, key: bytes) -> int:
        off = self._next
        self._next += 64
        self.keys[off] = key
        return off

    def key_at(self, offset: int) -> bytes:
        return self.keys[offset]


def make_table(n_buckets=16):
    arena = Arena()
    return CompactHashTable(n_buckets, arena.key_at), arena


def test_put_lookup_remove_basic():
    t, arena = make_table()
    off = arena.store(b"alpha")
    assert t.put(b"alpha", hash64(b"alpha"), off) is None
    assert len(t) == 1
    assert t.lookup(b"alpha", hash64(b"alpha")) == off
    assert t.remove(b"alpha", hash64(b"alpha")) == off
    assert len(t) == 0
    assert t.lookup(b"alpha", hash64(b"alpha")) is None


def test_put_replaces_and_returns_old_offset():
    t, arena = make_table()
    h = hash64(b"k")
    o1, o2 = arena.store(b"k"), arena.store(b"k")
    assert t.put(b"k", h, o1) is None
    assert t.put(b"k", h, o2) == o1
    assert len(t) == 1
    assert t.lookup(b"k", h) == o2


def test_missing_key_lookup_and_remove():
    t, _ = make_table()
    assert t.lookup(b"ghost", hash64(b"ghost")) is None
    assert t.remove(b"ghost", hash64(b"ghost")) is None


def test_collision_chain_via_overflow_buckets():
    # Force every key into bucket 0 of a 1-bucket table.
    t, arena = make_table(n_buckets=1)
    keys = [f"key-{i}".encode() for i in range(SLOTS_PER_BUCKET * 3)]
    offs = {}
    for k in keys:
        offs[k] = arena.store(k)
        t.put(k, hash64(k), offs[k])
    assert t.overflow_buckets == 2
    for k in keys:
        assert t.lookup(k, hash64(k)) == offs[k]


def test_merge_after_removals_frees_overflow():
    t, arena = make_table(n_buckets=1)
    keys = [f"key-{i}".encode() for i in range(SLOTS_PER_BUCKET + 3)]
    for k in keys:
        t.put(k, hash64(k), arena.store(k))
    assert t.overflow_buckets == 1
    # Remove enough entries for the tail to fold back into the main bucket.
    for k in keys[:4]:
        t.remove(k, hash64(k))
    assert t.overflow_buckets == 0
    for k in keys[4:]:
        assert t.lookup(k, hash64(k)) is not None


def test_single_cacheline_lookup_when_unchained():
    t, arena = make_table(n_buckets=64)
    k = b"lonely"
    t.put(k, hash64(k), arena.store(k))
    t.lookup(k, hash64(k))
    assert t.last_lines == 1
    assert t.last_keycmps == 1


def test_signature_filters_key_comparisons():
    # Two keys in the same bucket with different signatures: looking up one
    # must not fetch the other's full key.
    t, arena = make_table(n_buckets=1)
    a, b = b"aaa", b"bbb"
    assert signature16(hash64(a)) != signature16(hash64(b))
    t.put(a, hash64(a), arena.store(a))
    t.put(b, hash64(b), arena.store(b))
    t.lookup(a, hash64(a))
    assert t.last_keycmps == 1


def test_chained_lookup_costs_more_lines():
    t, arena = make_table(n_buckets=1)
    keys = [f"key-{i}".encode() for i in range(SLOTS_PER_BUCKET * 2)]
    for k in keys:
        t.put(k, hash64(k), arena.store(k))
    # A key that lives in the overflow bucket costs 2 lines.
    tail_key = keys[-1]
    t.lookup(tail_key, hash64(tail_key))
    assert t.last_lines == 2


def test_items_enumerates_all_entries():
    t, arena = make_table(n_buckets=4)
    keys = [f"k{i}".encode() for i in range(30)]
    offs = set()
    for k in keys:
        o = arena.store(k)
        offs.add(o)
        t.put(k, hash64(k), o)
    enumerated = {off for _sig, off in t.items()}
    assert enumerated == offs


def test_offset_width_limit():
    t, _ = make_table()
    with pytest.raises(ValueError):
        t.put(b"k", hash64(b"k"), 1 << 48)


def test_bucket_count_must_be_power_of_two():
    arena = Arena()
    with pytest.raises(ValueError):
        CompactHashTable(12, arena.key_at)
    with pytest.raises(ValueError):
        CompactHashTable(0, arena.key_at)


def test_overflow_array_growth():
    t, arena = make_table(n_buckets=1)
    keys = [f"key-{i:04d}".encode() for i in range(400)]
    for k in keys:
        t.put(k, hash64(k), arena.store(k))
    assert t.overflow_buckets > 16  # grew past the initial capacity
    for k in keys:
        assert t.lookup(k, hash64(k)) is not None


def test_hash64_deterministic_and_spread():
    h1 = hash64(b"key-1")
    assert h1 == hash64(b"key-1")
    assert h1 != hash64(b"key-2")
    buckets = {bucket_index(hash64(f"key-{i}".encode()), 1024)
               for i in range(1000)}
    assert len(buckets) > 500  # decent spread


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(
        st.sampled_from(["put", "remove", "lookup"]),
        st.integers(min_value=0, max_value=30),
    ),
    max_size=120,
))
def test_behaves_like_dict(ops):
    arena = Arena()
    t = CompactHashTable(4, arena.key_at)
    model: dict[bytes, int] = {}
    for op, ki in ops:
        key = f"key-{ki}".encode()
        h = hash64(key)
        if op == "put":
            off = arena.store(key)
            old = t.put(key, h, off)
            assert old == model.get(key)
            model[key] = off
        elif op == "remove":
            assert t.remove(key, h) == model.pop(key, None)
        else:
            assert t.lookup(key, h) == model.get(key)
    assert len(t) == len(model)
    for key, off in model.items():
        assert t.lookup(key, hash64(key)) == off
