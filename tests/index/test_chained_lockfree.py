"""Chained baseline table and the lock-free shared map."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index import ChainedHashTable, CompactHashTable, LockFreeMap, hash64

from .test_compact import Arena


def test_chained_basic_ops():
    arena = Arena()
    t = ChainedHashTable(8, arena.key_at)
    off = arena.store(b"k")
    assert t.put(b"k", hash64(b"k"), off) is None
    assert t.lookup(b"k", hash64(b"k")) == off
    o2 = arena.store(b"k")
    assert t.put(b"k", hash64(b"k"), o2) == off
    assert t.remove(b"k", hash64(b"k")) == o2
    assert len(t) == 0


def test_chained_removal_middle_of_chain():
    arena = Arena()
    t = ChainedHashTable(1, arena.key_at)
    keys = [f"k{i}".encode() for i in range(5)]
    for k in keys:
        t.put(k, hash64(k), arena.store(k))
    t.remove(keys[2], hash64(keys[2]))
    assert t.lookup(keys[2], hash64(keys[2])) is None
    for k in keys[:2] + keys[3:]:
        assert t.lookup(k, hash64(k)) is not None


def test_chained_power_of_two_required():
    with pytest.raises(ValueError):
        ChainedHashTable(3, lambda o: b"")


def test_compact_touches_fewer_lines_than_chained_under_collisions():
    """The §4.1.3 claim: compact resolves collisions in one cacheline."""
    arena_c, arena_l = Arena(), Arena()
    compact = CompactHashTable(1, arena_c.key_at)
    chained = ChainedHashTable(1, arena_l.key_at)
    keys = [f"key-{i}".encode() for i in range(6)]  # fits one 7-slot bucket
    for k in keys:
        compact.put(k, hash64(k), arena_c.store(k))
        chained.put(k, hash64(k), arena_l.store(k))
    compact.total_lines = chained.total_lines = 0
    for k in keys:
        compact.lookup(k, hash64(k))
        chained.lookup(k, hash64(k))
    assert compact.total_lines == len(keys)           # 1 line each
    assert chained.total_lines > compact.total_lines  # head + node walks


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["put", "remove", "lookup"]),
              st.integers(min_value=0, max_value=20)),
    max_size=80,
))
def test_chained_behaves_like_dict(ops):
    arena = Arena()
    t = ChainedHashTable(2, arena.key_at)
    model: dict[bytes, int] = {}
    for op, ki in ops:
        key = f"key-{ki}".encode()
        h = hash64(key)
        if op == "put":
            off = arena.store(key)
            assert t.put(key, h, off) == model.get(key)
            model[key] = off
        elif op == "remove":
            assert t.remove(key, h) == model.pop(key, None)
        else:
            assert t.lookup(key, h) == model.get(key)
    assert len(t) == len(model)


# -- LockFreeMap ------------------------------------------------------------

def test_lockfree_get_put_remove():
    m = LockFreeMap(capacity=4)
    assert m.get("a") is None
    m.put("a", 1)
    assert m.get("a") == 1
    assert "a" in m
    assert m.remove("a") == 1
    assert m.remove("a") is None
    assert m.hits == 1 and m.misses == 1


def test_lockfree_capacity_eviction():
    m = LockFreeMap(capacity=3)
    for i in range(5):
        m.put(i, i)
    assert len(m) == 3
    assert m.evictions == 2


def test_clock_gives_second_chance_to_referenced_entries():
    m = LockFreeMap(capacity=3)
    m.put("hot", 1)
    m.put("b", 2)
    m.put("c", 3)
    m.get("hot")  # set refbit
    m.put("d", 4)  # must evict b (oldest unreferenced), not hot
    assert "hot" in m and "b" not in m


def test_update_existing_does_not_evict():
    m = LockFreeMap(capacity=2)
    m.put("a", 1)
    m.put("b", 2)
    m.put("a", 10)
    assert len(m) == 2 and m.get("a") == 10 and m.evictions == 0


def test_cost_model_lockfree_vs_locked():
    lf = LockFreeMap(4, mode="lockfree")
    lk = LockFreeMap(4, mode="locked")
    assert lf.op_cost_ns() < lk.op_cost_ns()
    lf.sharers = lk.sharers = 10
    assert lf.op_cost_ns() == LockFreeMap.LOCKFREE_OP_NS  # flat
    assert lk.op_cost_ns() > LockFreeMap.LOCKED_BASE_NS   # contention grows


def test_hit_rate():
    m = LockFreeMap(4)
    m.put("x", 1)
    m.get("x")
    m.get("y")
    assert m.hit_rate == pytest.approx(0.5)
    empty = LockFreeMap(4)
    assert empty.hit_rate == 0.0


def test_invalid_construction():
    with pytest.raises(ValueError):
        LockFreeMap(0)
    with pytest.raises(ValueError):
        LockFreeMap(4, mode="optimistic")
