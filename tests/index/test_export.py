"""Client-readable index export: frame layout, seqlock versioning,
chain links, invalidate-before-reuse, and demotion flags."""

import pytest

from repro.index import (
    BUCKET_EXPORT_BYTES,
    BucketExport,
    CompactHashTable,
    SLOTS_PER_BUCKET,
    hash64,
    parse_bucket,
)
from repro.index.hashing import signature16


class Arena:
    """Minimal arena stub: offset -> key bytes, one 64 B class."""

    def __init__(self):
        self.keys: dict[int, bytes] = {}
        self._next = 0

    def store(self, key: bytes) -> int:
        off = self._next
        self._next += 64
        self.keys[off] = key
        return off

    def key_at(self, offset: int) -> bytes:
        return self.keys[offset]

    def class_index_of(self, offset: int) -> int:
        if offset not in self.keys:
            raise KeyError(offset)
        return 0


def make_exported(n_buckets=1, overflow_frames=8):
    arena = Arena()
    table = CompactHashTable(n_buckets, arena.key_at)
    export = BucketExport(n_buckets, overflow_frames, arena.class_index_of)
    table.attach_export(export)
    return table, export, arena


def frame(export, idx):
    return parse_bucket(export.region.read(
        idx * BUCKET_EXPORT_BYTES, BUCKET_EXPORT_BYTES))


def test_parse_rejects_wrong_length():
    with pytest.raises(ValueError):
        parse_bucket(b"\x00" * 63)
    with pytest.raises(ValueError):
        parse_bucket(b"\x00" * 65)


def test_empty_frame_is_all_zero_encoding():
    _t, export, _a = make_exported()
    b = frame(export, 0)
    assert b.version == 0
    assert b.slots == ()
    assert b.link is None
    assert not b.demote


def test_put_exports_entry_and_bumps_version():
    table, export, arena = make_exported()
    h = hash64(b"alpha")
    off = arena.store(b"alpha")
    table.put(b"alpha", h, off)
    b = frame(export, 0)
    assert b.version == 2  # seqlock stays even across stable states
    assert b.link is None
    [(slot_i, sig, cls, slot_off)] = b.slots
    assert sig == signature16(h)
    assert cls == 0
    assert slot_off == off
    # In-place replace (same key, new extent) re-exports with a new
    # version: a concurrent walker must notice the chain moved.
    off2 = arena.store(b"alpha")
    table.put(b"alpha", h, off2)
    b2 = frame(export, 0)
    assert b2.version == 4
    assert b2.slots[0][3] == off2


def test_remove_reexports_and_bumps():
    table, export, arena = make_exported()
    table.put(b"k", hash64(b"k"), arena.store(b"k"))
    v_after_put = frame(export, 0).version
    table.remove(b"k", hash64(b"k"))
    b = frame(export, 0)
    assert b.version == v_after_put + 2
    assert b.slots == ()


def test_overflow_chain_links_and_full_coverage():
    table, export, arena = make_exported(n_buckets=1)
    keys = [f"key-{i:02d}".encode() for i in range(2 * SLOTS_PER_BUCKET + 3)]
    offsets = {}
    for k in keys:
        offsets[k] = arena.store(k)
        table.put(k, hash64(k), offsets[k])
    # Walk the exported chain exactly as a client would.
    seen = {}
    idx, depth = 0, 0
    while idx is not None:
        b = frame(export, idx)
        assert not b.demote
        for _i, sig, cls, off in b.slots:
            seen[off] = (sig, cls)
        if b.link is not None:
            assert b.link >= export.n_buckets  # overflow frames follow main
        idx = b.link
        depth += 1
        assert depth <= 8
    assert depth >= 3  # the chain really did overflow twice
    for k in keys:
        assert seen[offsets[k]] == (signature16(hash64(k)), 0)


def test_mutation_bumps_every_frame_of_the_chain():
    table, export, arena = make_exported(n_buckets=1)
    keys = [f"key-{i:02d}".encode() for i in range(SLOTS_PER_BUCKET + 2)]
    for k in keys:
        table.put(k, hash64(k), arena.store(k))
    head_v = frame(export, 0).version
    tail_idx = frame(export, 0).link
    tail_v = frame(export, tail_idx).version
    # A put landing in the *tail* still bumps the head: multi-bucket
    # NOT_FOUND is confirmed by re-reading the head alone.
    extra = b"key-extra"
    table.put(extra, hash64(extra), arena.store(extra))
    assert frame(export, 0).version == head_v + 2
    assert frame(export, tail_idx).version == tail_v + 2


def test_merge_invalidates_freed_overflow_frame():
    table, export, arena = make_exported(n_buckets=1)
    keys = [f"key-{i:02d}".encode() for i in range(SLOTS_PER_BUCKET + 1)]
    for k in keys:
        table.put(k, hash64(k), arena.store(k))
    tail_idx = frame(export, 0).link
    assert tail_idx is not None
    stale_tail_v = frame(export, tail_idx).version
    # Removing one main-bucket entry lets the merge fold the tail back.
    table.remove(keys[0], hash64(keys[0]))
    assert frame(export, 0).link is None
    freed = frame(export, tail_idx)
    # The freed frame was emptied AND bumped before any reuse: a client
    # holding the stale link sees an empty bucket with a moved version,
    # never another chain's entries.
    assert freed.slots == ()
    assert freed.version > stale_tail_v


def test_chain_past_overflow_cap_demotes():
    table, export, arena = make_exported(n_buckets=1, overflow_frames=0)
    keys = [f"key-{i:02d}".encode() for i in range(SLOTS_PER_BUCKET + 1)]
    for k in keys:
        table.put(k, hash64(k), arena.store(k))
    b = frame(export, 0)
    assert b.demote
    assert b.link is None  # the unexportable tail is cut, not linked
    assert export.demoted_frames > 0


def test_unencodable_offset_demotes_but_keeps_others():
    table, export, arena = make_exported()
    ok_off = arena.store(b"good")
    table.put(b"good", hash64(b"good"), ok_off)
    # 48-bit table offset that exceeds the export's 44-bit field.
    wide = 1 << 45
    arena.keys[wide] = b"wide"
    table.put(b"wide", hash64(b"wide"), wide)
    b = frame(export, 0)
    assert b.demote
    assert [s[3] for s in b.slots] == [ok_off]


def test_attach_export_syncs_preexisting_entries():
    arena = Arena()
    table = CompactHashTable(1, arena.key_at)
    off = arena.store(b"early")
    table.put(b"early", hash64(b"early"), off)
    export = BucketExport(1, 8, arena.class_index_of)
    table.attach_export(export)
    b = frame(export, 0)
    assert [s[3] for s in b.slots] == [off]
