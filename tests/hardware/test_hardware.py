"""Machine / core / NUMA model tests."""

import pytest

from repro.config import SimConfig
from repro.hardware import CoreExhausted, Machine, NumaTopology
from repro.sim import Simulator


@pytest.fixture()
def machine():
    sim = Simulator()
    return sim, Machine(sim, 0, SimConfig(), n_numa=2, cores_per_numa=2)


def test_machine_core_layout(machine):
    _, m = machine
    assert len(m.cores) == 4
    assert [c.numa_domain for c in m.cores] == [0, 0, 1, 1]
    assert [c.core_id for c in m.cores] == [0, 1, 2, 3]


def test_allocate_core_pins_and_exhausts(machine):
    _, m = machine
    c0 = m.allocate_core("shard0")
    assert c0.pinned and c0.owner == "shard0"
    m.allocate_core("a")
    m.allocate_core("b")
    m.allocate_core("c")
    with pytest.raises(CoreExhausted):
        m.allocate_core("overflow")


def test_allocate_core_respects_numa_domain(machine):
    _, m = machine
    c = m.allocate_core("s", numa_domain=1)
    assert c.numa_domain == 1
    m.allocate_core("s2", numa_domain=1)
    with pytest.raises(CoreExhausted):
        m.allocate_core("s3", numa_domain=1)
    # Domain 0 still has room.
    assert m.allocate_core("s4", numa_domain=0).numa_domain == 0


def test_double_pin_rejected(machine):
    _, m = machine
    c = m.allocate_core("x")
    with pytest.raises(CoreExhausted):
        c.pin("y")
    c.unpin()
    c.pin("y")
    assert c.owner == "y"


def test_free_cores_and_least_loaded(machine):
    _, m = machine
    assert m.free_cores() == 4
    m.allocate_core("a", numa_domain=0)
    assert m.free_cores(0) == 1
    assert m.least_loaded_domain() == 1


def test_core_execute_accounts_busy_time(machine):
    sim, m = machine
    core = m.allocate_core("w")

    def worker():
        yield core.execute(300)
        yield sim.timeout(700)

    sim.process(worker())
    sim.run()
    assert core.utilization() == pytest.approx(0.3)


def test_core_run_generator_form(machine):
    sim, m = machine
    core = m.allocate_core("w")

    def worker():
        yield from core.run(100)
        return sim.now

    p = sim.process(worker())
    assert sim.run(until=p) == 100


def test_numa_local_vs_remote_cost():
    cfg = SimConfig()
    topo = NumaTopology(4, cfg.cpu)
    local = topo.access_ns(0, 0, lines=3)
    remote = topo.access_ns(0, 2, lines=3)
    assert local == 3 * cfg.cpu.cacheline_local_ns
    assert remote == 3 * cfg.cpu.cacheline_remote_ns
    assert remote > local


def test_numa_interleaved_between_local_and_remote():
    cfg = SimConfig()
    topo = NumaTopology(4, cfg.cpu)
    inter = topo.interleaved_ns(0, lines=10)
    assert topo.access_ns(0, 0, 10) < inter < topo.access_ns(0, 1, 10)


def test_numa_single_domain_is_always_local():
    cfg = SimConfig()
    topo = NumaTopology(1, cfg.cpu)
    assert topo.interleaved_ns(0, 4) == topo.access_ns(0, 0, 4)


def test_numa_domain_bounds_checked():
    topo = NumaTopology(2, SimConfig().cpu)
    with pytest.raises(ValueError):
        topo.access_ns(0, 2)
    with pytest.raises(ValueError):
        topo.access_ns(-1, 0)
    with pytest.raises(ValueError):
        NumaTopology(0, SimConfig().cpu)
