"""Shared fixtures for RDMA-layer tests: a two-machine fabric."""

import pytest

from repro.config import SimConfig
from repro.hardware import Machine
from repro.rdma import Fabric, MemoryRegion, TcpNetwork
from repro.sim import Simulator


class Rig:
    """Two machines cabled to one switch, with helpers."""

    def __init__(self, config=None, n_machines=2):
        self.config = config or SimConfig()
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, self.config)
        self.tcpnet = TcpNetwork(self.sim, self.config)
        self.machines = []
        for i in range(n_machines):
            m = Machine(self.sim, i, self.config)
            self.fabric.attach(m)
            self.tcpnet.attach(m)
            self.machines.append(m)

    def connect(self, a=0, b=1):
        return self.fabric.connect(self.machines[a].nic, self.machines[b].nic)

    def region(self, machine_idx, nbytes=4096, name="r"):
        region = MemoryRegion(nbytes, name=name)
        self.machines[machine_idx].nic.register(region)
        return region


@pytest.fixture()
def rig():
    return Rig()
