"""Doorbell-coalesced RDMA-Write batches (write twin of post_read_batch)."""

import pytest

from repro.rdma import (
    QpError,
    RemotePointer,
    WcStatus,
    WriteWorkRequest,
)

from .conftest import Rig


@pytest.fixture()
def rig():
    return Rig()


def run_all(rig, batch_ev):
    """Run until the (single) batch event fires; returns the flat
    list of completions it carries, in request order."""
    rig.sim.run(until=batch_ev)
    return batch_ev.value


def test_batch_lands_every_write_in_chain_order(rig):
    qa, _qb = rig.connect()
    region = rig.region(1, name="server")
    batch = qa.post_write_batch([
        (RemotePointer(region.rkey, 0, 8), b"first..."),
        (RemotePointer(region.rkey, 8, 8), b"second.."),
        WriteWorkRequest(RemotePointer(region.rkey, 16, 8), b"third..."),
    ])
    wcs = run_all(rig, batch)
    assert all(wc.ok for wc in wcs)
    assert region.read(0, 24) == b"first...second..third..."


def test_batch_rings_one_doorbell(rig):
    qa, _qb = rig.connect()
    region = rig.region(1)
    metrics = rig.machines[0].nic.metrics
    before_db = metrics.counter("rdma.write.doorbells").value
    before_co = metrics.counter("rdma.write.coalesced").value
    batch = qa.post_write_batch([
        (RemotePointer(region.rkey, i * 8, 8), b"x" * 8) for i in range(5)
    ])
    run_all(rig, batch)
    assert metrics.counter("rdma.write.doorbells").value == before_db + 1
    assert metrics.counter("rdma.write.coalesced").value == before_co + 4


def test_batch_is_cheaper_than_singles(rig):
    # 8 coalesced writes finish sooner than 8 individually-doorbelled
    # ones: every WQE after the first skips the MMIO write.
    qa, _qb = rig.connect()
    region = rig.region(1)
    t0 = rig.sim.now
    run_all(rig, qa.post_write_batch([
        (RemotePointer(region.rkey, i * 8, 8), b"y" * 8) for i in range(8)
    ]))
    batched = rig.sim.now - t0
    t1 = rig.sim.now
    for i in range(8):
        rig.sim.run(until=qa.post_write(
            RemotePointer(region.rkey, i * 8, 8), b"z" * 8))
    singles = rig.sim.now - t1
    assert batched < singles


def test_bad_entry_fails_alone_rest_of_chain_posts(rig):
    qa, _qb = rig.connect()
    region = rig.region(1)
    batch = qa.post_write_batch([
        (RemotePointer(region.rkey, 0, 8), b"ok-here."),
        (RemotePointer(999_999, 0, 8), b"badrkey."),     # unresolvable
        (RemotePointer(region.rkey, 8, 4), b"too-long"),  # exceeds extent
        (RemotePointer(region.rkey, 8, 8), b"also-ok."),
    ])
    wcs = run_all(rig, batch)
    assert wcs[0].ok and wcs[3].ok
    assert wcs[1].status is WcStatus.LOCAL_QP_ERR
    assert wcs[2].status is WcStatus.LOCAL_QP_ERR
    assert region.read(0, 16) == b"ok-here.also-ok."


def test_batch_completions_carry_cqe_timestamps(rig):
    # Each Completion is stamped with its CQE arrival time so a consumer
    # of the batch event can still model an incremental poll of the
    # chain (the client overlaps parses with the in-flight tail).
    qa, _qb = rig.connect()
    region = rig.region(1)
    batch = qa.post_write_batch([
        (RemotePointer(region.rkey, i * 8, 8), b"t" * 8) for i in range(4)
    ])
    wcs = run_all(rig, batch)
    assert all(wc.ns >= 0 for wc in wcs)
    assert [wc.ns for wc in wcs] == sorted(wc.ns for wc in wcs)
    # The batch event fires with the last CQE of the chain.
    assert max(wc.ns for wc in wcs) == rig.sim.now


def test_batch_on_disconnected_qp_raises(rig):
    qa, _qb = rig.connect()
    region = rig.region(1)
    qa.destroy()
    with pytest.raises(QpError):
        qa.post_write_batch([(RemotePointer(region.rkey, 0, 4), b"nope")])
