"""Kernel TCP (IPoIB) transport model tests."""

import pytest

from repro.rdma import TcpError

from .conftest import Rig


def establish(rig, a=0, b=1, port=11211):
    listener = rig.machines[b].tcp.listen(port)
    ev = rig.machines[a].tcp.connect(rig.machines[b].tcp, port)
    client = rig.sim.run(until=ev)
    ok, server = listener.try_get()
    assert ok
    return client, server


def test_connect_and_roundtrip(rig):
    client, server = establish(rig)
    result = []

    def server_proc():
        payload, nbytes = yield server.recv()
        assert nbytes == 100
        yield server.send(("pong", payload), 64)

    def client_proc():
        yield client.send("ping", 100)
        reply, _ = yield client.recv()
        result.append((reply, rig.sim.now))

    rig.sim.process(server_proc())
    p = rig.sim.process(client_proc())
    rig.sim.run(until=p)
    assert result[0][0] == ("pong", "ping")


def test_tcp_rtt_is_tens_of_microseconds(rig):
    client, server = establish(rig)

    def echo():
        payload, n = yield server.recv()
        yield server.send(payload, n)

    def client_proc():
        t0 = rig.sim.now
        yield client.send(b"x", 64)
        yield client.recv()
        return rig.sim.now - t0

    rig.sim.process(echo())
    p = rig.sim.process(client_proc())
    rtt = rig.sim.run(until=p)
    assert 30_000 < rtt < 200_000


def test_tcp_slower_than_rdma_write_by_an_order_of_magnitude(rig):
    from repro.rdma import RemotePointer

    qa, _ = rig.connect()
    region = rig.region(1)
    ev = qa.post_write(RemotePointer(region.rkey, 0, 64), b"r" * 64)
    rig.sim.run(until=ev)
    t_rdma = rig.sim.now

    rig2 = Rig()
    client, server = establish(rig2)

    def sink():
        yield server.recv()

    def client_proc():
        t0 = rig2.sim.now
        yield client.send(b"t" * 64, 64)
        return rig2.sim.now  # syscall return, cheapest possible measure

    rig2.sim.process(sink())
    p = rig2.sim.process(client_proc())
    rig2.sim.run()
    # Even just handing 64B to the kernel costs ~10x an entire RDMA write.
    assert rig2.sim.now > 2 * t_rdma


def test_connect_refused_without_listener(rig):
    ev = rig.machines[0].tcp.connect(rig.machines[1].tcp, 9999)
    with pytest.raises(TcpError):
        rig.sim.run(until=ev)


def test_double_bind_rejected(rig):
    rig.machines[0].tcp.listen(80)
    with pytest.raises(TcpError):
        rig.machines[0].tcp.listen(80)


def test_send_on_closed_connection_raises(rig):
    client, _server = establish(rig)
    client.close()
    with pytest.raises(TcpError):
        client.send(b"x", 1)


def test_send_to_dead_stack_is_dropped(rig):
    client, server = establish(rig)
    rig.machines[1].tcp.fail()
    got = []

    def server_proc():
        got.append((yield server.recv()))

    def client_proc():
        yield client.send(b"lost", 4)

    rig.sim.process(server_proc())
    rig.sim.process(client_proc())
    rig.sim.run(until=rig.sim.now + 10_000_000)
    assert got == []


def test_bandwidth_shapes_large_transfers(rig):
    client, server = establish(rig)
    sizes = {}

    def server_proc():
        for label in ("small", "big"):
            t0 = rig.sim.now
            yield server.recv()
            sizes[label] = rig.sim.now - t0

    def client_proc():
        yield client.send(b"s", 64)
        yield client.send(b"b", 4 << 20)

    rig.sim.process(server_proc())
    rig.sim.process(client_proc())
    rig.sim.run()
    # 4 MiB at ~1.5 B/ns adds ~2.8 ms of serialization.
    assert sizes["big"] > sizes["small"] + 1_000_000


def test_try_recv_nonblocking(rig):
    client, server = establish(rig)
    ok, _ = server.try_recv()
    assert not ok

    def client_proc():
        yield client.send("data", 10)

    rig.sim.process(client_proc())
    rig.sim.run()
    ok, (payload, n) = server.try_recv()
    assert ok and payload == "data" and n == 10


def test_send_many_charges_one_syscall_for_the_batch(rig):
    client, server = establish(rig)
    got = []

    def server_proc():
        for _ in range(4):
            payload, _n = yield server.recv()
            got.append(payload)

    def client_proc():
        t0 = rig.sim.now
        n = yield client.send_many([(f"m{i}", 64) for i in range(4)])
        assert n == 4
        return rig.sim.now - t0

    rig.sim.process(server_proc())
    p = rig.sim.process(client_proc())
    syscall_ns = rig.sim.run(until=p)
    rig.sim.run()
    # One kernel TX crossing for the whole batch (the writev analogue)...
    assert syscall_ns == rig.config.tcp.kernel_tx_ns
    # ...and the payloads still arrive intact, in order.
    assert got == ["m0", "m1", "m2", "m3"]


def test_send_many_rejects_empty_batch_and_closed_conn(rig):
    client, _server = establish(rig)
    with pytest.raises(ValueError):
        client.send_many([])
    client.close()
    with pytest.raises(TcpError):
        client.send_many([(b"x", 1)])


def test_send_many_reset_mid_batch_delivers_prefix_then_fails(rig):
    client, server = establish(rig)

    class ResetOnThird:
        calls = 0

        def tcp_fault(self, conn, payload, nbytes):
            self.calls += 1
            return "reset" if self.calls == 3 else None

    rig.tcpnet.fault_injector = ResetOnThird()
    got, failed = [], []

    def server_proc():
        while True:
            payload, _n = yield server.recv()
            got.append(payload)

    def client_proc():
        try:
            yield client.send_many([(f"m{i}", 64) for i in range(4)])
        except TcpError:
            failed.append(True)

    rig.sim.process(server_proc())
    p = rig.sim.process(client_proc())
    rig.sim.run(until=p)
    rig.sim.run(until=rig.sim.now + 10_000_000)
    # The two payloads staged before the RST still flow; the connection
    # is dead and the caller saw the batch fail.
    assert failed == [True]
    assert got == ["m0", "m1"]
    assert not client.open


def test_double_attach_rejected(rig):
    with pytest.raises(ValueError):
        rig.tcpnet.attach(rig.machines[0])
    with pytest.raises(ValueError):
        rig.fabric.attach(rig.machines[0])
