"""Freelist recycling for pooled CQE records (``hydra.flat_hot_paths``).

The invariant under test: a :class:`Completion` record handed out by
``CompletionPool.acquire`` is never visible in two completion chains at
once — records only return to the freelist through an explicit
``release``, a second release raises instead of aliasing two in-flight
chains, and an unreleased record is simply never recycled.
"""

import pytest

from repro import HydraCluster, SimConfig
from repro.rdma import CompletionPool
from repro.rdma.verbs import Opcode, WcStatus


def _acquire(pool, wr_id=0):
    return pool.acquire(Opcode.RDMA_WRITE, WcStatus.SUCCESS, wr_id=wr_id,
                        byte_len=8, data=b"x" * 8)


def test_acquired_records_are_distinct_until_released():
    pool = CompletionPool()
    chain_a = [_acquire(pool, i) for i in range(4)]
    chain_b = [_acquire(pool, 10 + i) for i in range(4)]
    # No record sits in two chains: all eight are distinct objects and
    # all are live.
    assert len({id(wc) for wc in chain_a + chain_b}) == 8
    assert all(wc._live for wc in chain_a + chain_b)
    assert pool.allocated == 8 and pool.recycled == 0


def test_release_recycles_identity_and_resets_state():
    pool = CompletionPool()
    first = [_acquire(pool, i) for i in range(3)]
    ids = {id(wc) for wc in first}
    pool.release_all(first)
    assert len(pool) == 3
    assert all(not wc._live for wc in first)
    assert all(wc.data is None for wc in first)  # payload refs dropped
    second = [_acquire(pool, 20 + i) for i in range(3)]
    # The freelist reuses the same objects rather than allocating.
    assert {id(wc) for wc in second} == ids
    assert pool.allocated == 3 and pool.recycled == 3
    # Recycled records carry only the new chain's fields.
    assert sorted(wc.wr_id for wc in second) == [20, 21, 22]


def test_double_release_raises_instead_of_aliasing():
    pool = CompletionPool()
    wc = _acquire(pool)
    pool.release(wc)
    with pytest.raises(ValueError):
        pool.release(wc)
    # The failed release did not duplicate the record on the freelist.
    assert len(pool) == 1


def test_foreign_record_release_raises():
    from repro.rdma.verbs import Completion
    pool = CompletionPool()
    stray = Completion(Opcode.RDMA_WRITE, WcStatus.SUCCESS, 0, 0, None)
    with pytest.raises(ValueError):
        pool.release(stray)


def test_cq_poll_into_passes_pooled_records_through():
    """Pooled records traverse a CompletionQueue by reference; the
    scratch-list drain neither copies nor releases them."""
    from repro.rdma.cq import CompletionQueue
    from repro.sim import Simulator

    pool = CompletionPool()
    cq = CompletionQueue(Simulator())
    pushed = [_acquire(pool, i) for i in range(5)]
    for wc in pushed:
        cq.push(wc)
    scratch: list = []
    assert cq.poll_into(scratch, max_entries=3) == 3
    assert cq.poll_into(scratch) == 2 and len(cq) == 0
    assert [id(wc) for wc in scratch] == [id(wc) for wc in pushed]
    assert all(wc._live for wc in scratch)  # release stays with consumer
    pool.release_all(scratch)
    assert len(pool) == 5


def test_unreleased_records_are_not_recycled():
    pool = CompletionPool()
    held = _acquire(pool, 1)
    fresh = _acquire(pool, 2)
    assert fresh is not held
    assert pool.recycled == 0 and pool.allocated == 2


class _PoolProxy:
    """Wraps a CompletionPool, asserting no record is re-acquired while
    it is still live in another chain (pool call sites resolve
    ``nic.wc_pool`` at call time, so swapping the attribute intercepts
    every acquire/release)."""

    def __init__(self, pool, live: set):
        self._pool = pool
        self._live = live

    def acquire(self, *args, **kwargs):
        wc = self._pool.acquire(*args, **kwargs)
        assert id(wc) not in self._live, \
            "completion record recycled while still live in another chain"
        self._live.add(id(wc))
        return wc

    def release(self, wc):
        self._pool.release(wc)
        self._live.discard(id(wc))

    def release_all(self, wcs):
        for wc in wcs:
            self.release(wc)

    def __getattr__(self, name):
        return getattr(self._pool, name)

    def __len__(self):
        return len(self._pool)


def test_live_flag_holds_under_cluster_traffic():
    """End to end: while a flat-mode cluster runs a mixed workload, every
    record any NIC pool hands out must have been released first —
    acquire-while-live would mean one CQE aliased into two chains."""
    cfg = SimConfig().with_overrides(
        hydra={"flat_hot_paths": True, "msg_slots_per_conn": 4},
        client={"max_inflight_per_conn": 4})
    cluster = HydraCluster(cfg, n_server_machines=1, shards_per_server=2)
    cluster.start()
    live: set[int] = set()
    pools = []
    for machine in cluster.server_machines + cluster.client_machines:
        pools.append(machine.nic.wc_pool)
        machine.nic.wc_pool = _PoolProxy(machine.nic.wc_pool, live)
    client = cluster.client()

    def app():
        for i in range(40):
            key = b"k%d" % (i % 8)
            if i % 4 == 0:
                yield from client.put(key, b"v%d" % i)
            else:
                yield from client.get(key)

    cluster.run(app())
    assert sum(p.recycled for p in pools) > 0, \
        "flat mode never recycled a record"
