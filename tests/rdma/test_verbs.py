"""RDMA verb semantics: write, read, send/recv, errors, ordering."""

import pytest

from repro.config import SimConfig
from repro.rdma import (
    MemoryRegion,
    Opcode,
    QpError,
    RemotePointer,
    WcStatus,
)
from repro.rdma.memory import AccessViolation

from .conftest import Rig


def run_op(rig, ev):
    rig.sim.run(until=ev)
    return ev.value


def test_write_places_bytes_in_remote_region(rig):
    qa, _qb = rig.connect()
    region = rig.region(1, name="server")
    rptr = RemotePointer(region.rkey, 100, 11)
    wc = run_op(rig, qa.post_write(rptr, b"hello world"))
    assert wc.ok and wc.opcode is Opcode.RDMA_WRITE and wc.byte_len == 11
    assert region.read(100, 11) == b"hello world"


def test_write_visible_before_initiator_completion(rig):
    # Remote delivery happens one propagation earlier than the ack.
    qa, _ = rig.connect()
    region = rig.region(1)
    rptr = RemotePointer(region.rkey, 0, 4)
    ev = qa.post_write(rptr, b"abcd")
    seen_at = []

    def watcher():
        while region.read(0, 4) != b"abcd":
            yield rig.sim.timeout(50)
        seen_at.append(rig.sim.now)

    rig.sim.process(watcher())
    rig.sim.run(until=ev)
    assert seen_at and seen_at[0] < rig.sim.now


def test_read_fetches_remote_bytes(rig):
    qa, _ = rig.connect()
    region = rig.region(1)
    region.write(64, b"payload-bytes")
    rptr = RemotePointer(region.rkey, 64, 13)
    wc = run_op(rig, qa.post_read(rptr))
    assert wc.ok and wc.data == b"payload-bytes"


def test_read_latency_exceeds_write_latency(rig):
    # A read is a full round trip with responder work; a write completes
    # after its ack but the payload path is one-way.
    qa, _ = rig.connect()
    region = rig.region(1)
    rptr = RemotePointer(region.rkey, 0, 32)

    ev = qa.post_write(rptr, b"x" * 32)
    rig.sim.run(until=ev)
    t_write = rig.sim.now

    ev = qa.post_read(rptr)
    t0 = rig.sim.now
    rig.sim.run(until=ev)
    t_read = rig.sim.now - t0
    assert t_read > t_write


def test_small_read_completes_in_microseconds(rig):
    # Sanity calibration: ~2 us for a small read on an idle fabric.
    qa, _ = rig.connect()
    region = rig.region(1)
    rptr = RemotePointer(region.rkey, 0, 64)
    ev = qa.post_read(rptr)
    rig.sim.run(until=ev)
    assert 1_000 < rig.sim.now < 4_000


def test_write_out_of_bounds_completes_with_rem_access_err(rig):
    qa, _ = rig.connect()
    region = rig.region(1, nbytes=128)
    rptr = RemotePointer(region.rkey, 120, 64)
    wc = run_op(rig, qa.post_write(rptr, b"y" * 64))
    assert not wc.ok and wc.status is WcStatus.REM_ACCESS_ERR


def test_read_out_of_bounds_completes_with_rem_access_err(rig):
    qa, _ = rig.connect()
    region = rig.region(1, nbytes=128)
    wc = run_op(rig, qa.post_read(RemotePointer(region.rkey, 100, 64)))
    assert wc.status is WcStatus.REM_ACCESS_ERR


def test_write_larger_than_extent_rejected_locally(rig):
    qa, _ = rig.connect()
    region = rig.region(1)
    with pytest.raises(QpError):
        qa.post_write(RemotePointer(region.rkey, 0, 4), b"too long")


def test_rkey_of_wrong_nic_rejected(rig):
    qa, _ = rig.connect()
    local_region = rig.region(0)  # registered on machine 0, QP points at 1
    with pytest.raises(QpError):
        qa.post_read(RemotePointer(local_region.rkey, 0, 8))


def test_unknown_rkey_rejected(rig):
    qa, _ = rig.connect()
    with pytest.raises(QpError):
        qa.post_read(RemotePointer(999999, 0, 8))


def test_unconnected_qp_rejected(rig):
    qa, _ = rig.connect()
    qa.destroy()
    region = rig.region(1)
    with pytest.raises(QpError):
        qa.post_read(RemotePointer(region.rkey, 0, 8))


def test_in_order_delivery_per_qp(rig):
    # Post a large write then a small one: both must land in post order.
    qa, _ = rig.connect()
    region = rig.region(1, nbytes=8192)
    big = RemotePointer(region.rkey, 0, 4096)
    small = RemotePointer(region.rkey, 4096, 8)
    order = []

    def watcher():
        seen_big = seen_small = False
        while not (seen_big and seen_small):
            if not seen_big and region.read(0, 4) == b"BBBB":
                order.append("big")
                seen_big = True
            if not seen_small and region.read(4096, 8) == b"SSSSSSSS":
                order.append("small")
                seen_small = True
            yield rig.sim.timeout(20)

    rig.sim.process(watcher())
    qa.post_write(big, b"BBBB" + b"b" * 4092)
    ev = qa.post_write(small, b"SSSSSSSS")
    rig.sim.run(until=ev)
    rig.sim.run(until=rig.sim.now + 1000)
    assert order == ["big", "small"]


def test_send_recv_roundtrip(rig):
    qa, qb = rig.connect()
    qb.post_recv(wr_id=7)
    wc = run_op(rig, qa.post_send(b"message"))
    assert wc.ok
    rcqe = qb.recv_cq.poll_one()
    assert rcqe is not None and rcqe.data == b"message" and rcqe.wr_id == 7


def test_send_without_posted_recv_is_rnr(rig):
    qa, _qb = rig.connect()
    wc = run_op(rig, qa.post_send(b"m"))
    assert wc.status is WcStatus.RNR_RETRY_EXC


def test_send_costs_more_than_write(rig):
    qa, qb = rig.connect()
    region = rig.region(1)
    ev = qa.post_write(RemotePointer(region.rkey, 0, 7), b"written")
    rig.sim.run(until=ev)
    t_write = rig.sim.now
    qb.post_recv()
    t0 = rig.sim.now
    ev = qa.post_send(b"sent!!!")
    rig.sim.run(until=ev)
    assert rig.sim.now - t0 > t_write


def test_write_to_dead_nic_times_out_with_retry_exc(rig):
    qa, _ = rig.connect()
    region = rig.region(1)
    rig.machines[1].nic.fail()
    wc = run_op(rig, qa.post_write(RemotePointer(region.rkey, 0, 4), b"dead"))
    assert wc.status is WcStatus.RETRY_EXC
    assert rig.sim.now >= rig.config.fabric.retry_timeout_ns
    assert region.read(0, 4) == b"\x00\x00\x00\x00"


def test_post_through_dead_local_nic_fails_fast(rig):
    qa, _ = rig.connect()
    region = rig.region(1)
    rig.machines[0].nic.fail()
    wc = run_op(rig, qa.post_write(RemotePointer(region.rkey, 0, 4), b"x" * 4))
    assert wc.status is WcStatus.LOCAL_QP_ERR


def test_loopback_connection_same_machine(rig):
    nic = rig.machines[0].nic
    qa, qb = rig.fabric.connect(nic, nic)
    region = rig.region(0)
    wc = run_op(rig, qa.post_write(RemotePointer(region.rkey, 0, 2), b"lo"))
    assert wc.ok and region.read(0, 2) == b"lo"
    assert nic.active_qps == 2


def test_loopback_faster_than_switch_hop():
    rig1, rig2 = Rig(), Rig()
    # switch path
    qa, _ = rig1.connect()
    region = rig1.region(1)
    ev = qa.post_read(RemotePointer(region.rkey, 0, 32))
    rig1.sim.run(until=ev)
    t_remote = rig1.sim.now
    # loopback path
    nic = rig2.machines[0].nic
    qa2, _ = rig2.fabric.connect(nic, nic)
    region2 = rig2.region(0)
    ev = qa2.post_read(RemotePointer(region2.rkey, 0, 32))
    rig2.sim.run(until=ev)
    assert rig2.sim.now < t_remote


def test_qp_count_penalty_slows_ops():
    cfg = SimConfig()
    assert cfg.nic.qp_penalty_ns(10) == 0
    assert cfg.nic.qp_penalty_ns(cfg.nic.qp_cache_entries) == 0
    p1 = cfg.nic.qp_penalty_ns(cfg.nic.qp_cache_entries + 64)
    p2 = cfg.nic.qp_penalty_ns(cfg.nic.qp_cache_entries * 4)
    assert 0 < p1 < p2


def test_many_qps_slow_down_reads(rig):
    region = rig.region(1)
    qa, _ = rig.connect()
    ev = qa.post_read(RemotePointer(region.rkey, 0, 32))
    rig.sim.run(until=ev)
    base = rig.sim.now
    # Open enough connections to blow the QP cache on both NICs.
    for _ in range(600):
        rig.connect()
    t0 = rig.sim.now
    ev = qa.post_read(RemotePointer(region.rkey, 0, 32))
    rig.sim.run(until=ev)
    assert rig.sim.now - t0 > base


def test_metrics_count_ops(rig):
    qa, qb = rig.connect()
    region = rig.region(1)
    rptr = RemotePointer(region.rkey, 0, 8)
    ev = qa.post_write(rptr, b"12345678")
    rig.sim.run(until=ev)
    ev = qa.post_read(rptr)
    rig.sim.run(until=ev)
    qb.post_recv()
    ev = qa.post_send(b"hi")
    rig.sim.run(until=ev)
    counters = rig.fabric.metrics.counters
    assert counters["rdma.write.ops"].value == 1
    assert counters["rdma.read.ops"].value == 1
    assert counters["rdma.send.ops"].value == 1
    assert counters["rdma.write.bytes"].value == 8


def test_memory_region_bounds_and_words():
    r = MemoryRegion(64, name="t")
    r.write_u64(0, 0xDEADBEEF00112233)
    assert r.read_u64(0) == 0xDEADBEEF00112233
    r.write_u32(8, 0xCAFE)
    assert r.read_u32(8) == 0xCAFE
    r.zero(0, 8)
    assert r.read_u64(0) == 0
    with pytest.raises(AccessViolation):
        r.read(60, 8)
    with pytest.raises(AccessViolation):
        r.write(-1, b"z")
    with pytest.raises(ValueError):
        MemoryRegion(0)


def test_double_registration_rejected(rig):
    region = rig.region(0)
    with pytest.raises(ValueError):
        rig.machines[1].nic.register(region)


def test_deregister_makes_rkey_unknown(rig):
    qa, _ = rig.connect()
    region = rig.region(1)
    rkey = region.rkey
    rig.fabric.deregister(region)
    with pytest.raises(QpError):
        qa.post_read(RemotePointer(rkey, 0, 8))


def test_remote_pointer_slice():
    rp = RemotePointer(5, 100, 50)
    s = rp.slice(10, 20)
    assert s == RemotePointer(5, 110, 20)
    with pytest.raises(ValueError):
        rp.slice(40, 20)


def test_in_order_delivery_property():
    """RC ordering holds for arbitrary interleavings of write sizes."""
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=2048),
                    min_size=2, max_size=12))
    def check(sizes):
        rig = Rig()
        qa, _ = rig.connect()
        region = rig.region(1, nbytes=1 << 16)
        # Write i's first byte encodes its sequence number; all writes
        # target the same offset, so the FINAL state must be the LAST one.
        last = None
        for i, size in enumerate(sizes):
            payload = bytes([i]) * size
            last = qa.post_write(RemotePointer(region.rkey, 0, 4096),
                                 payload)
        rig.sim.run(until=last)
        rig.sim.run(until=rig.sim.now + 10_000)
        assert region.read(0, 1)[0] == len(sizes) - 1

    check()


def test_nic_engine_depth_reflects_backlog(rig):
    nic = rig.machines[0].nic
    qa, _ = rig.connect()
    region = rig.region(1, nbytes=1 << 20)
    rptr = RemotePointer(region.rkey, 0, 1 << 19)
    for _ in range(5):
        qa.post_write(rptr, b"x" * (1 << 19))  # 512 KiB each: ~100 us ser
    assert nic.tx.depth >= 4  # queued behind the first
    rig.sim.run(until=rig.sim.now + 10_000_000)
    assert nic.tx.depth == 0
