"""Unreliable Datagram endpoints: delivery, loss, no-QP-penalty."""

import pytest

from repro.config import SimConfig
from repro.rdma import UD_MTU, Opcode, WcStatus

from .conftest import Rig


def make_pair(rig, a=0, b=1):
    qa = rig.fabric.create_ud_qp(rig.machines[a].nic)
    qb = rig.fabric.create_ud_qp(rig.machines[b].nic)
    return qa, qb


def test_datagram_delivery(rig):
    qa, qb = make_pair(rig)
    qb.post_recv(wr_id=3)
    wc = rig.sim.run(until=qa.post_send(qb, b"datagram"))
    assert wc.ok and wc.opcode is Opcode.SEND
    rig.sim.run(until=rig.sim.now + 10_000)
    cqe = qb.recv_cq.poll_one()
    assert cqe is not None and cqe.data == b"datagram" and cqe.wr_id == 3


def test_send_completes_before_delivery():
    # UD completion is local: it fires before the datagram even lands.
    rig = Rig()
    qa, qb = make_pair(rig)
    qb.post_recv()
    ev = qa.post_send(qb, b"x" * 64)
    rig.sim.run(until=ev)
    t_complete = rig.sim.now
    while qb.recv_cq.poll_one() is None:
        rig.sim.step()
    assert rig.sim.now > t_complete


def test_no_posted_recv_silently_drops(rig):
    qa, qb = make_pair(rig)
    wc = rig.sim.run(until=qa.post_send(qb, b"lost"))
    assert wc.ok  # sender never learns
    rig.sim.run(until=rig.sim.now + 10_000)
    assert qb.recv_cq.poll_one() is None
    assert rig.fabric.metrics.counters["rdma.ud_send.no_recv"].value == 1


def test_mtu_enforced(rig):
    qa, qb = make_pair(rig)
    with pytest.raises(ValueError):
        qa.post_send(qb, b"x" * (UD_MTU + 1))


def test_injected_loss_drops_deterministically():
    cfg = SimConfig().with_overrides(nic={"ud_drop_probability": 0.5})
    rig = Rig(config=cfg)
    qa, qb = make_pair(rig)
    delivered = 0
    for i in range(100):
        qb.post_recv()
        rig.sim.run(until=qa.post_send(qb, b"d%d" % i))
    rig.sim.run(until=rig.sim.now + 100_000)
    while qb.recv_cq.poll_one() is not None:
        delivered += 1
    assert 25 < delivered < 75  # ~half lost
    dropped = rig.fabric.metrics.counters["rdma.ud_send.dropped"].value
    assert dropped == 100 - delivered


def test_ud_pays_no_qp_penalty_under_many_connections():
    """HERD's scalability argument: UD cost is flat in connection count."""
    def ud_latency(n_rc_connections):
        rig = Rig()
        for _ in range(n_rc_connections):
            rig.connect()  # blow up the RC QP count on both NICs
        qa, qb = make_pair(rig)
        qb.post_recv()
        t0 = rig.sim.now
        rig.sim.run(until=qa.post_send(qb, b"x" * 32))
        # Measure until the datagram is consumed.
        while qb.recv_cq.poll_one() is None:
            rig.sim.step()
        return rig.sim.now - t0

    base = ud_latency(0)
    loaded = ud_latency(600)  # far past the 256-entry QP cache
    assert loaded <= base * 1.05

    # Contrast: an RC write at the same connection count pays the penalty.
    from repro.rdma import RemotePointer
    rig0, rig1 = Rig(), Rig()
    for rig, n in ((rig0, 0), (rig1, 600)):
        for _ in range(n):
            rig.connect()
    for rig in (rig0, rig1):
        rig._qa, _ = rig.connect()
        rig._region = rig.region(1)
    t = []
    for rig in (rig0, rig1):
        t0 = rig.sim.now
        rig.sim.run(until=rig._qa.post_write(
            RemotePointer(rig._region.rkey, 0, 32), b"y" * 32))
        t.append(rig.sim.now - t0)
    assert t[1] > t[0] * 1.1


def test_send_through_dead_nic_fails_locally(rig):
    qa, qb = make_pair(rig)
    rig.machines[0].nic.fail()
    wc = rig.sim.run(until=qa.post_send(qb, b"x"))
    assert wc.status is WcStatus.LOCAL_QP_ERR


def test_send_to_dead_target_vanishes(rig):
    qa, qb = make_pair(rig)
    qb.post_recv()
    rig.machines[1].nic.fail()
    wc = rig.sim.run(until=qa.post_send(qb, b"x"))
    assert wc.ok  # local completion regardless
    rig.sim.run(until=rig.sim.now + 10_000)
    assert qb.recv_cq.poll_one() is None
