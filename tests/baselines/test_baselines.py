"""Baseline store models: correctness and architectural cost ordering."""

import pytest

from repro.baselines import (
    MemcachedClient,
    MemcachedServer,
    RamcloudClient,
    RamcloudServer,
    RedisClient,
    RedisServer,
)
from repro.config import SimConfig
from repro.hardware import Machine
from repro.rdma import Fabric, TcpNetwork
from repro.sim import Simulator


class Rig:
    def __init__(self, n_machines=2):
        self.config = SimConfig()
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, self.config)
        self.tcpnet = TcpNetwork(self.sim, self.config)
        self.machines = []
        for i in range(n_machines):
            m = Machine(self.sim, i, self.config)
            self.fabric.attach(m)
            self.tcpnet.attach(m)
            self.machines.append(m)


def build(kind):
    rig = Rig()
    if kind == "memcached":
        server = MemcachedServer(rig.sim, rig.config, rig.machines[0])
        client = MemcachedClient(rig.sim, rig.config, rig.machines[1], server)
    elif kind == "redis":
        server = RedisServer(rig.sim, rig.config, rig.machines[0])
        client = RedisClient(rig.sim, rig.config, rig.machines[1], server)
    else:
        server = RamcloudServer(rig.sim, rig.config, rig.machines[0])
        client = RamcloudClient(rig.sim, rig.config, rig.machines[1], server)
    server.start()
    return rig, server, client


@pytest.mark.parametrize("kind", ["memcached", "redis", "ramcloud"])
def test_set_get_delete_roundtrip(kind):
    rig, _server, client = build(kind)

    def app():
        assert (yield from client.put(b"k", b"v")) is not None
        assert (yield from client.get(b"k")) == b"v"
        assert (yield from client.get(b"nope")) is None
        yield from client.delete(b"k")
        assert (yield from client.get(b"k")) is None

    rig.sim.run(until=rig.sim.process(app()))


@pytest.mark.parametrize("kind", ["memcached", "redis", "ramcloud"])
def test_update_overwrites(kind):
    rig, _server, client = build(kind)

    def app():
        yield from client.put(b"k", b"v1")
        yield from client.update(b"k", b"v2")
        assert (yield from client.get(b"k")) == b"v2"

    rig.sim.run(until=rig.sim.process(app()))


def test_redis_shards_keys_across_instances():
    rig, server, client = build("redis")

    def app():
        for i in range(64):
            yield from client.put(f"key-{i}".encode(), b"v")

    rig.sim.run(until=rig.sim.process(app()))
    sizes = [len(inst.store) for inst in server.instances]
    assert sum(sizes) == 64
    assert sum(1 for s in sizes if s > 0) >= 5


def test_ramcloud_latency_far_below_tcp_baselines():
    def one_get_latency(kind):
        rig, _server, client = build(kind)
        out = {}

        def app():
            yield from client.put(b"k", b"v" * 32)
            t0 = rig.sim.now
            yield from client.get(b"k")
            out["lat"] = rig.sim.now - t0

        rig.sim.run(until=rig.sim.process(app()))
        return out["lat"]

    lat_rc = one_get_latency("ramcloud")
    lat_mc = one_get_latency("memcached")
    lat_rd = one_get_latency("redis")
    assert lat_rc < lat_mc / 3
    assert lat_rc < lat_rd / 3
    assert lat_rc < 30_000  # microsecond class


def test_hydradb_latency_below_all_baselines():
    from repro import HydraCluster

    cluster = HydraCluster(n_server_machines=1, shards_per_server=4)
    cluster.start()
    hclient = cluster.client()
    out = {}

    def app():
        yield from hclient.put(b"k", b"v" * 32)
        t0 = cluster.sim.now
        yield from hclient.get(b"k")
        out["msg"] = cluster.sim.now - t0
        t0 = cluster.sim.now
        yield from hclient.get(b"k")
        out["read"] = cluster.sim.now - t0

    cluster.run(app())

    def one_get_latency(kind):
        rig, _server, client = build(kind)
        res = {}

        def app2():
            yield from client.put(b"k", b"v" * 32)
            t0 = rig.sim.now
            yield from client.get(b"k")
            res["lat"] = rig.sim.now - t0

        rig.sim.run(until=rig.sim.process(app2()))
        return res["lat"]

    for kind in ("memcached", "redis", "ramcloud"):
        assert out["msg"] < one_get_latency(kind)
    # Unloaded baseline TCP latency is ~50x the RDMA-read GET.
    assert one_get_latency("memcached") > 20 * out["read"]


def test_memcached_global_lock_limits_concurrency():
    rig, server, client0 = build("memcached")
    clients = [client0] + [
        MemcachedClient(rig.sim, rig.config, rig.machines[1], server)
        for _ in range(7)
    ]
    done = {}

    def worker(c, wid):
        for i in range(20):
            yield from c.put(f"w{wid}-{i}".encode(), b"x" * 16)
        done[wid] = rig.sim.now

    procs = [rig.sim.process(worker(c, i)) for i, c in enumerate(clients)]
    rig.sim.run(until=rig.sim.all_of(procs))
    assert len(done) == 8
    assert len(server.store) == 160


def test_double_start_rejected():
    for kind in ("memcached", "ramcloud"):
        rig, server, _client = build(kind)
        with pytest.raises(RuntimeError):
            server.start()


def test_redis_skew_degrades_throughput():
    """§3's critique: without rebalancing, skew rapidly degrades Redis —
    the hot instance's single thread becomes the whole system's ceiling."""
    from repro.bench.runner import drive_ycsb, preload_dicts
    from repro.index.hashing import hash64
    from repro.workloads.ycsb import YcsbSpec, YcsbWorkload

    def throughput(distribution):
        rig = Rig(n_machines=6)
        server = RedisServer(rig.sim, rig.config, rig.machines[0])
        # A tiny keyspace makes the zipfian head brutal.
        wl = YcsbWorkload(YcsbSpec(name="t", n_records=60, n_ops=3000,
                                   get_fraction=0.5,
                                   distribution=distribution))
        n_inst = len(server.instances)
        preload_dicts([i.store for i in server.instances],
                      lambda k: hash64(k) % n_inst, wl)
        server.start()
        clients = [RedisClient(rig.sim, rig.config,
                               rig.machines[1 + i % 5], server)
                   for i in range(24)]
        return drive_ycsb(rig.sim, clients, wl).throughput_mops

    t_unif = throughput("uniform")
    t_zipf = throughput("zipfian")
    assert t_zipf < t_unif


def test_hydradb_robust_under_same_skew():
    """§4.1.1's counterpoint: remote-pointer caching absorbs hot reads, so
    HydraDB degrades far less than Redis under identical skew."""
    from repro import HydraCluster
    from repro.bench.runner import run_hydra_ycsb
    from repro.workloads.ycsb import YcsbSpec, YcsbWorkload

    def throughput(distribution):
        wl = YcsbWorkload(YcsbSpec(name="t", n_records=60, n_ops=3000,
                                   get_fraction=0.5,
                                   distribution=distribution))
        cluster = HydraCluster(n_server_machines=1, shards_per_server=8,
                               n_client_machines=5)
        return run_hydra_ycsb(cluster, wl, n_clients=24,
                              clients_per_machine=5).throughput_mops

    t_unif = throughput("uniform")
    t_zipf = throughput("zipfian")
    # Far gentler degradation than the Redis case above.
    assert t_zipf > 0.5 * t_unif
