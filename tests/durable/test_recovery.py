"""Full-crash recovery, typed blackout errors, salvage and skew guards.

Covers the correlated-failure path end to end (primary *and* secondary
die; SWAT rebuilds the shard from the durable log with zero lost acked
writes), the :class:`RecoveryInProgress` typed error clients see when a
deadline lapses mid-replay, the ``promote_drain()`` contract for a
secondary stopped on a merge fault, and the clock-skew lease guard.
"""

import pytest

from repro import HydraCluster, SimConfig
from repro.bench.experiments import recovery_dualfail
from repro.core.errors import (
    HydraError,
    RecoveryInProgress,
    ShardUnavailable,
)

_MS = 1_000_000


# -- dual-failure recovery ----------------------------------------------------

@pytest.mark.parametrize("ack_mode", ["ack_on_flush", "ack_on_replicate"])
def test_dual_crash_recovers_from_durable_log(ack_mode):
    row = recovery_dualfail(scale=0.05, ack_modes=(ack_mode,),
                            n_clients=2, n_keys=32)[0]
    assert row["recoveries"] == 1
    assert row["replayed_records"] > 0
    assert row["untyped_errors"] == 0
    assert row["recovered_ratio"] >= 0.8
    assert row["blackout_ms"] <= 500.0
    if ack_mode == "ack_on_flush":
        # The hard durability gate: an ack meant the group commit landed.
        assert row["lost_acked_writes"] == 0


def test_recovery_bumps_routing_generation_and_clears_flag():
    cfg = SimConfig().with_overrides(
        durability={"enabled": True, "ack_mode": "ack_on_flush"},
        coord={"heartbeat_ns": 50 * _MS, "session_timeout_ns": 200 * _MS},
        client={"op_timeout_ns": 5 * _MS},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    cluster.enable_ha()
    cluster.start()
    sim = cluster.sim
    client = cluster.client()
    sid = cluster.routing.shard_ids()[0]
    old_shard = cluster.routing.resolve(sid)
    gen_before = cluster.generation

    def app():
        for i in range(16):
            yield from client.put(f"g{i:03d}".encode(), b"v" * 16)
        cluster.servers[0].kill()
        # Ride out detection + replay; failover-aware retries replay
        # every op through the bumped routing generation.
        yield sim.timeout(400 * _MS)
        for i in range(16):
            got = yield from client.get(f"g{i:03d}".encode())
            assert got == b"v" * 16

    cluster.run(app())
    assert cluster.generation > gen_before
    assert cluster.routing.resolve(sid) is not old_shard
    assert not cluster.routing.is_recovering(sid)
    assert cluster.metrics.counter("durable.recoveries").value == 1
    assert cluster.metrics.counter("swat.log_recoveries").value == 1


def test_recovery_in_progress_is_typed_and_raised_mid_replay():
    assert issubclass(RecoveryInProgress, ShardUnavailable)
    assert issubclass(RecoveryInProgress, HydraError)
    cfg = SimConfig().with_overrides(
        durability={"enabled": True},
        client={"op_timeout_ns": 1 * _MS},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    cluster.start()
    client = cluster.client(deadline_us=3_000)
    sid = cluster.routing.shard_ids()[0]

    def app():
        yield from client.put(b"k", b"v")
        # Freeze the shard in the mid-replay state recover_shard holds it
        # in: marked recovering, unreachable.
        cluster.routing.mark_recovering(sid)
        cluster.servers[0].kill()
        with pytest.raises(RecoveryInProgress):
            yield from client.get(b"k")
        # Once recovery clears, the same lapse degrades to the generic
        # typed unavailability error.
        cluster.routing.clear_recovering(sid)
        with pytest.raises(ShardUnavailable):
            yield from client.get(b"k")

    cluster.run(app())


# -- promote_drain contract (satellite: merge-faulted secondary) --------------

def test_promote_drain_applies_unmerged_tail_but_not_failed_stream():
    cfg = SimConfig().with_overrides(replication={"replicas": 1})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    cluster.start()
    client = cluster.client()
    sid = cluster.routing.shard_ids()[0]
    sec = cluster.secondaries[sid][0]

    def app():
        for i in range(8):
            yield from client.put(f"d{i:03d}".encode(), b"v")
        # Let the merge thread drain fully, then halt it between records
        # so the next batch stays in the ring as an in-sequence tail.
        yield cluster.sim.timeout(2 * _MS)
        sec.stop()
        for i in range(8, 16):
            yield from client.put(f"d{i:03d}".encode(), b"v")

    cluster.run(app())
    assert sec.applied_seq == 8
    applied_before = sec.applied_seq
    # Stopped on a merge fault: the stream past the failure is
    # unrecoverable, so promotion must NOT silently re-ack it.
    sec.failing = True
    assert sec.promote_drain() == 0
    assert sec.applied_seq == applied_before
    # The same ring, healthy: the in-sequence tail folds in exactly once.
    sec.failing = False
    drained = sec.promote_drain()
    assert drained > 0
    assert sec.applied_seq == applied_before + drained
    assert sec.promote_drain() == 0  # nothing left, nothing re-applied


# -- clock-skew lease guard (satellite) ---------------------------------------

def _skewed_reads(guard_ns):
    cfg = SimConfig(seed=7).with_overrides(
        hydra={"lease_min_ns": 300_000, "lease_max_ns": 300_000,
               "lease_renew_period_ns": 10 ** 9},
        client={"lease_skew_guard_ns": guard_ns},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    cluster.start()
    # The machine's clock runs 1 ms behind true time: unguarded, cached
    # pointers look live long past their real lease horizon.
    cluster.client_machines[0].clock_skew_ns = -1_000_000
    client = cluster.client()
    sim = cluster.sim
    wrong = [0]

    def app():
        yield from client.put(b"skew", b"v0")
        for _ in range(40):
            yield sim.timeout(400_000)
            got = yield from client.get(b"skew")
            if got != b"v0":
                wrong[0] += 1

    cluster.run(app())
    return (cluster.metrics.counter("client.lease_skew_hazards").value,
            wrong[0])


def test_skewed_clock_without_guard_trusts_dead_leases():
    hazards, wrong = _skewed_reads(guard_ns=0)
    assert hazards > 0  # pointers used past their true lease horizon
    assert wrong == 0


def test_skew_guard_keeps_reads_inside_lease_horizon():
    hazards, wrong = _skewed_reads(guard_ns=1_000_000)
    assert hazards == 0
    assert wrong == 0
