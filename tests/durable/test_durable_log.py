"""Durable write-behind log: framing, group commit, crash, replay.

The contract under test (docs/PROTOCOLS.md, durability section): every
flushed frame is indicator-headed and guardian-summed; a crash lands an
8-byte-aligned prefix whose scan classifies as a *torn tail* (truncate)
while non-zero media past a bad frame is *corruption* (stop, report);
replay force-applies logged versions so running it twice is idempotent;
and in ``ack_on_flush`` mode the shared flush event fires only after the
data blob *and* the watermark have landed.
"""

import pytest

from repro.config import SimConfig
from repro.core import ShardStore
from repro.durable import (
    DurableLog,
    LOG_BASE,
    PMDevice,
    read_watermark,
    replay_into,
    scan_log,
)
from repro.hardware import Machine
from repro.protocol import Op
from repro.rdma import Fabric
from repro.sim import MetricSet, Simulator


def make_env(capacity=1 << 20, **dur):
    config = SimConfig().with_overrides(
        durability={"enabled": True, **dur})
    sim = Simulator()
    metrics = MetricSet(sim)
    device = PMDevice(sim, capacity)
    dlog = DurableLog(sim, config, device, metrics=metrics)
    return sim, config, device, dlog, metrics


def make_store(sim, config):
    fabric = Fabric(sim, config)
    machine = Machine(sim, 0, config)
    fabric.attach(machine)
    return ShardStore(sim, config, machine.nic, 0, "s0")


def append_n(dlog, n, start=0, value=b"v" * 24):
    events = []
    for i in range(start, start + n):
        _cost, ev = dlog.append(Op.PUT, f"k{i:04d}".encode(), value, i + 1)
        events.append(ev)
    return events


def replay(sim, device, scan, store, config):
    out = []

    def proc():
        applied = yield from replay_into(sim, device, scan, store, config)
        out.append(applied)

    sim.process(proc())
    sim.run()
    return out[0]


# -- clean path ---------------------------------------------------------------

def test_flush_scan_roundtrip_clean_end():
    sim, _cfg, device, dlog, metrics = make_env(group_commit_records=4)
    dlog.start()
    append_n(dlog, 6)
    sim.run(until=10_000_000)
    assert dlog.flushed_seq == 6
    scan = scan_log(device)
    assert scan.stop_reason == "clean_end"
    assert [r.seq for r in scan.records] == [1, 2, 3, 4, 5, 6]
    assert [r.version for r in scan.records] == [1, 2, 3, 4, 5, 6]
    assert scan.torn_bytes == 0 and scan.guardian_mismatches == 0
    assert scan.watermark_seq == 6 and scan.next_seq == 6
    assert metrics.counter("durable.flushes").value >= 1
    assert metrics.counter("durable.records").value == 6


def test_group_commit_coalesces_and_event_waits_for_watermark():
    sim, _cfg, device, dlog, metrics = make_env(
        ack_mode="ack_on_flush", group_commit_records=2)
    dlog.start()
    ev = append_n(dlog, 2)
    # Every record staged before one flush shares one event.
    assert ev[0] is ev[1] and ev[0] is not None
    seen = []

    def waiter():
        yield ev[0]
        # At flush-event time both the data frames and the watermark
        # must already be on media: durable means replayable *now*.
        scan = scan_log(device)
        seen.append((sim.now, scan.next_seq, scan.watermark_seq))

    sim.process(waiter())
    sim.run(until=10_000_000)
    assert seen and seen[0][1] == 2 and seen[0][2] == 2
    assert seen[0][0] > 0  # the PM write cost was actually paid
    # A post-flush append opens a fresh batch with a fresh event.
    _cost, ev3 = dlog.append(Op.PUT, b"late", b"v", 3)
    assert ev3 is not None and ev3 is not ev[0]
    assert metrics.tally("durable.group_records").count >= 1


def test_ack_on_replicate_returns_no_event():
    _sim, _cfg, _device, dlog, _m = make_env(ack_mode="ack_on_replicate")
    cost, ev = dlog.append(Op.PUT, b"k", b"v", 1)
    assert cost > 0 and ev is None


# -- crash artifacts ----------------------------------------------------------

def test_crash_mid_flush_leaves_truncatable_torn_tail():
    sim, cfg, device, dlog, _m = make_env(
        group_commit_records=100, group_commit_ns=10_000)
    dlog.start()
    append_n(dlog, 3, value=b"v" * 96)
    # The aging window lapses at 10 us and the blob write begins; crash
    # partway through so only a word-aligned prefix lands.
    cost = device.write_cost(3 * (8 + 24 + 96 + 8))
    sim.run(until=10_000 + cost // 2)
    dlog.crash()
    assert device.torn_writes == 1
    scan = scan_log(device)
    assert scan.stop_reason == "torn_tail"
    assert scan.torn_bytes > 0
    assert len(scan.records) < 3
    # Recovery truncates the tail and replays what survived, cleanly.
    device.zero(LOG_BASE + scan.valid_bytes,
                device.hiwater - (LOG_BASE + scan.valid_bytes))
    store = make_store(sim, cfg)
    assert replay(sim, device, scan, store, cfg) == len(scan.records)
    rescan = scan_log(device)
    assert rescan.stop_reason == "clean_end"
    assert [r.seq for r in rescan.records] == [r.seq for r in scan.records]


def test_crash_with_no_inflight_write_is_harmless():
    sim, _cfg, device, dlog, metrics = make_env(group_commit_records=2)
    dlog.start()
    append_n(dlog, 2)
    sim.run(until=10_000_000)
    dlog.crash()
    assert device.torn_writes == 0
    assert scan_log(device).stop_reason == "clean_end"
    # Unflushed staging is counted as lost write-behind exposure.
    dlog2 = DurableLog(sim, _cfg, device, metrics=metrics,
                       start_seq=2, tail=dlog.tail, wm_epoch=dlog.wm_epoch)
    dlog2.append(Op.PUT, b"k", b"v", 3)
    dlog2.crash()
    assert metrics.counter("durable.lost_pending").value == 1


def test_mid_log_corruption_reported_as_guardian_mismatch():
    sim, _cfg, device, dlog, _m = make_env(group_commit_records=1)
    dlog.start()
    append_n(dlog, 3, value=b"v" * 8)
    sim.run(until=10_000_000)
    assert scan_log(device).stop_reason == "clean_end"
    # Flip one payload byte inside frame 2: its guardian fails while
    # frame 3 keeps the suffix non-zero, so this is corruption, not a
    # torn tail — replay must stop and say so.
    frame = 8 + (24 + 5 + 8) + 8
    device.media[LOG_BASE + frame + 8 + 1] ^= 0xFF
    scan = scan_log(device)
    assert scan.stop_reason == "guardian_mismatch"
    assert scan.guardian_mismatches == 1
    assert [r.seq for r in scan.records] == [1]


# -- replay semantics ---------------------------------------------------------

def test_double_replay_is_idempotent_and_versions_monotonic():
    sim, cfg, device, dlog, _m = make_env(group_commit_records=1)
    dlog.start()
    dlog.append(Op.PUT, b"a", b"v1", 1)
    dlog.append(Op.PUT, b"a", b"v2", 2)
    dlog.append(Op.PUT, b"b", b"w1", 1)
    dlog.append(Op.DELETE, b"b", b"", 0)
    sim.run(until=10_000_000)
    scan = scan_log(device)
    store = make_store(sim, cfg)
    assert replay(sim, device, scan, store, cfg) == 4
    assert store.dump() == {b"a": b"v2"}
    assert store.get(b"a").version == 2
    # Replaying the same log again rewrites the same forced versions:
    # nothing regresses, nothing double-bumps.
    assert replay(sim, device, scan, store, cfg) == 4
    assert store.dump() == {b"a": b"v2"}
    assert store.get(b"a").version == 2


def test_watermark_survives_losing_one_slot():
    sim, _cfg, device, dlog, _m = make_env(group_commit_records=1)
    dlog.start()
    dlog.append(Op.PUT, b"k", b"v", 1)
    sim.run(until=5_000_000)
    first = read_watermark(device)
    dlog.append(Op.PUT, b"k", b"v2", 2)
    sim.run(until=10_000_000)
    seq, epoch = read_watermark(device)
    assert (seq, epoch) == (2, 2) and first == (1, 1)
    # Tear the newer slot (A/B alternation: epoch 2 lives in slot 0);
    # the reader falls back to the surviving older slot.
    device.media[5] ^= 0xFF
    assert read_watermark(device) == (1, 1)


def test_log_full_is_fail_soft_and_still_fires_the_ack():
    sim, _cfg, device, dlog, metrics = make_env(
        capacity=128, ack_mode="ack_on_flush", group_commit_records=1)
    dlog.start()
    _cost, ev = dlog.append(Op.PUT, b"k", b"v" * 200, 1)
    fired = []

    def waiter():
        yield ev
        fired.append(sim.now)

    sim.process(waiter())
    sim.run(until=10_000_000)
    assert metrics.counter("durable.log_full").value == 1
    assert fired  # the sweep must not deadlock on a full log


# -- device model -------------------------------------------------------------

def test_device_write_protocol_guards():
    sim = Simulator()
    device = PMDevice(sim, 256)
    device.begin_write(0, b"x" * 64)
    with pytest.raises(RuntimeError):
        device.begin_write(64, b"y" * 8)
    device.commit_write()
    assert device.read(0, 64) == b"x" * 64 and device.hiwater == 64
    with pytest.raises(ValueError):
        device.begin_write(250, b"z" * 16)
    device.crash()  # no write in flight: a no-op
    assert device.torn_writes == 0
