"""ShardStore: the lock-free single-owner storage engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.core import ShardStore
from repro.hardware import Machine
from repro.kvmem import GUARD_DEAD, GUARD_LIVE, parse_item, read_guardian
from repro.protocol import Op, Status
from repro.rdma import Fabric
from repro.sim import Simulator


def make_store(config=None, **kw):
    config = config or SimConfig()
    sim = Simulator()
    fabric = Fabric(sim, config)
    machine = Machine(sim, 0, config)
    fabric.attach(machine)
    return sim, ShardStore(sim, config, machine.nic, 0, "s0", **kw)


def test_put_then_get():
    _, store = make_store()
    res = store.upsert(b"k", b"v1", Op.PUT)
    assert res.status is Status.OK and res.version == 1
    got = store.get(b"k")
    assert got.status is Status.OK and got.value == b"v1"
    assert got.version == 1 and got.offset == res.offset
    assert got.lease_expiry_ns > 0
    assert len(store) == 1


def test_get_missing():
    _, store = make_store()
    res = store.get(b"nope")
    assert res.status is Status.NOT_FOUND and res.cost_ns > 0


def test_insert_semantics():
    _, store = make_store()
    assert store.upsert(b"k", b"v", Op.INSERT).status is Status.OK
    assert store.upsert(b"k", b"v2", Op.INSERT).status is Status.EXISTS
    assert store.get(b"k").value == b"v"


def test_update_semantics():
    _, store = make_store()
    assert store.upsert(b"k", b"v", Op.UPDATE).status is Status.NOT_FOUND
    store.upsert(b"k", b"v1", Op.PUT)
    res = store.upsert(b"k", b"v2", Op.UPDATE)
    assert res.status is Status.OK and res.version == 2
    assert store.get(b"k").value == b"v2"


def test_update_is_out_of_place_and_kills_old_guardian():
    _, store = make_store()
    r1 = store.upsert(b"k", b"v1", Op.PUT)
    r2 = store.upsert(b"k", b"v2", Op.PUT)
    assert r2.offset != r1.offset
    assert r2.retired_offset == r1.offset
    # Old item: guardian flipped to DEAD, content intact (readers detect).
    assert read_guardian(store.region, r1.offset, 1, 2) == GUARD_DEAD
    old = parse_item(store.region.read(r1.offset, r1.extent))
    assert old is not None and not old.live and old.value == b"v1"
    # New item live.
    assert read_guardian(store.region, r2.offset, 1, 2) == GUARD_LIVE


def test_old_extent_not_reused_before_lease_expiry():
    sim, store = make_store()
    r1 = store.upsert(b"k", b"v1", Op.PUT)
    store.get(b"k")  # give it a lease
    store.upsert(b"k", b"v2", Op.PUT)
    # The old extent is retired but still allocated (lease not expired).
    assert store.alloc.live_extents == 2
    assert store.reclaimer.pending == 1
    store.reclaimer.start()
    sim.run(until=SimConfig().hydra.lease_min_ns * 2)
    assert store.alloc.live_extents == 1
    del r1


def test_delete():
    _, store = make_store()
    store.upsert(b"k", b"v", Op.PUT)
    res = store.remove(b"k")
    assert res.status is Status.OK and res.retired_offset >= 0
    assert store.get(b"k").status is Status.NOT_FOUND
    assert store.remove(b"k").status is Status.NOT_FOUND
    assert len(store) == 0


def test_lease_renew():
    _, store = make_store()
    assert store.lease_renew(b"k").status is Status.NOT_FOUND
    r = store.upsert(b"k", b"v", Op.PUT)
    res = store.lease_renew(b"k")
    assert res.status is Status.OK
    assert res.lease_expiry_ns >= r.lease_expiry_ns
    assert res.offset == r.offset and res.extent == r.extent


def test_versions_monotonic_per_key():
    _, store = make_store()
    for i in range(1, 6):
        res = store.upsert(b"k", f"v{i}".encode(), Op.PUT)
        assert res.version == i
    # Delete + reinsert restarts versioning (fresh key).
    store.remove(b"k")
    assert store.upsert(b"k", b"new", Op.PUT).version == 1


def test_apply_replica_forces_version():
    _, store = make_store()
    res = store.apply(Op.PUT, b"k", b"v", version=17)
    assert res.status is Status.OK and res.version == 17
    assert store.get(b"k").version == 17
    res = store.apply(Op.DELETE, b"k", b"")
    assert res.status is Status.OK
    with pytest.raises(ValueError):
        store.apply(Op.GET, b"k", b"")


def test_get_cost_scales_with_value_size():
    _, store = make_store()
    store.upsert(b"small", b"v" * 8, Op.PUT)
    store.upsert(b"large", b"v" * 4000, Op.PUT)
    c_small = store.get(b"small").cost_ns
    c_large = store.get(b"large").cost_ns
    assert c_large > c_small + 200


def test_numa_remote_mode_costs_more():
    _, local = make_store(numa_mode="local")
    _, remote = make_store(numa_mode="remote")
    _, inter = make_store(numa_mode="interleaved")
    for s in (local, remote, inter):
        s.upsert(b"k", b"v" * 32, Op.PUT)
    cl = local.get(b"k").cost_ns
    ci = inter.get(b"k").cost_ns
    cr = remote.get(b"k").cost_ns
    assert cl < ci < cr


def test_invalid_modes_rejected():
    with pytest.raises(ValueError):
        make_store(numa_mode="bogus")
    with pytest.raises(ValueError):
        make_store(table_kind="btree")


def test_chained_table_kind_works():
    _, store = make_store(table_kind="chained")
    store.upsert(b"k", b"v", Op.PUT)
    assert store.get(b"k").value == b"v"


def test_arena_exhaustion_returns_error_status():
    cfg = SimConfig()
    cfg = cfg.with_overrides(memory={"arena_bytes": 256,
                                     "size_classes": (128,)})
    _, store = make_store(cfg)
    assert store.upsert(b"a", b"v", Op.PUT).status is Status.OK
    assert store.upsert(b"b", b"v", Op.PUT).status is Status.OK
    assert store.upsert(b"c", b"v", Op.PUT).status is Status.ERROR


def test_dump_roundtrip():
    _, store = make_store()
    expected = {}
    for i in range(50):
        k, v = f"k{i}".encode(), f"v{i}".encode()
        store.upsert(k, v, Op.PUT)
        expected[k] = v
    store.remove(b"k7")
    del expected[b"k7"]
    assert store.dump() == expected


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["put", "delete", "get"]),
              st.integers(0, 15), st.binary(max_size=40)),
    max_size=60,
))
def test_store_behaves_like_dict(ops):
    _, store = make_store()
    model: dict[bytes, bytes] = {}
    for op, ki, val in ops:
        key = f"key-{ki}".encode()
        if op == "put":
            assert store.upsert(key, val, Op.PUT).status is Status.OK
            model[key] = val
        elif op == "delete":
            expected = Status.OK if key in model else Status.NOT_FOUND
            assert store.remove(key).status is expected
            model.pop(key, None)
        else:
            res = store.get(key)
            if key in model:
                assert res.status is Status.OK and res.value == model[key]
            else:
                assert res.status is Status.NOT_FOUND
    assert store.dump() == model
