"""Client-side index traversal: cold GETs served one-sidedly, optimistic
retry under churn, bounded demotion, and cache re-priming."""

from repro import HydraCluster, SimConfig
from repro.chaos import FaultInjector
from repro.chaos.schedule import FaultSchedule, FaultWindow
from repro.protocol import Status

KEYS = [f"trav-{i:03d}".encode() for i in range(24)]


def traversal_config(**hydra):
    over = {"msg_slots_per_conn": 16, "max_inflight_per_conn": 16,
            "traversal_min_fanout": 1}
    over.update(hydra)
    return SimConfig().with_overrides(hydra=over)


def make_cluster(config=None, **kw):
    kw.setdefault("n_server_machines", 1)
    kw.setdefault("shards_per_server", 1)
    cluster = HydraCluster(config=config or traversal_config(), **kw)
    cluster.start()
    return cluster


def chill(client, keys=KEYS):
    """Forget the cached pointers so the next GETs are cold."""
    for k in keys:
        client.cache.invalidate(k)


def test_cold_get_many_is_fully_one_sided():
    cluster = make_cluster()
    client = cluster.client()
    counters = cluster.metrics.counter

    def app():
        statuses = yield from client.put_many(
            [(k, b"v:" + k) for k in KEYS])
        assert all(s is Status.OK for s in statuses)
        chill(client)
        messages_before = counters("client.messages").value
        values = yield from client.get_many(KEYS + [b"trav-ghost"])
        assert values[:-1] == [b"v:" + k for k in KEYS]
        assert values[-1] is None  # one-sided NOT_FOUND, no message
        # Every key — hits and the miss — resolved without a single
        # message-path request reaching the shard.
        assert counters("client.messages").value == messages_before
        assert counters("client.bucket_reads").value >= len(KEYS) + 1
        assert counters("client.demotions").value == 0
        assert counters("client.traversal_races").value == 0
        # Every PUT versioned the exported index exactly once.
        assert (counters("shard.index_mutations_versioned").value
                == len(KEYS))

    cluster.run(app())


def test_traversal_reprimes_the_pointer_cache():
    cluster = make_cluster()
    client = cluster.client()
    counters = cluster.metrics.counter

    def app():
        yield from client.put_many([(k, b"w" * 32) for k in KEYS])
        chill(client)
        yield from client.get_many(KEYS)
        buckets_cold = counters("client.bucket_reads").value
        assert buckets_cold >= len(KEYS)
        # Traversal hits primed the rptr cache: the second round runs on
        # direct item Reads, no index walk, still no messages.
        messages_before = counters("client.messages").value
        values = yield from client.get_many(KEYS)
        assert values == [b"w" * 32] * len(KEYS)
        assert counters("client.bucket_reads").value == buckets_cold
        assert counters("client.messages").value == messages_before

    cluster.run(app())


def test_min_fanout_gate_keeps_single_cold_gets_on_messages():
    cluster = make_cluster(traversal_config(traversal_min_fanout=2))
    client = cluster.client()
    counters = cluster.metrics.counter

    def app():
        yield from client.put(KEYS[0], b"solo")
        chill(client)
        assert (yield from client.get(KEYS[0])) == b"solo"
        # One cold key is below the gate: message path, no bucket Read.
        assert counters("client.bucket_reads").value == 0
        chill(client)
        values = yield from client.get_many(KEYS[:1] + [b"nope"])
        assert values == [b"solo", None]
        assert counters("client.bucket_reads").value > 0

    cluster.run(app())


def _storm(read_delay_until_ns: int) -> FaultSchedule:
    """Every one-sided Read delayed 20 us until the given instant."""
    return FaultSchedule(
        name="stale", seed=7,
        windows=(FaultWindow("read_delay", 0, read_delay_until_ns, p=1.0,
                             min_delay_ns=20_000, max_delay_ns=20_000),))


def churn_cluster(**hydra):
    # One main bucket forces multi-frame chains, so an absent key's
    # NOT_FOUND needs the head-confirm read — the raceable step.
    cfg = traversal_config(buckets_per_shard=1, **hydra)
    return make_cluster(cfg)


def test_race_retries_until_churn_subsides():
    cluster = churn_cluster(traversal_max_retries=50)
    injector = FaultInjector(cluster.sim, _storm(400_000))
    injector.attach(cluster)
    client = cluster.client()
    writer = cluster.client()
    counters = cluster.metrics.counter

    def churner():
        # Mutate the (single) chain continuously, then stop: the walk
        # must race while this runs and succeed once it subsides.
        i = 0
        while cluster.sim.now < 300_000:
            i += 1
            yield from writer.put(f"churn-{i % 9}".encode(),
                                  f"c{i}".encode())

    def reader():
        yield from client.put_many([(k, b"r" * 16) for k in KEYS[:10]])
        chill(client)
        values = yield from client.get_many(KEYS[:10] + [b"absent-one"])
        assert values == [b"r" * 16] * 10 + [None]
        # Churn + delayed Reads raced the absent key's walk, yet with a
        # generous retry budget nothing demoted to the message path.
        assert counters("client.traversal_races").value >= 1
        assert counters("client.demotions").value == 0

    cluster.run(reader(), churner())


def test_races_demote_after_bounded_retries():
    cluster = churn_cluster(traversal_max_retries=1)
    # Reads stay delayed for the whole test: every walk races while the
    # churner runs, so the bounded retry must give up and demote.
    injector = FaultInjector(cluster.sim, _storm(50_000_000))
    injector.attach(cluster)
    client = cluster.client()
    writer = cluster.client()
    counters = cluster.metrics.counter
    stop = {"churn": False}

    def churner():
        i = 0
        while not stop["churn"]:
            i += 1
            yield from writer.put(f"churn-{i % 9}".encode(),
                                  f"c{i}".encode())

    def reader():
        yield from client.put_many([(k, b"d" * 16) for k in KEYS[:8]])
        chill(client)
        values = yield from client.get_many([b"absent-one", b"absent-two"])
        # Demotion is a *fallback*, not a failure: the message path
        # still answers correctly.
        assert values == [None, None]
        assert counters("client.traversal_races").value >= 2
        assert counters("client.demotions").value >= 1
        stop["churn"] = True

    cluster.run(reader(), churner())
