"""Pipelined-execution ablation shard (§6.2.1)."""

import pytest

from repro import HydraCluster, SimConfig
from repro.core.pipelined import PipelinedShard
from repro.protocol import Status


def pipelined_config(**extra):
    overrides = {"pipelined_shards": True, "rptr_cache_enabled": False}
    overrides.update(extra)
    return SimConfig().with_overrides(hydra=overrides)


def test_pipelined_shard_correctness():
    cluster = HydraCluster(config=pipelined_config(), shards_per_server=2)
    cluster.start()
    assert all(isinstance(s, PipelinedShard) for s in cluster.shards())
    client = cluster.client()

    def app():
        for i in range(30):
            key = f"k{i}".encode()
            assert (yield from client.put(key, b"v" * 16)) is Status.OK
        for i in range(30):
            assert (yield from client.get(f"k{i}".encode())) == b"v" * 16
        assert (yield from client.delete(b"k0")) is Status.OK
        assert (yield from client.get(b"k0")) is None

    cluster.run(app())


def test_pipelined_uses_4x_cores():
    cluster = HydraCluster(config=pipelined_config(), shards_per_server=2)
    shard = cluster.shards()[0]
    assert shard.cores_used == 4
    used = sum(1 for c in cluster.server_machines[0].cores if c.pinned)
    assert used == 8  # 2 instances x (2 io + 2 worker)


def test_pipelined_slower_than_single_threaded():
    """The paper's headline §6.2.1 result, at smoke-test scale."""

    def run_once(cfg):
        cluster = HydraCluster(config=cfg, shards_per_server=1)
        cluster.start()
        clients = [cluster.client() for _ in range(4)]
        done = {}

        def worker(c, wid):
            for i in range(40):
                key = f"w{wid}-{i % 10}".encode()
                yield from c.put(key, b"x" * 32)
                yield from c.get(key)
            done[wid] = cluster.sim.now

        cluster.run(*[worker(c, i) for i, c in enumerate(clients)])
        return max(done.values())

    t_single = run_once(SimConfig().with_overrides(
        hydra={"rptr_cache_enabled": False}))
    t_pipe = run_once(pipelined_config())
    assert t_pipe > t_single


def test_pipelined_kill_stops_all_threads():
    cluster = HydraCluster(config=pipelined_config(), shards_per_server=1)
    cluster.start()
    shard = cluster.shards()[0]
    client = cluster.client()

    def app():
        yield from client.put(b"k", b"v")
        shard.kill()
        yield cluster.sim.timeout(1000)

    cluster.run(app())
    assert not shard.alive
    assert all(not p.is_alive for p in shard._procs)


def test_pipelined_double_start_rejected():
    cluster = HydraCluster(config=pipelined_config(), shards_per_server=1)
    cluster.start()
    with pytest.raises(RuntimeError):
        cluster.shards()[0].start()
