"""SimConfig plumbing and the HydraCluster facade."""

import pytest

from repro import HydraCluster, SimConfig
from repro.config import NicConfig
from repro.core import RoutingTable, StaticRouter
from repro.protocol import Status


def test_with_overrides_is_nondestructive():
    base = SimConfig()
    derived = base.with_overrides(hydra={"rptr_cache_enabled": False},
                                  replication={"replicas": 2})
    assert base.hydra.rptr_cache_enabled is True
    assert derived.hydra.rptr_cache_enabled is False
    assert derived.replication.replicas == 2
    assert base.replication.replicas == 0
    # Untouched sections are shared values, equal configuration.
    assert derived.fabric.propagation_ns == base.fabric.propagation_ns


def test_with_overrides_unknown_field_rejected():
    with pytest.raises(TypeError):
        SimConfig().with_overrides(hydra={"bogus_field": 1})


def test_with_overrides_unknown_section_rejected():
    with pytest.raises(AttributeError):
        SimConfig().with_overrides(nonexistent={"x": 1})


def test_qp_penalty_monotonic():
    nic = NicConfig()
    values = [nic.qp_penalty_ns(n) for n in (1, 256, 300, 400, 600, 1000)]
    assert values[0] == values[1] == 0
    assert all(a <= b for a, b in zip(values[1:], values[2:]))


def test_serialization_helpers():
    cfg = SimConfig()
    assert cfg.fabric.serialization_ns(5000) == 1000  # 5 B/ns
    assert cfg.tcp.serialization_ns(1500) == 1000     # 1.5 B/ns
    assert cfg.cpu.memcpy_ns(120) == 10               # 12 B/ns
    assert cfg.cpu.cacheline_ns(2) == 2 * cfg.cpu.cacheline_local_ns
    assert cfg.cpu.cacheline_ns(2, remote=True) == \
        2 * cfg.cpu.cacheline_remote_ns


def test_routing_table():
    rt = RoutingTable()

    class FakeShard:
        pass

    a, b = FakeShard(), FakeShard()
    rt.set("s0", a)
    rt.set("s1", b)
    assert rt.resolve("s0") is a
    assert set(rt.shard_ids()) == {"s0", "s1"}
    assert set(rt.live_shards()) == {a, b}
    rt.set("s0", b)  # failover swap
    assert rt.resolve("s0") is b
    with pytest.raises(KeyError):
        rt.resolve("ghost")


def test_static_router():
    from repro.core import Shard  # noqa: F401 - type only

    class FakeShard:
        def __init__(self, name):
            self.shard_id = name

    with pytest.raises(ValueError):
        StaticRouter([])
    one = StaticRouter([FakeShard("a")])
    assert one.route(b"k").shard_id == "a"
    many = StaticRouter([FakeShard("a"), FakeShard("b")])
    owners = {many.route(f"key-{i}".encode()).shard_id for i in range(50)}
    assert owners == {"a", "b"}


def test_cluster_topology_and_ring():
    cluster = HydraCluster(n_server_machines=2, shards_per_server=3,
                           n_client_machines=2)
    assert len(cluster.server_machines) == 2
    assert len(cluster.client_machines) == 2
    assert len(cluster.ring) == 6
    assert len(cluster.shards()) == 6
    # Every machine is cabled to both networks.
    for m in cluster.server_machines + cluster.client_machines:
        assert m.nic is not None and m.tcp is not None
    # Routing covers the ring.
    for sid in cluster.ring.members:
        assert cluster.routing.resolve(sid).shard_id == sid


def test_cluster_route_is_consistent_with_ring():
    cluster = HydraCluster(n_server_machines=1, shards_per_server=4)
    for i in range(100):
        key = f"key-{i}".encode()
        assert cluster.route(key).shard_id == cluster.ring.owner_of_key(key)


def test_cluster_double_start_rejected():
    cluster = HydraCluster(n_server_machines=1, shards_per_server=1)
    cluster.start()
    with pytest.raises(RuntimeError):
        cluster.start()


def test_cluster_run_multiple_processes():
    cluster = HydraCluster(n_server_machines=1, shards_per_server=2)
    cluster.start()
    c1, c2 = cluster.client(), cluster.client()
    done = []

    def w(c, tag):
        yield from c.put(tag, b"v")
        done.append(tag)

    cluster.run(w(c1, b"a"), w(c2, b"b"))
    assert sorted(done) == [b"a", b"b"]


def test_rptr_stats_aggregation():
    cluster = HydraCluster(n_server_machines=1, shards_per_server=1,
                           n_client_machines=2)
    cluster.start()
    c1, c2 = cluster.client(0), cluster.client(1)

    def app(c):
        yield from c.put(b"k", b"v")
        yield from c.get(b"k")
        yield from c.get(b"k")

    cluster.run(app(c1), app(c2))
    stats = cluster.rptr_stats()
    assert stats["successful_hits"] >= 2
    assert stats["entries"] >= 1


def test_client_on_server_machine_colocated():
    cluster = HydraCluster(n_server_machines=1, shards_per_server=2,
                           n_client_machines=1)
    cluster.start()
    colo = cluster.client_on(cluster.server_machines[0])

    def app():
        assert (yield from colo.put(b"k", b"v")) is Status.OK
        assert (yield from colo.get(b"k")) == b"v"

    cluster.run(app())
