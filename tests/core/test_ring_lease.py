"""Consistent hashing ring and lease manager."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import HydraConfig
from repro.core import HashRing, LeaseManager
from repro.sim import Simulator


def test_ring_basic_membership():
    ring = HashRing()
    ring.add("s0")
    ring.add("s1")
    assert len(ring) == 2 and "s0" in ring
    ring.remove("s0")
    assert "s0" not in ring
    assert ring.owner_of_key(b"anything") == "s1"


def test_ring_duplicate_and_missing_rejected():
    ring = HashRing()
    ring.add("s0")
    with pytest.raises(ValueError):
        ring.add("s0")
    with pytest.raises(ValueError):
        ring.remove("ghost")


def test_ring_empty_lookup_raises():
    with pytest.raises(LookupError):
        HashRing().owner(123)
    with pytest.raises(ValueError):
        HashRing(vnodes=0)


def test_ring_deterministic_ownership():
    r1, r2 = HashRing(), HashRing()
    for r in (r1, r2):
        for s in ("a", "b", "c"):
            r.add(s)
    keys = [f"key-{i}".encode() for i in range(100)]
    assert [r1.owner_of_key(k) for k in keys] == \
           [r2.owner_of_key(k) for k in keys]


def test_ring_balance_with_vnodes():
    ring = HashRing(vnodes=128)
    shards = [f"s{i}" for i in range(4)]
    for s in shards:
        ring.add(s)
    counts = {s: 0 for s in shards}
    for i in range(4000):
        counts[ring.owner_of_key(f"key-{i}".encode())] += 1
    for s in shards:
        assert 0.5 < counts[s] / 1000 < 1.6, f"imbalanced: {counts}"


def test_ring_monotonicity_on_add():
    """Adding a member only steals keys; it never shuffles between others."""
    ring = HashRing()
    for s in ("a", "b", "c"):
        ring.add(s)
    keys = [f"key-{i}".encode() for i in range(2000)]
    before = {k: ring.owner_of_key(k) for k in keys}
    ring.add("d")
    for k in keys:
        owner = ring.owner_of_key(k)
        assert owner == before[k] or owner == "d"


def test_ring_remove_redistributes_only_removed_keys():
    ring = HashRing()
    for s in ("a", "b", "c"):
        ring.add(s)
    keys = [f"key-{i}".encode() for i in range(2000)]
    before = {k: ring.owner_of_key(k) for k in keys}
    ring.remove("b")
    for k in keys:
        if before[k] != "b":
            assert ring.owner_of_key(k) == before[k]
        else:
            assert ring.owner_of_key(k) in ("a", "c")


def test_ring_successor_hint():
    ring = HashRing()
    ring.add("only")
    assert ring.successor("only") is None
    ring.add("other")
    assert ring.successor("only") == "other"
    assert ring.successor("ghost") is None


@settings(max_examples=25, deadline=None)
@given(st.sets(st.integers(0, 50), min_size=1, max_size=8),
       st.integers(0, 2**64 - 1))
def test_ring_owner_always_a_member(members, hashcode):
    ring = HashRing(vnodes=8)
    for m in members:
        ring.add(m)
    assert ring.owner(hashcode) in members


# -- leases ---------------------------------------------------------------

@pytest.fixture()
def lm():
    sim = Simulator()
    return sim, LeaseManager(sim, HydraConfig())


def test_lease_duration_scales_with_popularity(lm):
    _, mgr = lm
    cfg = HydraConfig()
    assert mgr.duration_ns(1) == cfg.lease_min_ns
    assert mgr.duration_ns(2) == 2 * cfg.lease_min_ns
    assert mgr.duration_ns(4) == 4 * cfg.lease_min_ns
    assert mgr.duration_ns(64) == cfg.lease_max_ns
    assert mgr.duration_ns(10**6) == cfg.lease_max_ns  # saturates
    assert mgr.duration_ns(0) == cfg.lease_min_ns      # clamped


def test_lease_insert_then_gets_extend(lm):
    sim, mgr = lm
    e0 = mgr.on_insert(100)
    assert e0 == sim.now + HydraConfig().lease_min_ns
    e1 = mgr.on_get(100)
    e2 = mgr.on_get(100)
    assert e2 >= e1 >= e0
    assert mgr.expiry(100) == e2
    assert len(mgr) == 1


def test_lease_never_shrinks(lm):
    sim, mgr = lm
    mgr.on_insert(7)
    for _ in range(10):
        mgr.on_get(7)
    high = mgr.expiry(7)
    # A single get later cannot reduce the recorded expiry.
    assert mgr.on_get(7) >= high


def test_lease_freeze_removes_state(lm):
    sim, mgr = lm
    mgr.on_insert(5)
    expiry = mgr.on_get(5)
    frozen = mgr.freeze(5)
    assert frozen == expiry
    assert mgr.expiry(5) == 0
    assert len(mgr) == 0
    # Freezing an unknown offset is safe and conservative (now).
    assert mgr.freeze(999) == sim.now


def test_lease_on_get_of_unknown_offset_is_defensive(lm):
    _, mgr = lm
    e = mgr.on_get(42)
    assert e > 0 and len(mgr) == 1
