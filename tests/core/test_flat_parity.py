"""Golden flat-vs-scalar parity: the vectorized hot paths are a pure
speedup, not a behaviour change.

``hydra.flat_hot_paths=False`` keeps the original per-object sweep, CQ
and client paths as the ordering oracle.  These tests run the same
mixed workload with schedule tracing on under both settings and assert
the BLAKE2 dispatch digests match bit for bit — every event fires at
the same time, in the same order, with the same outcome — across the
base shard, the sub-sharded and pipelined variants, tenant traffic,
replication, and a mid-run shard kill (the undeliverable-response
flush path).  One test also spans the full seed stack (scalar paths on
``Simulator(legacy=True)``), the exact comparison BENCH_scale times.
"""

from repro import HydraCluster, SimConfig
from repro.core.errors import RequestTimeout
from repro.sim import Simulator

_HYDRA = {"msg_slots_per_conn": 4}
_CLIENT = {"max_inflight_per_conn": 4}


def _mixed_procs(cluster):
    """Three default clients + one named tenant over a mixed op soup:
    puts, gets, updates, inserts, deletes, and a get_many fan-out (the
    pooled-CQE gather path)."""
    clients = [cluster.client(machine_index=0) for _ in range(3)]
    tenant = cluster.client(machine_index=0, tenant="gold")

    def app(ci, client):
        for i in range(16):
            key = b"c%d.k%d" % (ci, i % 5)
            kind = (ci + i) % 6
            try:
                if kind == 0:
                    yield from client.put(key, b"v%d.%d" % (ci, i))
                elif kind == 1:
                    yield from client.get(key)
                elif kind == 2:
                    yield from client.update(key, b"u%d" % i)
                elif kind == 3:
                    yield from client.insert(key, b"i%d" % i)
                elif kind == 4:
                    yield from client.get_many(
                        [b"c%d.k%d" % (ci, k) for k in range(4)])
                else:
                    yield from client.delete(key)
            except RequestTimeout:
                pass  # only reachable in the chaos variant

    procs = [app(ci, c) for ci, c in enumerate(clients)]
    procs.append(app(7, tenant))
    return procs


def _digest(flat, legacy=False, hydra=None, replication=0, chaos=False):
    sim = Simulator(legacy=legacy)
    sim.trace_schedule()
    sections = {"hydra": dict(_HYDRA, flat_hot_paths=flat, **(hydra or {})),
                "client": dict(_CLIENT)}
    if replication:
        sections["replication"] = {"replicas": replication}
    cluster = HydraCluster(SimConfig().with_overrides(**sections),
                           n_server_machines=2, shards_per_server=2,
                           n_client_machines=1, sim=sim)
    cluster.start()
    procs = _mixed_procs(cluster)
    if chaos:
        procs.append(_chaos_procs(cluster))
    cluster.run(*procs)
    cluster.stop()
    return sim.schedule_digest(), sim.k_dispatched


def _chaos_procs(cluster):
    """Kill one server mid-run; a bounded-deadline client keeps hitting
    its shards so ops time out, retry and flush undeliverables."""
    sim = cluster.sim
    victim = cluster.servers[1]
    victim_shards = set(victim.shards)
    dead_keys = [k for k in (b"dead%d" % i for i in range(64))
                 if cluster.route(k) in victim_shards][:6]
    live_keys = [k for k in (b"live%d" % i for i in range(64))
                 if cluster.route(k) not in victim_shards][:6]
    doomed = cluster.client(machine_index=0, deadline_us=2_000)

    def storm():
        yield sim.timeout(40_000)
        for shard in victim.shards:
            if shard.alive:
                shard.kill()
        for dead_key, live_key in zip(dead_keys, live_keys):
            try:
                yield from doomed.get(dead_key)
            except RequestTimeout:
                pass
            try:
                yield from doomed.put(live_key, b"v")
            except RequestTimeout:
                pass

    return storm()


def test_base_shard_flat_parity():
    scalar = _digest(flat=False)
    flat = _digest(flat=True)
    assert flat == scalar
    assert flat[1] > 2_000  # the run was non-trivial


def test_flat_batched_stack_matches_seed_stack():
    """The BENCH_scale comparison: flat paths on the calendar kernel vs
    scalar paths on the seed heapq kernel — both refactors preserve
    schedules, so the digests must compose."""
    seed = _digest(flat=False, legacy=True)
    flat = _digest(flat=True, legacy=False)
    assert flat == seed


def test_subsharded_flat_parity():
    scalar = _digest(flat=False, hydra={"subshards": 2})
    flat = _digest(flat=True, hydra={"subshards": 2})
    assert flat == scalar


def test_pipelined_flat_parity():
    scalar = _digest(flat=False, hydra={"pipelined_shards": True})
    flat = _digest(flat=True, hydra={"pipelined_shards": True})
    assert flat == scalar


def test_replicated_flat_parity():
    scalar = _digest(flat=False, replication=1)
    flat = _digest(flat=True, replication=1)
    assert flat == scalar


def test_flat_parity_under_shard_kill():
    scalar = _digest(flat=False, chaos=True)
    flat = _digest(flat=True, chaos=True)
    assert flat == scalar


def test_flat_parity_is_stable_across_reruns():
    assert _digest(flat=True) == _digest(flat=True)


def test_scalar_oracle_actually_selects_scalar_paths():
    """The flag flips real behaviour: flat mode recycles pooled CQEs,
    the scalar oracle never touches the pools."""
    for flat, expect_pool in ((True, True), (False, False)):
        cfg = SimConfig().with_overrides(
            hydra=dict(_HYDRA, flat_hot_paths=flat),
            client=dict(_CLIENT))
        cluster = HydraCluster(cfg, n_server_machines=1,
                               shards_per_server=1)
        cluster.start()
        assert cluster.shards()[0]._flat is flat
        client = cluster.client()

        def app():
            for i in range(12):
                yield from client.put(b"k%d" % i, b"v")
                yield from client.get(b"k%d" % i)

        cluster.run(app())
        recycled = sum(m.nic.wc_pool.recycled + m.nic.wc_pool.allocated
                       for m in (cluster.server_machines
                                 + cluster.client_machines))
        assert (recycled > 0) is expect_pool
        cluster.stop()
