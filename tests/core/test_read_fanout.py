"""Batched one-sided GET fan-out: hits, demotions, windows, drain rules."""

from repro import HydraCluster, SimConfig
from repro.core import BadStatus
from repro.protocol import Op, Status


def fanout_config(window=8, reads=8, **hydra):
    over = {"msg_slots_per_conn": window, "max_inflight_per_conn": window,
            "max_inflight_reads": reads,
            "rptr_cache_enabled": True, "rptr_sharing": False}
    over.update(hydra)
    return SimConfig().with_overrides(hydra=over)


def make_cluster(config=None, **kw):
    kw.setdefault("n_server_machines", 1)
    kw.setdefault("shards_per_server", 1)
    cluster = HydraCluster(config=config, **kw)
    cluster.start()
    return cluster


KEYS = [f"fk-{i:03d}".encode() for i in range(8)]


def test_mixed_hit_miss_batch_reads_hits_and_demotes_misses():
    """Warm half the batch: hits ride Reads, misses demote to messages,
    and the demoted keys' responses re-prime the cache."""
    cluster = make_cluster(fanout_config())
    client = cluster.client()
    out = {}

    def app():
        for k in KEYS:
            yield from client.put(k, b"v-" + k)
        for k in KEYS[:4]:  # warm half through the message path
            yield from client.get(k)
        out["stats0"] = client.cache.stats()
        out["values"] = yield from client.get_many(KEYS)
        out["stats1"] = client.cache.stats()

    cluster.run(app())
    assert out["values"] == [b"v-" + k for k in KEYS]
    d = {k: out["stats1"][k] - out["stats0"][k] for k in out["stats0"]}
    assert d["batch_hits"] == 4          # only the warm half had pointers
    assert d["successful_hits"] == 4     # ...and every Read validated
    assert d["invalid_hits"] == 0
    assert d["misses"] == 4
    # The demoted half came back via messages and re-primed the cache.
    assert all(k in client.cache for k in KEYS)


def test_stale_pointer_is_demoted_by_guardian_and_still_correct():
    """A pointer left stale by another client's update must come back as
    an invalid hit (DEAD guardian), demote to the message path, and
    return the fresh value."""
    cluster = make_cluster(fanout_config(), n_client_machines=2)
    alice = cluster.client(0)
    bob = cluster.client(1)
    out = {}

    def app():
        for k in KEYS:
            yield from alice.put(k, b"old-" + k)
        for k in KEYS:  # alice warms her private cache
            yield from alice.get(k)
        # bob updates one key out of band: its extent flips to DEAD.
        yield from bob.put(KEYS[3], b"new-" + KEYS[3])
        out["stats0"] = alice.cache.stats()
        out["values"] = yield from alice.get_many(KEYS)
        out["stats1"] = alice.cache.stats()

    cluster.run(app())
    expected = [b"old-" + k for k in KEYS]
    expected[3] = b"new-" + KEYS[3]
    assert out["values"] == expected
    d = {k: out["stats1"][k] - out["stats0"][k] for k in out["stats0"]}
    assert d["batch_hits"] == 8          # alice's cache was fully warm
    assert d["invalid_hits"] == 1        # the updated key failed validation
    assert d["successful_hits"] == 7
    # Reconciliation invariant: every pointer became exactly one Read.
    assert d["successful_hits"] + d["invalid_hits"] == d["batch_hits"]


def test_max_inflight_reads_clamps_batch_and_doorbells():
    """The Read window bounds each doorbell-coalesced batch: 8 warm keys
    post as 4 batches at window 2 but a single chain at window 8."""
    doorbells = {}
    for reads in (2, 8):
        cluster = make_cluster(fanout_config(reads=reads))
        client = cluster.client()

        def app():
            for k in KEYS:
                yield from client.put(k, b"v" * 16)
            for k in KEYS:
                yield from client.get(k)
            rung0 = cluster.metrics.counter("rdma.read.doorbells").value
            values = yield from client.get_many(KEYS)
            assert values == [b"v" * 16] * len(KEYS)
            doorbells[reads] = (
                cluster.metrics.counter("rdma.read.doorbells").value - rung0,
                cluster.metrics.counter("rdma.read.coalesced").value)

        cluster.run(app())
    assert doorbells[2] == (4, 4)   # 4 batches of 2: one ring each
    assert doorbells[8] == (1, 7)   # one chain: one ring, 7 coalesced WQEs


def test_get_many_failure_drains_batch_before_raising():
    """Satellite: a failing key must not leak in-flight slots — the error
    surfaces only after every pending response is gathered, and the
    connection stays usable."""
    cfg = fanout_config(window=16, rptr_cache_enabled=False)
    cluster = make_cluster(cfg)  # 16 slots -> 1 KiB response slots
    client = cluster.client()
    shard = cluster.route(b"big")
    # An item too large for a response slot: GET returns Status.ERROR.
    shard.store_for_key(b"big").upsert(b"big", b"x" * 2048, Op.PUT)
    out = {}

    def app():
        for k in KEYS:
            yield from client.put(k, b"v" * 8)
        try:
            yield from client.get_many(KEYS[:4] + [b"big"] + KEYS[4:])
        except BadStatus as exc:
            out["error"] = str(exc)
        # No leaked slots: the very next full-width batch must succeed.
        out["after"] = yield from client.get_many(KEYS)

    cluster.run(app())
    assert "ERROR" in out["error"]
    assert out["after"] == [b"v" * 8] * len(KEYS)


def test_not_found_mutation_invalidates_cached_pointer():
    """Satellite: a DELETE that races to NOT_FOUND still drops the cached
    pointer — the extent it names was retired by the concurrent writer."""
    cluster = make_cluster(fanout_config())
    alice = cluster.client()
    bob = cluster.client()  # rptr_sharing off: private caches
    key = KEYS[0]
    out = {}

    def app():
        yield from alice.put(key, b"v")
        yield from alice.get(key)           # alice caches the pointer
        assert key in alice.cache
        yield from bob.delete(key)          # bob wins the race
        out["status"] = yield from alice.delete(key)

    cluster.run(app())
    assert out["status"] is Status.NOT_FOUND
    assert key not in alice.cache
