"""Sub-sharded shard instances (§6.3 future-work feature)."""

import pytest

from repro import HydraCluster, SimConfig
from repro.core import SubShardedShard
from repro.protocol import Status


def subsharded_config(k=4, **extra):
    overrides = {"subshards": k}
    overrides.update(extra)
    return SimConfig().with_overrides(hydra=overrides)


def make_cluster(k=4, shards_per_server=1, **extra):
    cluster = HydraCluster(config=subsharded_config(k, **extra),
                           n_server_machines=1,
                           shards_per_server=shards_per_server)
    cluster.start()
    return cluster


def test_basic_correctness_across_subshards():
    cluster = make_cluster(k=4)
    shard = cluster.shards()[0]
    assert isinstance(shard, SubShardedShard)
    client = cluster.client()
    model = {}

    def app():
        for i in range(60):
            key, value = f"k{i}".encode(), f"v{i}".encode()
            assert (yield from client.put(key, value)) is Status.OK
            model[key] = value
        for i in range(60):
            assert (yield from client.get(f"k{i}".encode())) == \
                model[f"k{i}".encode()]
        assert (yield from client.delete(b"k0")) is Status.OK
        assert (yield from client.get(b"k0")) is None
        assert (yield from client.insert(b"k1", b"x")) is Status.EXISTS

    cluster.run(app())
    # Keys actually spread over the sub-stores.
    sizes = [len(s) for s in shard.substores]
    assert sum(sizes) == 59
    assert sum(1 for s in sizes if s > 0) >= 3
    assert shard.dump_all() == {k: v for k, v in model.items() if k != b"k0"}
    assert shard.total_items() == 59


def test_rdma_read_fast_path_works_on_substores():
    cluster = make_cluster(k=2)
    client = cluster.client()

    def app():
        yield from client.put(b"a", b"1")
        yield from client.put(b"b", b"2")
        for key, want in ((b"a", b"1"), (b"b", b"2")):
            yield from client.get(key)          # prime pointer
            assert (yield from client.get(key)) == want  # RDMA read

    cluster.run(app())
    assert client.cache.successful_hits == 2


def test_qp_count_stays_per_instance():
    # 8 regular shards x 6 clients = 48 client QPs on the server NIC;
    # 1 instance x 8 sub-shards x 6 clients = only 6.
    regular = HydraCluster(n_server_machines=1, shards_per_server=8)
    regular.start()
    for _ in range(6):
        regular.client()
    sub = make_cluster(k=8, shards_per_server=1)
    for _ in range(6):
        sub.client()
    # Each connection is a QP pair; count QPs on the server NICs.
    reg_qps = regular.server_machines[0].nic.active_qps
    sub_qps = sub.server_machines[0].nic.active_qps
    assert sub_qps * 8 == reg_qps


def test_cores_used():
    cluster = make_cluster(k=4)
    shard = cluster.shards()[0]
    assert shard.cores_used == 5  # dispatcher + 4 executors


def test_replication_hook_rejected():
    cfg = subsharded_config(k=2)
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1)
    cluster.shards()[0].replicator = object()
    with pytest.raises(RuntimeError):
        cluster.start()


def test_invalid_subshard_count():
    from repro.hardware import Machine
    from repro.rdma import Fabric
    from repro.sim import Simulator
    cfg = SimConfig()
    sim = Simulator()
    fabric = Fabric(sim, cfg)
    machine = Machine(sim, 0, cfg)
    fabric.attach(machine)
    core = machine.allocate_core("s")
    with pytest.raises(ValueError):
        SubShardedShard(sim, cfg, "s0", machine, core, n_subshards=0)


def test_kill_stops_everything():
    cluster = make_cluster(k=3)
    shard = cluster.shards()[0]
    client = cluster.client()

    def app():
        yield from client.put(b"k", b"v")
        shard.kill()
        yield cluster.sim.timeout(1000)

    cluster.run(app())
    assert not shard.alive
    assert all(not p.is_alive for p in shard._procs)


def test_subsharding_beats_many_shards_past_qp_wall():
    """The §6.3 claim: when the QP count is what saturates the device
    (read-heavy, pointer-cached traffic hitting the NIC), collapsing
    ``shards x clients`` connections down to ``clients`` wins."""
    from repro.bench.runner import run_hydra_ycsb
    from repro.workloads.ycsb import YcsbSpec, YcsbWorkload

    def throughput(cfg, shards, get_fraction, n_records, n_ops):
        wl = YcsbWorkload(YcsbSpec(name="t", n_records=n_records,
                                   n_ops=n_ops, get_fraction=get_fraction,
                                   distribution="zipfian"))
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=shards,
                               n_client_machines=6)
        res = run_hydra_ycsb(cluster, wl, n_clients=60,
                             clients_per_machine=10)
        return res.throughput_mops

    # Read-heavy cached regime: 480 QPs vs 60 QPs.
    plain = throughput(SimConfig(), 8, 1.0, 500, 6000)
    sub = throughput(subsharded_config(k=8), 1, 1.0, 500, 6000)
    assert sub > 1.2 * plain
    # Honest flip side: on message-heavy mixes the single dispatcher
    # serializes and plain sharding keeps the edge.
    plain_w = throughput(SimConfig(), 8, 0.5, 3000, 3000)
    sub_w = throughput(subsharded_config(k=8), 1, 0.5, 3000, 3000)
    assert plain_w > sub_w
