"""Age-bounded response flushes + the occupancy announce mask.

Two latency/CPU refinements with behavior-identity obligations:

* ``hydra.resp_flush_max_ns`` caps how long a buffered response batch
  may age before its doorbell fires, bounding the tail latency a large
  ``resp_doorbell_batch`` can add under steady load;
* ``hydra.occ_announce_mask`` prunes slots already confirmed-consumed
  from the occupancy word, so the shard stops re-probing empty slots —
  probes per request drop toward 1 with a deep in-flight window.
"""

from repro import HydraCluster, SimConfig
from repro.protocol import Op

KEYS = [f"af-{i:03d}".encode() for i in range(64)]


def _cluster(**hydra):
    over = {"msg_slots_per_conn": 8, "max_inflight_per_conn": 8,
            "rptr_cache_enabled": False}
    over.update(hydra)
    cfg = SimConfig().with_overrides(hydra=over)
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    for key in KEYS:
        cluster.route(key).store_for_key(key).upsert(key, b"v" * 32, Op.PUT)
    cluster.start()
    return cluster


def _sustained_gets(cluster, n_clients=8, ops=40):
    """Keep the shard continuously busy with overlapping pipelined GETs."""
    checked = [0]

    def worker(w, client):
        for i in range(ops):
            value = yield from client.get(KEYS[(w * 13 + i) % len(KEYS)])
            assert value == b"v" * 32
            checked[0] += 1

    clients = [cluster.client() for _ in range(n_clients)]
    cluster.run(*(worker(w, c) for w, c in enumerate(clients)))
    assert checked[0] == n_clients * ops
    return cluster.metrics


def _burst_gets(cluster, n_clients=8, rounds=8, burst=8):
    """Deep per-sweep backlogs: every client fires a full-window burst,
    so single sweeps run long enough for buffered responses to age."""
    def worker(w, client):
        for r in range(rounds):
            picks = [KEYS[(w * 13 + r * 7 + j) % len(KEYS)]
                     for j in range(burst)]
            values = yield from client.get_many(picks)
            assert values == [b"v" * 32] * burst

    clients = [cluster.client() for _ in range(n_clients)]
    cluster.run(*(worker(w, c) for w, c in enumerate(clients)))
    return cluster.metrics


def _age_flush_run(flush_max_ns):
    cluster = _cluster(occupancy_word=True, ready_hints=True,
                       resp_doorbell_batch=32,
                       resp_flush_max_ns=flush_max_ns)
    return _burst_gets(cluster)


def test_aged_batches_flush_before_the_cap():
    metrics = _age_flush_run(10_000)
    assert metrics.counter("shard.age_flushes").value > 0


def test_age_flush_disabled_when_zero():
    metrics = _age_flush_run(0)
    assert metrics.counter("shard.age_flushes").value == 0


def test_age_flush_improves_mean_burst_latency():
    """With a large batch cap, the age bound must cut the average time
    responses sit buffered (client-visible burst completion time)."""
    def mean_op_ns(flush_max_ns):
        cluster = _cluster(occupancy_word=True, ready_hints=True,
                           resp_doorbell_batch=32,
                           resp_flush_max_ns=flush_max_ns)
        lat = []

        def worker(w, client):
            for r in range(6):
                picks = [KEYS[(w * 13 + r * 7 + j) % len(KEYS)]
                         for j in range(8)]
                t0 = cluster.sim.now
                yield from client.get_many(picks)
                lat.append(cluster.sim.now - t0)

        clients = [cluster.client() for _ in range(8)]
        cluster.run(*(worker(w, c) for w, c in enumerate(clients)))
        return sum(lat) / len(lat)

    bounded = mean_op_ns(10_000)
    unbounded = mean_op_ns(0)
    assert bounded < unbounded, (bounded, unbounded)


def _mask_run(mask):
    # A pipelined server with a deep in-flight window: the poller
    # consumes frames well ahead of the worker pool's responses, so
    # every occupancy write from the still-issuing clients re-announces
    # slots the shard consumed sweeps ago.  The mask skips those.
    cluster = _cluster(occupancy_word=True, occ_announce_mask=mask,
                       pipelined_shards=True, resp_doorbell_batch=1)
    client = cluster.client()

    def worker(w):
        for i in range(40):
            value = yield from client.get(KEYS[(w * 13 + i) % len(KEYS)])
            assert value == b"v" * 32

    cluster.run(*(worker(w) for w in range(8)))
    metrics = cluster.metrics
    return (metrics.counter("shard.probes").value,
            metrics.counter("shard.requests").value)


def test_announce_mask_prunes_consumed_slots():
    probes_masked, requests = _mask_run(True)
    probes_full, requests_full = _mask_run(False)
    assert requests == requests_full  # identical workload either way
    # Unmasked: every occupancy write re-announces all in-flight slots,
    # so while responses queue behind the worker pool the shard keeps
    # re-probing slots it consumed sweeps ago.
    assert probes_full >= 1.5 * requests
    # Masked: probes track requests (small slack for re-announces of
    # slots whose response is already on the wire).
    assert probes_masked <= 1.1 * requests
    assert probes_masked < 0.7 * probes_full
