"""Client <-> shard protocol: message path, RDMA-Read path, consistency."""

import pytest

from repro import HydraCluster, SimConfig
from repro.core import RequestTimeout
from repro.protocol import Status


def mini_cluster(config=None, **kw):
    kw.setdefault("n_server_machines", 1)
    kw.setdefault("shards_per_server", 2)
    cluster = HydraCluster(config=config, **kw)
    cluster.start()
    return cluster


def run(cluster, gen):
    return cluster.run(gen)


def test_put_get_roundtrip():
    cluster = mini_cluster()
    client = cluster.client()

    def app():
        assert (yield from client.put(b"k", b"v")) is Status.OK
        assert (yield from client.get(b"k")) == b"v"
        assert (yield from client.get(b"missing")) is None

    run(cluster, app())


def test_insert_update_delete_statuses():
    cluster = mini_cluster()
    client = cluster.client()

    def app():
        assert (yield from client.insert(b"k", b"v")) is Status.OK
        assert (yield from client.insert(b"k", b"w")) is Status.EXISTS
        assert (yield from client.update(b"k", b"w")) is Status.OK
        assert (yield from client.update(b"no", b"x")) is Status.NOT_FOUND
        assert (yield from client.delete(b"k")) is Status.OK
        assert (yield from client.delete(b"k")) is Status.NOT_FOUND

    run(cluster, app())


def test_second_get_uses_rdma_read():
    cluster = mini_cluster()
    client = cluster.client()

    def app():
        yield from client.put(b"k", b"v")
        yield from client.get(b"k")   # message path; caches pointer
        msgs_before = cluster.metrics.counter("client.messages").value
        reads_before = cluster.metrics.counter("client.rdma_reads").value
        assert (yield from client.get(b"k")) == b"v"
        assert cluster.metrics.counter("client.messages").value == msgs_before
        assert cluster.metrics.counter("client.rdma_reads").value == \
            reads_before + 1
        assert client.cache.successful_hits == 1

    run(cluster, app())


def test_rdma_read_latency_below_message_get():
    cluster = mini_cluster()
    client = cluster.client()
    times = {}

    def app():
        yield from client.put(b"k", b"v" * 32)
        t0 = cluster.sim.now
        yield from client.get(b"k")
        times["message"] = cluster.sim.now - t0
        t0 = cluster.sim.now
        yield from client.get(b"k")
        times["rdma"] = cluster.sim.now - t0

    run(cluster, app())
    assert times["rdma"] < times["message"]
    assert times["rdma"] < 5_000  # one-sided read in a few microseconds


def test_stale_pointer_detected_after_update():
    """§4.2.3: guardian word turns a stale read into a clean retry."""
    cluster = mini_cluster()
    client = cluster.client()
    other = cluster.client()  # separate machine-0 client shares the cache

    def app():
        yield from client.put(b"k", b"v1")
        yield from client.get(b"k")  # cache pointer
        # Another client's update retires the item out-of-place.
        yield from other.update(b"k", b"v2")
        # Shared cache invalidated by other's own update; force staleness by
        # re-priming then updating via a non-sharing path below.
        value = yield from client.get(b"k")
        assert value == b"v2"

    run(cluster, app())


def test_stale_pointer_invalid_hit_without_sharing():
    cfg = SimConfig().with_overrides(hydra={"rptr_sharing": False})
    cluster = mini_cluster(cfg, n_client_machines=2)
    c1 = cluster.client(0)
    c2 = cluster.client(1)

    def app():
        yield from c1.put(b"k", b"v1")
        yield from c1.get(b"k")       # c1 caches pointer
        yield from c2.update(b"k", b"v2")  # c2 cannot see c1's cache
        value = yield from c1.get(b"k")    # stale read -> fallback
        assert value == b"v2"
        assert c1.cache.invalid_hits == 1

    run(cluster, app())


def test_shared_cache_prevents_cascading_invalidation():
    """§4.2.4: co-located clients share pointers; one update = one miss."""
    cluster = mini_cluster()
    writer = cluster.client()
    readers = [cluster.client() for _ in range(4)]
    shared = readers[0].cache
    assert all(r.cache is shared for r in readers)
    assert writer.cache is shared

    def app():
        yield from writer.put(b"hot", b"v1")
        for r in readers:
            yield from r.get(b"hot")
        yield from writer.update(b"hot", b"v2")  # invalidates shared entry
        before = shared.invalid_hits
        for r in readers:
            assert (yield from r.get(b"hot")) == b"v2"
        # No reader ever performed an invalid RDMA read.
        assert shared.invalid_hits == before

    run(cluster, app())


def test_delete_invalidates_pointer():
    cluster = mini_cluster()
    client = cluster.client()

    def app():
        yield from client.put(b"k", b"v")
        yield from client.get(b"k")
        yield from client.delete(b"k")
        assert (yield from client.get(b"k")) is None

    run(cluster, app())


def test_rptr_cache_disabled_all_gets_are_messages():
    cfg = SimConfig().with_overrides(hydra={"rptr_cache_enabled": False})
    cluster = mini_cluster(cfg)
    client = cluster.client()
    assert client.cache is None

    def app():
        yield from client.put(b"k", b"v")
        for _ in range(3):
            assert (yield from client.get(b"k")) == b"v"
        assert cluster.metrics.counter("client.rdma_reads").value == 0

    run(cluster, app())


def test_send_recv_mode_roundtrip():
    cfg = SimConfig().with_overrides(hydra={"rdma_write_messaging": False,
                                            "rptr_cache_enabled": False})
    cluster = mini_cluster(cfg)
    client = cluster.client()
    times = {}

    def app():
        assert (yield from client.put(b"k", b"v")) is Status.OK
        t0 = cluster.sim.now
        assert (yield from client.get(b"k")) == b"v"
        times["get"] = cluster.sim.now - t0

    run(cluster, app())
    assert times["get"] > 0


def test_send_recv_slower_than_rdma_write_messaging():
    def measure(cfg):
        cluster = mini_cluster(cfg)
        client = cluster.client()
        out = {}

        def app():
            yield from client.put(b"k", b"v")
            t0 = cluster.sim.now
            for _ in range(20):
                yield from client.get(b"k")
            out["t"] = cluster.sim.now - t0

        run(cluster, app())
        return out["t"]

    base = SimConfig().with_overrides(hydra={"rptr_cache_enabled": False})
    t_write = measure(base)
    t_sr = measure(base.with_overrides(hydra={"rdma_write_messaging": False}))
    assert t_sr > t_write


def test_request_timeout_on_dead_server():
    cfg = SimConfig().with_overrides(hydra={"op_timeout_ns": 5_000_000})
    cluster = mini_cluster(cfg)
    client = cluster.client()

    def app():
        yield from client.put(b"k", b"v")
        cluster.servers[0].kill()
        with pytest.raises(RequestTimeout):
            yield from client.put(b"k", b"v2")

    run(cluster, app())


def test_large_values_roundtrip():
    cluster = mini_cluster()
    client = cluster.client()
    big = bytes(range(256)) * 16  # 4 KiB

    def app():
        assert (yield from client.put(b"big", big)) is Status.OK
        assert (yield from client.get(b"big")) == big
        assert (yield from client.get(b"big")) == big  # RDMA read path

    run(cluster, app())


def test_many_keys_route_across_shards():
    cluster = mini_cluster(shards_per_server=4)
    client = cluster.client()
    n = 64

    def app():
        for i in range(n):
            yield from client.put(f"key-{i}".encode(), f"v{i}".encode())
        for i in range(n):
            assert (yield from client.get(f"key-{i}".encode())) == \
                f"v{i}".encode()

    run(cluster, app())
    sizes = [len(s.store) for s in cluster.shards()]
    assert sum(sizes) == n
    assert sum(1 for s in sizes if s > 0) >= 3  # spread over shards


def test_concurrent_clients_consistent_counters():
    cluster = mini_cluster()
    clients = [cluster.client() for _ in range(4)]

    def worker(c, wid):
        for i in range(10):
            key = f"w{wid}-k{i}".encode()
            yield from c.put(key, b"x" * 16)
            assert (yield from c.get(key)) == b"x" * 16

    cluster.run(*[worker(c, i) for i, c in enumerate(clients)])
    assert cluster.metrics.counter("shard.requests").value >= 40


def test_lease_renew_op():
    cluster = mini_cluster()
    client = cluster.client()

    def app():
        yield from client.put(b"k", b"v")
        assert (yield from client.lease_renew(b"k")) is Status.OK
        assert (yield from client.lease_renew(b"nope")) is Status.NOT_FOUND

    run(cluster, app())


def test_sleep_backoff_disabled_busy_polls():
    cfg = SimConfig().with_overrides(cpu={"sleep_backoff": False})
    cluster = mini_cluster(cfg, shards_per_server=1)
    client = cluster.client()

    def app():
        yield from client.put(b"k", b"v")
        yield cluster.sim.timeout(5_000_000)  # idle gap
        assert (yield from client.get(b"k")) == b"v"

    run(cluster, app())
    # The shard core was (nearly) fully busy across the idle window.
    assert cluster.shards()[0].core.utilization() > 0.9
