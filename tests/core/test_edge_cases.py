"""Edge cases: oversized messages, NIC recovery, mid-request crashes."""

import pytest

from repro import HydraCluster, SimConfig
from repro.core import BadStatus
from repro.protocol import Status


def test_oversized_request_raises_cleanly():
    cfg = SimConfig().with_overrides(hydra={"conn_buf_bytes": 1024})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1)
    cluster.start()
    client = cluster.client()

    def app():
        with pytest.raises(ValueError, match="conn_buf_bytes"):
            yield from client.put(b"k", b"v" * 2048)
        # The connection remains usable afterwards.
        assert (yield from client.put(b"k", b"small")) is Status.OK

    cluster.run(app())


def test_oversized_response_degrades_to_error_status():
    # PUT through a big-buffer connection, then GET through a small one.
    small = SimConfig().with_overrides(hydra={"conn_buf_bytes": 512,
                                              "rptr_cache_enabled": False})
    cluster = HydraCluster(config=small, n_server_machines=1,
                           shards_per_server=1)
    cluster.start()
    shard = cluster.shards()[0]
    # Install an item too large for any 512B response directly.
    from repro.protocol import Op
    shard.store.upsert(b"big", b"v" * 900, Op.PUT)
    client = cluster.client()

    def app():
        with pytest.raises(BadStatus, match="unexpected status ERROR") as exc:
            yield from client.get(b"big")
        assert exc.value.status is Status.ERROR
        # Clean failure, not a timeout; the shard logged the overflow.
        assert cluster.metrics.counter("shard.resp_overflow").value == 1
        # Small items still work on the same connection.
        assert (yield from client.put(b"s", b"x")) is Status.OK
        assert (yield from client.get(b"s")) == b"x"

    cluster.run(app())


def test_nic_recovery_restores_service():
    cfg = SimConfig().with_overrides(hydra={"op_timeout_ns": 3_000_000})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1)
    cluster.start()
    client = cluster.client()
    from repro.core import RequestTimeout

    def app():
        yield from client.put(b"k", b"v")
        cluster.server_machines[0].nic.fail()
        with pytest.raises(RequestTimeout):
            yield from client.get(b"k")
        cluster.server_machines[0].nic.recover()
        # Shard never died; once the NIC is back, service resumes.
        assert (yield from client.get(b"k")) == b"v"

    cluster.run(app())


def test_shard_killed_between_requests_leaves_memory_consistent():
    cluster = HydraCluster(n_server_machines=1, shards_per_server=1)
    cluster.start()
    client = cluster.client()
    shard = cluster.shards()[0]

    def app():
        for i in range(10):
            yield from client.put(f"k{i}".encode(), b"v")
        shard.kill()
        yield cluster.sim.timeout(1_000_000)

    cluster.run(app())
    # Store is still readable out-of-band (failover would migrate it).
    assert len(shard.store.dump()) == 10
    assert not shard.alive


def test_empty_value_roundtrip():
    cluster = HydraCluster(n_server_machines=1, shards_per_server=1)
    cluster.start()
    client = cluster.client()

    def app():
        assert (yield from client.put(b"k", b"")) is Status.OK
        assert (yield from client.get(b"k")) == b""
        assert (yield from client.get(b"k")) == b""  # RDMA-read path

    cluster.run(app())


def test_binary_keys_with_framing_magic_bytes():
    """Keys/values containing the framing magic must not confuse anything."""
    from repro.protocol import HEAD_MAGIC, TAIL_MAGIC
    import struct
    cluster = HydraCluster(n_server_machines=1, shards_per_server=2)
    cluster.start()
    client = cluster.client()
    evil_value = (struct.pack("<Q", TAIL_MAGIC)
                  + struct.pack("<Q", (HEAD_MAGIC << 32) | 8)
                  + b"\x00" * 16)
    evil_key = struct.pack("<Q", TAIL_MAGIC)

    def app():
        assert (yield from client.put(evil_key, evil_value)) is Status.OK
        assert (yield from client.get(evil_key)) == evil_value
        assert (yield from client.get(evil_key)) == evil_value

    cluster.run(app())
