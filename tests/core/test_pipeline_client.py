"""Pipelined client: slotted buffers, in-flight windows, batch ops."""

import pytest

from repro import HydraCluster, SimConfig
from repro.core import BadStatus, RequestTimeout
from repro.protocol import Op, Status


def pipelined_config(window, **hydra):
    over = {"msg_slots_per_conn": window, "max_inflight_per_conn": window,
            "rptr_cache_enabled": False}
    over.update(hydra)
    return SimConfig().with_overrides(hydra=over)


def make_cluster(config=None, **kw):
    kw.setdefault("n_server_machines", 1)
    kw.setdefault("shards_per_server", 1)
    cluster = HydraCluster(config=config, **kw)
    cluster.start()
    return cluster


KEYS = [f"pk-{i:03d}".encode() for i in range(64)]


def _measure(window, op):
    """ns spent moving 64 ops through one shard at the given window."""
    cluster = make_cluster(pipelined_config(window))
    client = cluster.client()
    out = {}

    def app():
        for k in KEYS:
            yield from client.put(k, b"v" * 32)
        t0 = cluster.sim.now
        if op == "get":
            values = yield from client.get_many(KEYS)
            assert values == [b"v" * 32] * len(KEYS)
        else:
            statuses = yield from client.put_many(
                [(k, b"w" * 32) for k in KEYS])
            assert all(s is Status.OK for s in statuses)
        out["t"] = cluster.sim.now - t0

    cluster.run(app())
    return out["t"]


def test_window16_get_throughput_at_least_2x_window1():
    t1, t16 = _measure(1, "get"), _measure(16, "get")
    assert t1 / t16 >= 2.0, f"GET speedup only {t1 / t16:.2f}x"


def test_window16_put_throughput_improves():
    # PUT is server-CPU-bound (update_extra_ns dominates), so pipelining
    # buys less than for GET — but it must still overlap fabric latency.
    t1, t16 = _measure(1, "put"), _measure(16, "put")
    assert t1 / t16 >= 1.4, f"PUT speedup only {t1 / t16:.2f}x"


def test_window1_defaults_match_stop_and_wait():
    """Default config is depth-1: the pipeline must not change behavior."""
    cfg = SimConfig()
    assert cfg.hydra.msg_slots_per_conn == 1
    assert cfg.hydra.max_inflight_per_conn == 1
    cluster = make_cluster(shards_per_server=2)
    client = cluster.client()

    def app():
        assert (yield from client.put(b"k", b"v")) is Status.OK
        assert (yield from client.get(b"k")) == b"v"

    cluster.run(app())


def test_get_many_across_shards_overlaps_requests():
    """ISSUE acceptance: get_many over 2+ shards completes faster than the
    sum of serial round trips."""
    cluster = make_cluster(pipelined_config(8), shards_per_server=2)
    client = cluster.client()
    keys = KEYS[:32]
    times = {}

    def app():
        for k in keys:
            yield from client.put(k, b"v" * 16)
        # Serial round trips, one at a time.
        t0 = cluster.sim.now
        for k in keys:
            assert (yield from client.get(k)) == b"v" * 16
        times["serial"] = cluster.sim.now - t0
        # Batched: all 32 in flight across both shards' connections.
        t0 = cluster.sim.now
        values = yield from client.get_many(keys)
        assert values == [b"v" * 16] * len(keys)
        times["batch"] = cluster.sim.now - t0

    cluster.run(app())
    # Keys spread over 2 shards; batch must beat the serial total.
    shards_hit = sum(1 for s in cluster.shards() if len(s.store) > 0)
    assert shards_hit >= 2
    assert times["batch"] < times["serial"], times


def test_get_many_mixed_hits_and_misses_preserve_order():
    cluster = make_cluster(pipelined_config(4), shards_per_server=2)
    client = cluster.client()

    def app():
        yield from client.put(b"a", b"1")
        yield from client.put(b"c", b"3")
        values = yield from client.get_many([b"a", b"missing", b"c"])
        assert values == [b"1", None, b"3"]

    cluster.run(app())


def test_put_many_returns_per_key_statuses():
    cluster = make_cluster(pipelined_config(4), shards_per_server=2)
    client = cluster.client()

    def app():
        statuses = yield from client.put_many(
            [(k, b"x") for k in KEYS[:8]])
        assert statuses == [Status.OK] * 8
        assert (yield from client.get_many(KEYS[:8])) == [b"x"] * 8

    cluster.run(app())


def test_stale_response_discarded_not_fatal():
    """Satellite: a late response from a timed-out request must be counted
    and discarded, not poison the next call on the connection."""
    cfg = pipelined_config(1, op_timeout_ns=2_000)
    cluster = make_cluster(cfg)
    # Single-attempt mode: a retrying client would drop the connection,
    # so the late response could never land on this client.
    client = cluster.client(deadline_us=0)

    def app():
        with pytest.raises(RequestTimeout):
            yield from client.put(b"k", b"v")  # shard replies after ~4us
        # Restore a sane deadline and let the stale response land.
        cluster.config.hydra.op_timeout_ns = 50_000_000
        yield cluster.sim.timeout(1_000_000)
        assert (yield from client.put(b"k", b"v2")) is Status.OK
        assert (yield from client.get(b"k")) == b"v2"

    cluster.run(app())
    assert cluster.metrics.counter("client.stale_responses").value >= 1


def test_window_full_and_dead_shard_times_out_cleanly():
    cfg = pipelined_config(2, op_timeout_ns=5_000_000)
    cluster = make_cluster(cfg)
    client = cluster.client()

    def app():
        yield from client.put(b"k", b"v")
        cluster.servers[0].kill()
        with pytest.raises(RequestTimeout):
            yield from client.get_many([b"k"] * 8)

    cluster.run(app())


def test_oversized_request_names_the_knobs():
    cfg = pipelined_config(16)  # 16 KiB buffer / 16 slots = 1 KiB slots
    cluster = make_cluster(cfg)
    client = cluster.client()

    def app():
        with pytest.raises(ValueError, match="conn_buf_bytes"):
            yield from client.put(b"big", b"x" * 4096)

    cluster.run(app())


def test_resp_overflow_degrades_to_clean_error():
    """Satellite: a response that outgrows its slot becomes Status.ERROR
    plus a shard.resp_overflow metric — never a silent drop/timeout."""
    cfg = pipelined_config(16)  # 1 KiB response slots
    cluster = make_cluster(cfg)
    client = cluster.client()
    shard = cluster.route(b"big")
    # Plant an item larger than a response slot directly in the store —
    # it arrived via a fatter-buffered connection in a real deployment.
    shard.store_for_key(b"big").upsert(b"big", b"x" * 2048, Op.PUT)

    def app():
        with pytest.raises(BadStatus, match="ERROR"):
            yield from client.get(b"big")

    cluster.run(app())
    assert cluster.metrics.counter("shard.resp_overflow").value >= 1


def test_numa_placement_of_connection_buffers():
    """Satellite: req buffer lives on the shard's domain, resp buffer on
    the client's domain."""
    cluster = make_cluster(shards_per_server=2)
    client = cluster.client()
    for shard in cluster.shards():
        conn = client.connection_to(shard)
        assert conn.req_region.numa_domain == shard.core.numa_domain
        assert conn.resp_region.numa_domain == client.numa_domain
