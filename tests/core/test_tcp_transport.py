"""HydraDB's TCP/IP transport mode (§6: 'HydraDB also supports TCP/IP')."""

import pytest

from repro import HydraCluster, SimConfig
from repro.core import ShardUnavailable
from repro.protocol import Status


def tcp_cluster(**kw):
    cfg = SimConfig().with_overrides(hydra={"transport": "tcp"})
    kw.setdefault("n_server_machines", 1)
    kw.setdefault("shards_per_server", 2)
    cluster = HydraCluster(config=cfg, **kw)
    cluster.start()
    return cluster


def test_full_op_set_over_tcp():
    cluster = tcp_cluster()
    client = cluster.client()
    assert client.cache is None  # no one-sided reads over TCP

    def app():
        assert (yield from client.put(b"k", b"v1")) is Status.OK
        assert (yield from client.get(b"k")) == b"v1"
        assert (yield from client.insert(b"k", b"x")) is Status.EXISTS
        assert (yield from client.update(b"k", b"v2")) is Status.OK
        assert (yield from client.get(b"k")) == b"v2"
        assert (yield from client.delete(b"k")) is Status.OK
        assert (yield from client.get(b"k")) is None

    cluster.run(app())


def test_each_shard_gets_its_own_port():
    cluster = tcp_cluster(shards_per_server=4)
    ports = [s.tcp_port for s in cluster.shards()]
    assert len(set(ports)) == 4
    assert all(p >= 7100 for p in ports)


def test_tcp_mode_consistency_storm():
    cluster = tcp_cluster()
    model = {}

    def worker(cid, client):
        for i in range(25):
            key, value = f"c{cid}-{i % 6}".encode(), f"v{cid}-{i}".encode()
            assert (yield from client.put(key, value)) is Status.OK
            model[key] = value
            assert (yield from client.get(key)) == value

    cluster.run(*[worker(cid, cluster.client()) for cid in range(4)])
    final = {}
    for shard in cluster.shards():
        final.update(shard.store.dump())
    assert final == model


def test_tcp_latency_order_of_magnitude_above_rdma():
    def one_get(cfg):
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=1)
        cluster.start()
        client = cluster.client()
        out = {}

        def app():
            yield from client.put(b"k", b"v" * 32)
            t0 = cluster.sim.now
            yield from client.get(b"k")
            out["lat"] = cluster.sim.now - t0

        cluster.run(app())
        return out["lat"]

    lat_rdma = one_get(SimConfig())
    lat_tcp = one_get(SimConfig().with_overrides(
        hydra={"transport": "tcp"}))
    assert lat_tcp > 10 * lat_rdma


def test_tcp_transport_with_replication():
    cfg = SimConfig().with_overrides(hydra={"transport": "tcp"},
                                     replication={"replicas": 1})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1)
    cluster.start()
    client = cluster.client()

    def app():
        for i in range(10):
            yield from client.put(f"k{i}".encode(), b"v" * 8)

    cluster.run(app())
    cluster.sim.run(until=cluster.sim.now + 10_000_000)
    shard = cluster.shards()[0]
    sec = cluster.secondaries[shard.shard_id][0]
    assert sec.store.dump() == shard.store.dump()


def test_pipelined_connection_drains_queue_and_batches_responses():
    """One connection with several requests in flight: a single epoll
    wake drains the ready queue and the responses flush as one batched
    syscall (the TCP analogue of doorbell coalescing)."""
    from repro.protocol import Op, Request, Response

    cluster = tcp_cluster(shards_per_server=1)
    shard = cluster.shards()[0]
    machine = cluster.client().machine
    done = []

    def pipelined():
        conn = yield machine.tcp.connect(shard.machine.tcp, shard.tcp_port)
        # A 1 MiB PUT pins the single shard thread long enough for the
        # small requests behind it to pile onto the epoll ready queue.
        big = Request(op=Op.PUT, key=b"big", value=b"B" * (1 << 20),
                      req_id=99)
        reqs = [Request(op=Op.PUT, key=f"p{i}".encode(), value=b"v",
                        req_id=i) for i in range(8)]
        yield conn.send_many([(big.encode(), big.wire_len + 40)] +
                             [(r.encode(), r.wire_len + 40) for r in reqs])
        got = {}
        while len(got) < len(reqs) + 1:
            payload, _n = yield conn.recv()
            resp = Response.decode(payload)
            got[resp.req_id] = resp.status
        assert all(s is Status.OK for s in got.values())
        done.append(True)

    cluster.run(pipelined())
    assert done == [True]
    assert cluster.metrics.counter("shard.tcp_drained").value > 0
    assert cluster.metrics.counter("shard.tcp_resp_batched").value > 0


def test_request_before_start_rejected():
    cfg = SimConfig().with_overrides(hydra={"transport": "tcp"})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1)
    client = cluster.client()

    def app():
        with pytest.raises(ShardUnavailable):
            yield from client.get(b"k")

    cluster.sim.run(until=cluster.sim.process(app()))


def test_tcp_with_shard_variants_rejected():
    for overrides in ({"transport": "tcp", "pipelined_shards": True},
                      {"transport": "tcp", "subshards": 4}):
        cfg = SimConfig().with_overrides(hydra=overrides)
        with pytest.raises(ValueError, match="TCP transport"):
            HydraCluster(config=cfg, n_server_machines=1,
                         shards_per_server=1)


def test_tcp_mode_failover_recovers():
    """SWAT promotion works in TCP mode: the promoted shard opens its own
    listener and clients reconnect lazily."""
    MS = 1_000_000
    cfg = SimConfig().with_overrides(
        hydra={"transport": "tcp", "op_timeout_ns": 5 * MS},
        replication={"replicas": 1})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1)
    cluster.enable_ha()
    cluster.start()
    client = cluster.client()

    def load():
        for i in range(10):
            yield from client.put(f"k{i}".encode(), f"v{i}".encode())

    cluster.run(load())
    cluster.sim.run(until=cluster.sim.now + 20 * MS)
    cluster.servers[0].kill()
    cluster.servers[0].machine.tcp.fail()
    cluster.sim.run(until=cluster.sim.now + 4_000 * MS)

    def verify():
        for i in range(10):
            assert (yield from client.get(f"k{i}".encode())) == \
                f"v{i}".encode()

    cluster.run(verify())
