"""Server-side sweep scalability: occupancy probing, ready hints,
doorbell-batched responses, and connection teardown on kill."""

from repro import HydraCluster, SimConfig
from repro.protocol import Status

KEYS = [f"sw-{i:03d}".encode() for i in range(48)]


def sweep_config(**hydra):
    over = {"msg_slots_per_conn": 16, "max_inflight_per_conn": 16,
            "rptr_cache_enabled": False}
    over.update(hydra)
    return SimConfig().with_overrides(hydra=over)


def run_batch_workload(config, n_clients=1):
    cluster = HydraCluster(config=config, n_server_machines=1,
                           shards_per_server=1,
                           n_client_machines=max(1, n_clients // 4))
    cluster.start()
    clients = [cluster.client(i % max(1, n_clients // 4))
               for i in range(n_clients)]

    def app(client, cid):
        keys = [k + str(cid).encode() for k in KEYS]
        statuses = yield from client.put_many([(k, b"v" * 24) for k in keys])
        assert all(s is Status.OK for s in statuses)
        values = yield from client.get_many(keys)
        assert values == [b"v" * 24] * len(keys)

    cluster.run(*(app(c, i) for i, c in enumerate(clients)))
    return cluster


def test_occupancy_word_skips_idle_slots():
    on = run_batch_workload(sweep_config())
    off = run_batch_workload(sweep_config(occupancy_word=False))
    assert on.metrics.counter("shard.sweeps").value > 0
    # The word saves per-slot probes whenever a swept buffer is not
    # fully announced; with it off every swept slot is probed.
    assert on.metrics.counter("shard.probes_skipped").value > 0
    probed_on = on.metrics.counter("shard.probes").value
    skipped_on = on.metrics.counter("shard.probes_skipped").value
    assert probed_on > 0
    # Same workload, same 16-slot buffers: swept slots split into probed
    # + skipped only when the occupancy word is present.
    assert probed_on < probed_on + skipped_on
    assert off.metrics.counter("shard.probes_skipped").value == 0


def test_occupancy_off_probes_every_slot():
    cluster = run_batch_workload(sweep_config(occupancy_word=False))
    assert cluster.metrics.counter("shard.probes_skipped").value == 0
    assert cluster.metrics.counter("shard.probes").value > 0
    conn = cluster.shards()[0].conns[0]
    assert conn.layout.occupancy is False
    assert conn.req_occ_rptr is None


def test_ready_hints_avoid_sweeping_clean_connections():
    # 8 connections, but the workload phases mean most sweeps find only
    # a subset dirty; with hints the safety-net full sweeps are rare.
    cluster = run_batch_workload(sweep_config(), n_clients=8)
    sweeps = cluster.metrics.counter("shard.sweeps").value
    full = cluster.metrics.counter("shard.full_sweeps").value
    assert sweeps > 0
    # Most sweeps are hint-driven; safety-net full sweeps are the rare
    # 1-in-FULL_SWEEP_EVERY backstop.
    assert full < sweeps / 2


def test_ready_hints_off_keeps_full_sweeps():
    cluster = run_batch_workload(sweep_config(ready_hints=False))
    # Every sweep is a full sweep; the separate safety-net counter stays
    # untouched because there is no ready set to backstop.
    assert cluster.metrics.counter("shard.full_sweeps").value == 0
    assert cluster.metrics.counter("shard.sweeps").value > 0


def test_batched_responses_coalesce_doorbells():
    cluster = run_batch_workload(sweep_config())
    coalesced = cluster.metrics.counter("shard.resp_coalesced").value
    doorbells = cluster.metrics.counter("shard.resp_doorbells").value
    requests = cluster.metrics.counter("shard.requests").value
    assert coalesced > 0
    # Coalescing means strictly fewer doorbells than responses.
    assert doorbells + coalesced == requests
    assert doorbells < requests


def test_batching_off_rings_per_response():
    cluster = run_batch_workload(sweep_config(resp_doorbell_batch=0))
    assert cluster.metrics.counter("shard.resp_coalesced").value == 0
    assert cluster.metrics.counter("shard.resp_doorbells").value == \
        cluster.metrics.counter("shard.requests").value


def test_drain_budget_defers_hot_connections():
    # Budget 2 on a 48-op batch per sweep: the sweep must hand the rest
    # of the snapshot back (re-announced, connection re-marked ready) and
    # still complete every operation.
    cluster = run_batch_workload(sweep_config(sweep_drain_budget=2),
                                 n_clients=4)
    deferred = cluster.metrics.counter("shard.drain_deferred").value
    assert deferred > 0
    # Nothing deferred was lost: run_batch_workload asserted every PUT
    # and GET completed.


def test_drain_budget_zero_drains_everything():
    cluster = run_batch_workload(sweep_config(), n_clients=4)
    assert cluster.metrics.counter("shard.drain_deferred").value == 0


def test_kill_tears_down_connections():
    cluster = run_batch_workload(sweep_config())
    shard = cluster.shards()[0]
    conns = list(shard.conns)
    assert conns and all(c.shard_qp.connected for c in conns)
    shard.kill()
    # The dead process's QPs no longer linger in the fabric.
    for conn in conns:
        assert not conn.shard_qp.connected
        assert not conn.client_qp.usable
    assert not shard.nic.qps


def test_seed_defaults_still_behave_stop_and_wait():
    # Window-1 default config with all three layers on: plain roundtrip.
    cluster = HydraCluster(n_server_machines=1, shards_per_server=2)
    cluster.start()
    client = cluster.client()

    def app():
        assert (yield from client.put(b"k", b"v")) is Status.OK
        assert (yield from client.get(b"k")) == b"v"

    cluster.run(app())
