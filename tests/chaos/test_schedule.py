"""Schedules are pure functions of (profile, seed, storm bounds)."""

import pytest

from repro.chaos import PROFILES, build_schedule
from repro.chaos.schedule import FaultAction, FaultWindow

_MS = 1_000_000


def test_same_seed_same_schedule():
    for profile in PROFILES:
        a = build_schedule(profile, 1234)
        b = build_schedule(profile, 1234)
        assert a == b, profile


def test_different_seed_different_schedule():
    assert build_schedule("mixed", 1) != build_schedule("mixed", 2)


def test_every_profile_builds_inside_storm_bounds():
    t0, t1 = 100 * _MS, 400 * _MS
    for profile in PROFILES:
        sched = build_schedule(profile, 99, t0, t1)
        assert sched.windows or sched.actions, profile
        for w in sched.windows:
            assert t0 <= w.t0_ns < w.t1_ns <= t1
            assert 0.0 < w.p <= 1.0
        for a in sched.actions:
            assert t0 <= a.t_ns <= t1


def test_active_window_lookup():
    sched = build_schedule("torn", 5)
    w = next(w for w in sched.windows if w.site == "write_torn")
    assert sched.active("write_torn", w.t0_ns) is w
    assert sched.active("write_torn", w.t1_ns) is None
    assert sched.active("tcp_reset", w.t0_ns) is None


def test_unknown_profile_and_site_rejected():
    with pytest.raises(ValueError):
        build_schedule("nope", 1)
    with pytest.raises(ValueError):
        FaultWindow("not_a_site", 0, 1)
    with pytest.raises(ValueError):
        FaultAction(0, "not_a_kind")
    with pytest.raises(ValueError):
        FaultWindow("write_drop", 5, 5)  # empty interval


def test_describe_mentions_every_fault():
    sched = build_schedule("mixed", 3)
    text = sched.describe()
    for w in sched.windows:
        assert w.site in text
    for a in sched.actions:
        assert a.kind in text
