"""Per-site injector behavior: scope rules, decisions, end-to-end torn writes."""

import pytest

from repro import HydraCluster, SimConfig
from repro.chaos import FaultInjector, FaultSchedule
from repro.chaos.schedule import FaultWindow
from repro.core.errors import HydraError
from repro.sim import Simulator

ALWAYS = 10**12  # window end far past any test run


class _Region:
    def __init__(self, name):
        self.name = name


def _injector(*windows):
    sched = FaultSchedule(name="unit", seed=1, windows=tuple(windows))
    return FaultInjector(Simulator(), sched)


def test_write_faults_only_hit_message_regions():
    inj = _injector(FaultWindow("write_drop", 0, ALWAYS, p=1.0))
    data = b"x" * 64
    assert inj.rdma_write_fault(None, None, _Region("s0.0.req"), 0, data) \
        == {"drop": True}
    assert inj.rdma_write_fault(None, None, _Region("c0.resp"), 0, data) \
        == {"drop": True}
    # Replication ring / ack / arena regions are exempt by design.
    for name in ("s0.0.ring", "s0.0.ack", "s0.0.arena", "s0.0.repwait"):
        assert inj.rdma_write_fault(None, None, _Region(name), 0,
                                    data) is None
    assert inj.injected == 2


def test_torn_writes_are_word_aligned_proper_prefixes():
    inj = _injector(FaultWindow("write_torn", 0, ALWAYS, p=1.0))
    for size in (9, 16, 24, 129):
        fault = inj.rdma_write_fault(None, None, _Region("a.req"), 0,
                                     b"x" * size)
        cut = fault["torn_bytes"]
        assert cut % 8 == 0 and 8 <= cut < size, size
    # An 8-byte write (an occupancy word) cannot tear between words.
    assert inj.rdma_write_fault(None, None, _Region("a.req"), 0,
                                b"x" * 8) is None


def test_duplicates_restricted_to_response_regions():
    inj = _injector(FaultWindow("write_dup", 0, ALWAYS, p=1.0))
    data = b"x" * 32
    assert inj.rdma_write_fault(None, None, _Region("c.resp"), 0, data) \
        == {"duplicate": True}
    # A duplicated *request* could re-execute a stale mutation.
    assert inj.rdma_write_fault(None, None, _Region("s.req"), 0,
                                data) is None


def test_delay_sampling_within_window_bounds():
    inj = _injector(FaultWindow("write_delay", 0, ALWAYS, p=1.0,
                                min_delay_ns=500, max_delay_ns=900),
                    FaultWindow("read_delay", 0, ALWAYS, p=1.0,
                                min_delay_ns=100, max_delay_ns=200))
    for _ in range(20):
        f = inj.rdma_write_fault(None, None, _Region("a.req"), 0, b"x" * 32)
        assert 500 <= f["delay_ns"] < 900
        f = inj.rdma_read_fault(None, None, _Region("a.arena"), 0, 64)
        assert 100 <= f["delay_ns"] < 200


def test_tcp_and_watch_and_replication_hooks():
    inj = _injector(FaultWindow("tcp_reset", 0, ALWAYS, p=1.0),
                    FaultWindow("watch_delay", 0, ALWAYS, p=1.0,
                                min_delay_ns=1000, max_delay_ns=2000),
                    FaultWindow("rep_fault", 0, ALWAYS, p=1.0))
    assert inj.tcp_fault(None, b"p", 1) == "reset"
    assert 1000 <= inj.watch_delay("/shards/s0.0", "deleted") < 2000

    class _Sec:
        shard_id = "s0.0"

    assert inj.replication_fault(_Sec()) is True
    inj2 = _injector()  # no windows: everything clean
    assert inj2.tcp_fault(None, b"p", 1) is None
    assert inj2.watch_delay("/x", "created") == 0
    assert inj2.replication_fault(_Sec()) is False
    assert inj2.injected == 0


def test_injection_log_and_hash_are_replayable():
    def sample():
        inj = _injector(FaultWindow("write_drop", 0, ALWAYS, p=0.5))
        for i in range(50):
            inj.rdma_write_fault(None, None, _Region("a.req"), 0, b"x" * 32)
        return inj.log, inj.schedule_hash()

    log_a, hash_a = sample()
    log_b, hash_b = sample()
    assert log_a == log_b and hash_a == hash_b
    assert 0 < len(log_a) < 50  # p=0.5 actually sampled, not constant


def test_torn_write_storm_end_to_end():
    """Under a 100% torn-write storm no PUT lands garbage and every
    failure is typed — the guardian/indicator contract at full blast."""
    sched = FaultSchedule(
        name="torn-e2e", seed=3,
        windows=(FaultWindow("write_torn", 0, ALWAYS, p=1.0),))
    cfg = SimConfig().with_overrides(hydra={"op_timeout_ns": 2_000_000})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    cluster.start()
    inj = FaultInjector(cluster.sim, sched).attach(cluster)
    inj.start()
    client = cluster.client(deadline_us=20_000)
    outcome = []

    def app():
        try:
            yield from client.put(b"k1", b"v" * 64)
            outcome.append("ok")
        except HydraError as exc:
            outcome.append(exc)

    cluster.run(app())
    # Every request frame tore, so the op must have failed typed...
    assert len(outcome) == 1 and isinstance(outcome[0], HydraError)
    # ...nothing half-written ever entered the store...
    shard = cluster.shards()[0]
    assert shard.store.dump() == {}
    # ...and the injector actually tore frames (initial + retries).
    torn = [entry for entry in inj.log if entry[1] == "write_torn"]
    assert len(torn) >= 2


def test_injector_requires_attach_before_start():
    inj = _injector()
    with pytest.raises(RuntimeError):
        inj.start()
