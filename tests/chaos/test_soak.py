"""Small chaos soaks: the resilience contract + same-seed replayability.

Scaled-down versions of the bench cells — fewer keys, slower pacing —
but the invariants are the full contract: no acked write lost, no
corrupt value surfaced, typed bounded errors only, post-storm recovery.
"""

import pytest

from repro.chaos.harness import run_soak

_SMALL = dict(scale=0.05, n_keys=16, n_clients=2)


def _check_contract(row):
    assert row["untyped_errors"] == 0
    assert row["corrupt_values"] == 0
    assert row["lost_acked_writes"] == 0
    assert row["deadline_violations"] == 0
    assert row["converged"] is True
    assert row["recovered_ratio"] >= 0.8
    assert row["ops"] > 0


def test_torn_storm_contract_and_replay():
    a = run_soak("torn", 11, **_SMALL)
    _check_contract(a)
    assert a["injected_faults"] > 0
    b = run_soak("torn", 11, **_SMALL)
    assert a == b  # identical seed -> identical storm AND verdict
    c = run_soak("torn", 12, **_SMALL)
    assert c["schedule_hash"] != a["schedule_hash"]


def test_gray_failure_storm_is_survived_by_deadlines():
    row = run_soak("gray", 23, **_SMALL)
    _check_contract(row)
    # The shard went gray (QPs alive, no sweeping): SWAT must NOT have
    # promoted — only client deadlines carried the workload through.
    assert row["gray_failures"] >= 1
    assert row["failovers"] == 0
    assert row["errors"] > 0  # deadline-bounded typed failures surfaced


def test_mixed_storm_drives_a_real_failover():
    row = run_soak("mixed", 71, **_SMALL)
    _check_contract(row)
    assert row["failovers"] >= 1
    assert row["injected_faults"] > 0


@pytest.mark.parametrize("profile,seed", [("zk", 37), ("flap", 53)])
def test_coordination_and_flap_storms(profile, seed):
    row = run_soak(profile, seed, **_SMALL)
    _check_contract(row)
    assert row["injected_faults"] > 0


def test_stale_pointer_storm_traversal_contract_and_replay():
    """Delayed Reads race bucket snapshots and primed pointers against
    shrunken leases and reclaim; the oracle proves no torn or reclaimed
    value ever surfaces from a traversal, and the storm replays bit-
    identically."""
    a = run_soak("stale", 89, **_SMALL)
    _check_contract(a)
    assert a["injected_faults"] > 0
    # The storm actually exercised the one-sided traversal path.
    assert a["bucket_reads"] > 0
    b = run_soak("stale", 89, **_SMALL)
    assert a == b  # same seed -> same storm, same traversal outcome


def test_dualfail_storm_recovers_through_the_durable_log():
    """Correlated primary+secondary kill: no survivor to promote, so the
    shard must come back from the durable write-behind log, the skew
    guard must keep leases honest, and the whole storm must replay
    bit-identically."""
    a = run_soak("dualfail", 113, **_SMALL)
    _check_contract(a)
    assert a["injected_faults"] > 0
    assert a["failovers"] >= 1
    assert a["log_recoveries"] >= 1
    assert a["log_replayed"] > 0
    # The profile arms lease_skew_guard_ns wider than the injected skew:
    # no client may read a dead item past its skew-adjusted horizon.
    assert a["lease_skew_hazards"] == 0
    b = run_soak("dualfail", 113, **_SMALL)
    assert a == b  # same seed -> same dual failure, same recovery


@pytest.mark.parametrize("profile,seed,variant", [
    ("torn", 131, "subshard"),
    ("gray", 149, "pipelined"),
])
def test_storm_matrix_variants_hold_the_contract(profile, seed, variant):
    replicas = 0 if variant == "subshard" else 1
    a = run_soak(profile, seed, variant=variant, replicas=replicas, **_SMALL)
    _check_contract(a)
    assert a["variant"] == variant
    assert a["injected_faults"] > 0
    b = run_soak(profile, seed, variant=variant, replicas=replicas, **_SMALL)
    assert a == b  # the variant cells replay bit-identically too


def test_storm_matrix_double_replica_survives_mixed():
    row = run_soak("mixed", 167, replicas=2, **_SMALL)
    _check_contract(row)
    assert row["replicas"] == 2
    assert row["failovers"] >= 1
