"""Replication: log records, RDMA logging protocol, strict mode, faults."""

import pytest

from repro import HydraCluster, SimConfig
from repro.protocol import Op
from repro.replication import Ack, LogRecord, RecordType


# -- record encodings ---------------------------------------------------------

def test_log_record_roundtrip():
    rec = LogRecord(rtype=RecordType.DATA, seq=7, op=Op.PUT,
                    key=b"k", value=b"v" * 20, version=3)
    assert LogRecord.decode(rec.encode()) == rec


def test_ack_request_record():
    rec = LogRecord.ack_request(99)
    decoded = LogRecord.decode(rec.encode())
    assert decoded.rtype is RecordType.ACK_REQUEST and decoded.seq == 99


def test_log_record_length_check():
    data = LogRecord(rtype=RecordType.DATA, seq=1, key=b"k").encode()
    with pytest.raises(ValueError):
        LogRecord.decode(data + b"x")


def test_ack_roundtrip():
    ack = Ack(applied_seq=12, consumed=4096, epoch=3, failed=True)
    assert Ack.decode(ack.encode()) == ack


# -- end-to-end replication ---------------------------------------------------

def replicated_cluster(replicas=1, mode="rdma_log", fault_probability=0.0,
                       **hydra):
    cfg = SimConfig().with_overrides(
        replication={"replicas": replicas, "mode": mode,
                     "fault_probability": fault_probability},
        hydra=hydra or {},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1)
    cluster.start()
    return cluster


def drain(cluster, extra_ns=5_000_000):
    cluster.sim.run(until=cluster.sim.now + extra_ns)


def test_mutations_reach_secondary():
    cluster = replicated_cluster()
    client = cluster.client()

    def app():
        for i in range(20):
            yield from client.put(f"k{i}".encode(), f"v{i}".encode())

    cluster.run(app())
    drain(cluster)
    shard = cluster.shards()[0]
    sec = cluster.secondaries[shard.shard_id][0]
    assert sec.store.dump() == shard.store.dump()
    assert sec.applied_seq == 20


def test_two_replicas_both_converge():
    cluster = replicated_cluster(replicas=2)
    client = cluster.client()

    def app():
        for i in range(15):
            yield from client.put(f"k{i}".encode(), b"x" * 24)
        yield from client.delete(b"k3")
        yield from client.update(b"k4", b"updated")

    cluster.run(app())
    drain(cluster)
    shard = cluster.shards()[0]
    expected = shard.store.dump()
    assert b"k3" not in expected and expected[b"k4"] == b"updated"
    for sec in cluster.secondaries[shard.shard_id]:
        assert sec.store.dump() == expected


def test_versions_preserved_on_secondary():
    cluster = replicated_cluster()
    client = cluster.client()

    def app():
        for _ in range(5):
            yield from client.put(b"k", b"v")

    cluster.run(app())
    drain(cluster)
    shard = cluster.shards()[0]
    sec = cluster.secondaries[shard.shard_id][0]
    assert sec.store.get(b"k").version == shard.store.get(b"k").version == 5


def test_rdma_log_overhead_small_vs_strict():
    """Fig. 13 shape at smoke scale: strict ~doubles latency; logging adds
    a modest overhead."""

    def avg_insert_latency(replicas, mode="rdma_log"):
        cluster = replicated_cluster(replicas=replicas, mode=mode)
        client = cluster.client()
        lat = []

        def app():
            for i in range(60):
                t0 = cluster.sim.now
                yield from client.insert(f"key-{i}".encode(), b"v" * 32)
                lat.append(cluster.sim.now - t0)

        cluster.run(app())
        return sum(lat) / len(lat)

    base = avg_insert_latency(0)
    logging1 = avg_insert_latency(1)
    strict1 = avg_insert_latency(1, mode="strict")
    assert base < logging1 < strict1
    assert (logging1 - base) / base < 0.35   # logging: small overhead
    assert (strict1 - base) / base > 0.60    # strict: near-doubling


def test_fault_injection_recovers_via_rollback():
    cluster = replicated_cluster(fault_probability=0.05)
    shard = cluster.shards()[0]
    sec = cluster.secondaries[shard.shard_id][0]
    sec._fault_rng = __import__("numpy").random.default_rng(7)
    client = cluster.client()

    def app():
        for i in range(200):
            yield from client.put(f"k{i % 40}".encode(), f"v{i}".encode())

    cluster.run(app())
    # Force a final ack round so the tail gets resent if needed.
    rep = cluster.replicators[shard.shard_id]
    rep._solicit_acks()
    for _ in range(20):
        drain(cluster, 2_000_000)
        if sec.store.dump() == shard.store.dump():
            break
        rep._solicit_acks()
    assert sec.store.dump() == shard.store.dump()
    assert cluster.metrics.counter("repl.resends").value > 0
    assert cluster.metrics.counter("replica.discarded").value > 0


def test_ring_backpressure_blocks_but_completes():
    # A tiny ring forces RingFull slow paths constantly.
    cfg = SimConfig().with_overrides(
        replication={"replicas": 1, "log_bytes": 1024, "ack_interval": 4})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1)
    cluster.start()
    client = cluster.client()

    def app():
        for i in range(100):
            yield from client.put(f"k{i}".encode(), b"x" * 64)

    cluster.run(app())
    drain(cluster)
    shard = cluster.shards()[0]
    sec = cluster.secondaries[shard.shard_id][0]
    assert sec.store.dump() == shard.store.dump()


def test_bad_replication_mode_rejected():
    with pytest.raises(ValueError):
        replicated_cluster(mode="chain")


def test_no_replication_hook_when_disabled():
    cluster = HydraCluster(n_server_machines=1, shards_per_server=1)
    assert cluster.replicators == {} and cluster.replica_machines == []
    assert cluster.shards()[0].replicator is None
