"""Store / Resource / Mutex / Gate behaviour."""

import pytest

from repro.sim import Gate, Mutex, Resource, Simulator, SimulationError, Store


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    got = []

    def consumer():
        got.append((yield store.get()))
        got.append((yield store.get()))

    sim.process(consumer())
    sim.run()
    assert got == ["a", "b"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(250)
        store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(250, "late")]


def test_store_fifo_across_multiple_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(cid):
        item = yield store.get()
        got.append((cid, item))

    for cid in range(3):
        sim.process(consumer(cid))

    def producer():
        for item in "xyz":
            yield sim.timeout(10)
            store.put(item)

    sim.process(producer())
    sim.run()
    assert got == [(0, "x"), (1, "y"), (2, "z")]


def test_bounded_store_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    timeline = []

    def producer():
        yield store.put("a")
        timeline.append(("put-a", sim.now))
        yield store.put("b")
        timeline.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(100)
        item = yield store.get()
        timeline.append((f"got-{item}", sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-a", 0) in timeline
    assert ("put-b", 100) in timeline  # unblocked only after the get


def test_store_try_put_try_get():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put(1) and store.try_put(2)
    assert not store.try_put(3)
    ok, item = store.try_get()
    assert ok and item == 1
    assert store.try_put(3)
    assert [store.try_get()[1] for _ in range(2)] == [2, 3]
    ok, item = store.try_get()
    assert not ok and item is None


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_resource_serializes_access():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def worker(wid):
        req = res.request()
        yield req
        start = sim.now
        yield sim.timeout(100)
        res.release(req)
        spans.append((wid, start, sim.now))

    for wid in range(3):
        sim.process(worker(wid))
    sim.run()
    assert spans == [(0, 0, 100), (1, 100, 200), (2, 200, 300)]


def test_resource_capacity_two_allows_overlap():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    ends = []

    def worker(wid):
        req = res.request()
        yield req
        yield sim.timeout(100)
        res.release(req)
        ends.append((wid, sim.now))

    for wid in range(4):
        sim.process(worker(wid))
    sim.run()
    assert ends == [(0, 100), (1, 100), (2, 200), (3, 200)]


def test_resource_counts():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert res.count == 1 and res.queued == 1
    res.release(r1)
    assert res.count == 1 and res.queued == 0
    res.release(r2)
    assert res.count == 0


def test_release_foreign_request_rejected():
    sim = Simulator()
    a, b = Resource(sim), Resource(sim)
    ra = a.request()
    with pytest.raises(SimulationError):
        b.release(ra)


def test_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    res.release(r2)  # cancel while queued
    res.release(r1)
    assert res.count == 0 and res.queued == 0


def test_mutex_is_capacity_one():
    sim = Simulator()
    m = Mutex(sim)
    assert m.capacity == 1


def test_gate_broadcast_wakes_all_waiters():
    sim = Simulator()
    gate = Gate(sim)
    woken = []

    def waiter(wid):
        v = yield gate.wait()
        woken.append((wid, v, sim.now))

    for wid in range(3):
        sim.process(waiter(wid))

    def firer():
        yield sim.timeout(80)
        assert gate.fire("go") == 3

    sim.process(firer())
    sim.run()
    assert woken == [(0, "go", 80), (1, "go", 80), (2, "go", 80)]


def test_gate_rearms_after_fire():
    sim = Simulator()
    gate = Gate(sim)
    assert gate.fire() == 0  # no waiters: no-op
    log = []

    def waiter():
        yield gate.wait()
        log.append(sim.now)
        yield gate.wait()
        log.append(sim.now)

    sim.process(waiter())

    def firer():
        yield sim.timeout(10)
        gate.fire()
        yield sim.timeout(10)
        gate.fire()

    sim.process(firer())
    sim.run()
    assert log == [10, 20]
