"""Readers-writer lock semantics."""

import pytest

from repro.sim import RwLock, Simulator, SimulationError


def test_readers_share():
    sim = Simulator()
    lock = RwLock(sim)
    spans = []

    def reader(rid):
        yield lock.read_acquire()
        start = sim.now
        yield sim.timeout(100)
        lock.read_release()
        spans.append((rid, start, sim.now))

    for rid in range(3):
        sim.process(reader(rid))
    sim.run()
    # All three overlapped completely.
    assert spans == [(0, 0, 100), (1, 0, 100), (2, 0, 100)]


def test_writers_exclusive():
    sim = Simulator()
    lock = RwLock(sim)
    spans = []

    def writer(wid):
        yield lock.write_acquire()
        start = sim.now
        yield sim.timeout(100)
        lock.write_release()
        spans.append((wid, start, sim.now))

    for wid in range(3):
        sim.process(writer(wid))
    sim.run()
    assert spans == [(0, 0, 100), (1, 100, 200), (2, 200, 300)]


def test_writer_waits_for_readers_then_blocks_new_readers():
    sim = Simulator()
    lock = RwLock(sim)
    log = []

    def early_reader():
        yield lock.read_acquire()
        yield sim.timeout(100)
        lock.read_release()
        log.append(("r1-done", sim.now))

    def writer():
        yield sim.timeout(10)
        yield lock.write_acquire()
        log.append(("w-start", sim.now))
        yield sim.timeout(50)
        lock.write_release()

    def late_reader():
        yield sim.timeout(20)  # arrives while the writer queues
        yield lock.read_acquire()
        log.append(("r2-start", sim.now))
        lock.read_release()

    sim.process(early_reader())
    sim.process(writer())
    sim.process(late_reader())
    sim.run()
    # Writer starts only after the early reader drains; the late reader
    # queued behind the writer (no writer starvation).
    assert log == [("r1-done", 100), ("w-start", 100), ("r2-start", 150)]


def test_release_without_hold_rejected():
    sim = Simulator()
    lock = RwLock(sim)
    with pytest.raises(SimulationError):
        lock.read_release()
    with pytest.raises(SimulationError):
        lock.write_release()


def test_state_properties():
    sim = Simulator()
    lock = RwLock(sim)
    lock.read_acquire()
    lock.read_acquire()
    sim.run()
    assert lock.readers == 2 and not lock.write_held
    lock.read_release()
    lock.read_release()
    lock.write_acquire()
    sim.run()
    assert lock.write_held and lock.readers == 0


def test_mixed_stress_never_overlaps_writers_with_anyone():
    sim = Simulator()
    lock = RwLock(sim)
    active = {"readers": 0, "writer": False}

    def reader(delay):
        yield sim.timeout(delay)
        yield lock.read_acquire()
        assert not active["writer"]
        active["readers"] += 1
        yield sim.timeout(30)
        active["readers"] -= 1
        lock.read_release()

    def writer(delay):
        yield sim.timeout(delay)
        yield lock.write_acquire()
        assert not active["writer"] and active["readers"] == 0
        active["writer"] = True
        yield sim.timeout(40)
        active["writer"] = False
        lock.write_release()

    for i in range(10):
        sim.process(reader(i * 17))
        sim.process(writer(i * 23 + 5))
    sim.run()
    assert active == {"readers": 0, "writer": False}
