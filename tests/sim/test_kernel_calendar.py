"""Unit tests for the two-tier calendar kernel.

The flat-array kernel routes every insert to one of three tiers — the
now-deque (delay 0), the 4096-slot bucketed wheel (delay within the
horizon), or the overflow heap (beyond it) — and dispatches whole
timestamps as batches.  These tests pin the tier routing, the ordering
rules at tier boundaries (overflow entries migrating into the wheel must
not be overtaken by same-timestamp wheel inserts), the ``step_batch``
semantics, the :class:`PooledTimer` rearm/release contract, AnyOf loser
detachment, and the derived telemetry arithmetic — on both kernels where
the behaviour is shared.
"""

import pytest

from repro.sim import Simulator, kernel_snapshot
from repro.sim.core import _WHEEL_SLOTS
from repro.sim.events import PooledTimer, SimulationError
from repro.sim.resources import Gate


def both_kernels(test):
    return pytest.mark.parametrize("legacy", [False, True],
                                   ids=["batched", "legacy"])(test)


def fired(log):
    def cb(tag):
        return lambda ev: log.append(tag)
    return cb


# ---------------------------------------------------------------------------
# tier routing


def test_inserts_route_to_the_right_tier():
    sim = Simulator()
    sim.timeout(0)
    sim.timeout(5)
    sim.timeout(_WHEEL_SLOTS - 1)   # last wheel-reachable delay at t=0
    sim.timeout(_WHEEL_SLOTS)       # first overflow delay
    sim.timeout(10_000_000)
    assert len(sim._now_q) == 1
    assert sim.k_wheel_hits == 2
    assert sim.k_heap_hits == 2
    ev = sim.event()
    ev.succeed()
    assert len(sim._now_q) == 2  # wakes take the now-deque fast path


def test_wheel_horizon_advances_with_the_clock():
    sim = Simulator()
    sim.timeout(3_000)
    sim.run(until=3_000)
    # From now=3000 the wheel covers [3000, 3000+4096); a 4000ns delay
    # lands at 7000 < 7096 — wheel, not overflow.
    before = sim.k_wheel_hits
    sim.timeout(4_000)
    assert sim.k_wheel_hits == before + 1


@both_kernels
def test_overflow_migration_keeps_seq_order(legacy):
    """An overflow entry and a later wheel insert for the same timestamp
    must dispatch in insertion order even though they travelled through
    different tiers."""
    sim = Simulator(legacy=legacy)
    log = []
    tag = fired(log)
    t = _WHEEL_SLOTS + 50
    sim.timeout(t).callbacks.append(tag("overflow-first"))

    def late_inserter():
        yield sim.timeout(100)
        # now=100: t is within [100, 100+4096) -> wheel insert.
        sim.timeout(t - 100).callbacks.append(tag("wheel-second"))

    sim.process(late_inserter(), name="late")
    sim.run()
    assert log == ["overflow-first", "wheel-second"]


@both_kernels
def test_now_deque_preserves_fifo_and_runs_before_time_advances(legacy):
    sim = Simulator(legacy=legacy)
    log = []
    tag = fired(log)

    def root(ev):
        log.append("root")
        a = sim.event()
        a.callbacks.append(tag("a"))
        a.succeed()
        b = sim.event()
        b.callbacks.append(tag("b"))
        b.succeed()

    sim.timeout(10).callbacks.append(root)
    sim.timeout(10).callbacks.append(tag("sibling"))
    sim.timeout(11).callbacks.append(tag("next-instant"))
    sim.run()
    # Cascaded wakes at t=10 dispatch after the staged slot but before
    # t=11, in trigger order.
    assert log == ["root", "sibling", "a", "b", "next-instant"]


# ---------------------------------------------------------------------------
# step_batch semantics


def test_step_batch_dispatches_one_whole_timestamp():
    sim = Simulator()
    log = []
    tag = fired(log)
    for i in range(3):
        sim.timeout(7).callbacks.append(tag(f"t7.{i}"))
    sim.timeout(9).callbacks.append(tag("t9"))
    n = sim.step_batch()
    assert n == 3
    assert sim.now == 7
    assert log == ["t7.0", "t7.1", "t7.2"]
    assert sim.step_batch() == 1
    assert sim.now == 9


def test_step_batch_counts_cascading_wakes():
    sim = Simulator()
    hits = []

    def chainer(ev):
        if len(hits) < 4:
            nxt = sim.event()
            nxt.callbacks.append(chainer)
            nxt.succeed()
        hits.append(1)

    sim.timeout(5).callbacks.append(chainer)
    assert sim.step_batch() == 5  # the timeout + four chained wakes
    assert sim.k_dispatched == 5


def test_step_interleaves_with_step_batch():
    # step() must drain the staged batch one event at a time without
    # losing ordering relative to a later step_batch().
    sim = Simulator()
    log = []
    tag = fired(log)
    for i in range(3):
        sim.timeout(4).callbacks.append(tag(i))
    sim.step()
    assert log == [0] and sim.now == 4
    assert sim.step_batch() == 2
    assert log == [0, 1, 2]


def test_peek_reports_next_timestamp_on_both_kernels():
    for legacy in (False, True):
        sim = Simulator(legacy=legacy)
        assert sim.peek() is None
        sim.timeout(42)
        assert sim.peek() == 42
        sim.run()
        assert sim.peek() is None


@both_kernels
def test_run_until_time_stops_inclusively(legacy):
    sim = Simulator(legacy=legacy)
    log = []
    tag = fired(log)
    sim.timeout(10).callbacks.append(tag("at10"))
    sim.timeout(20).callbacks.append(tag("at20"))
    sim.run(until=15)
    assert log == ["at10"]
    assert sim.now == 15
    sim.run(until=20)
    assert log == ["at10", "at20"]


@both_kernels
def test_run_until_event_stops_at_processing(legacy):
    sim = Simulator(legacy=legacy)

    def proc():
        yield sim.timeout(30)
        return "done"

    p = sim.process(proc(), name="p")
    sim.timeout(100)  # later traffic must not be consumed
    assert sim.run(until=p) == "done"
    assert sim.now == 30


# ---------------------------------------------------------------------------
# PooledTimer contract


@both_kernels
def test_pooled_timer_rearm_cycle(legacy):
    sim = Simulator(legacy=legacy)
    timer = sim.pooled_timer()
    assert timer.idle
    waits = []

    def loop():
        for _ in range(5):
            yield timer.rearm(100)
            waits.append(sim.now)

    sim.process(loop(), name="loop")
    sim.run()
    assert waits == [100, 200, 300, 400, 500]
    assert timer.idle  # released: processed and rearmable again
    assert sim.k_timer_rearms == 5


@both_kernels
def test_pooled_timer_rearm_in_flight_raises(legacy):
    sim = Simulator(legacy=legacy)
    timer = sim.pooled_timer()
    timer.rearm(50)
    with pytest.raises(SimulationError):
        timer.rearm(50)
    sim.run()
    timer.rearm(50)  # idle again after processing
    sim.run()


def test_pooled_timer_zero_delay_uses_now_queue():
    sim = Simulator()
    timer = sim.pooled_timer()
    timer.rearm(0)
    assert len(sim._now_q) == 1
    assert sim.k_wheel_hits == 0 and sim.k_heap_hits == 0


@both_kernels
def test_pooled_timer_overflow_delay(legacy):
    sim = Simulator(legacy=legacy)
    timer = sim.pooled_timer()
    seen = []

    def loop():
        yield timer.rearm(10_000_000)
        seen.append(sim.now)

    sim.process(loop(), name="loop")
    sim.run()
    assert seen == [10_000_000]


def test_pooled_timer_is_event_subclass():
    sim = Simulator()
    assert isinstance(sim.pooled_timer(), PooledTimer)
    assert isinstance(sim.pooled_timer(), type(sim.event()))


# ---------------------------------------------------------------------------
# AnyOf loser detachment


@both_kernels
def test_anyof_losers_drop_condition_callback(legacy):
    sim = Simulator(legacy=legacy)
    slow = sim.timeout(1_000)

    def racer():
        for _ in range(10):
            yield sim.any_of([sim.timeout(10), slow])

    sim.process(racer(), name="racer")
    sim.run(until=500)
    # Ten races lost by `slow` must not leave ten stale callbacks behind.
    assert slow.callbacks == []


def test_anyof_does_not_subscribe_after_decided():
    sim = Simulator()
    done = sim.event()
    done.succeed("v")
    sim.run()  # process it
    late = sim.timeout(50)
    cond = sim.any_of([done, late])
    assert cond.triggered
    assert late.callbacks == []  # never subscribed: decided by `done`


@both_kernels
def test_allof_gathers_all_values(legacy):
    sim = Simulator(legacy=legacy)
    t1, t2 = sim.timeout(5, "a"), sim.timeout(9, "b")

    def proc():
        got = yield sim.all_of([t1, t2])
        return [got[t1], got[t2]]

    p = sim.process(proc(), name="p")
    assert sim.run(until=p) == ["a", "b"]


# ---------------------------------------------------------------------------
# Gate: shared pending event

@both_kernels
def test_gate_shares_one_event_across_waiters(legacy):
    sim = Simulator(legacy=legacy)
    gate = Gate(sim)
    ev1, ev2 = gate.wait(), gate.wait()
    assert ev1 is ev2  # one occurrence, one event
    woken = []

    def waiter(idx, ev):
        got = yield ev
        woken.append((idx, got, sim.now))

    sim.process(waiter(0, ev1), name="w0")
    sim.process(waiter(1, ev2), name="w1")

    def firer():
        yield sim.timeout(25)
        assert gate.fire("sig") == 2

    sim.process(firer(), name="f")
    sim.run()
    assert woken == [(0, "sig", 25), (1, "sig", 25)]


# ---------------------------------------------------------------------------
# derived telemetry


def test_kernel_snapshot_derives_now_hits():
    sim = Simulator()
    timer = sim.pooled_timer()

    def loop():
        for _ in range(4):
            yield timer.rearm(100)      # wheel x4 (rearms, not scheduled)
        for _ in range(3):
            ev = sim.event()
            ev.succeed()                # now-queue x3
            yield ev
        yield sim.timeout(10_000_000)   # overflow heap x1

    p = sim.process(loop(), name="loop")
    sim.run()
    snap = kernel_snapshot(sim)
    assert snap["timer_rearms"] == 4
    assert snap["wheel_hits"] == 4  # the rearms
    assert snap["heap_hits"] == 1   # the far timeout
    # scheduled = k_scheduled + rearms; now = scheduled - wheel - heap.
    assert snap["events_scheduled"] == sim.k_scheduled + 4
    assert snap["now_hits"] == (snap["events_scheduled"]
                                - snap["wheel_hits"] - snap["heap_hits"])
    # 3 explicit wakes + the process start and completion events all land
    # in the now tier.
    assert snap["now_hits"] == 3 + 2
    assert snap["events_dispatched"] == sim.k_dispatched
    assert p.processed


def test_kernel_snapshot_rates_sum_to_one():
    sim = Simulator()
    for i in range(10):
        sim.timeout(i * 7)
    sim.run()
    snap = kernel_snapshot(sim)
    assert snap["now_rate"] + snap["wheel_rate"] + snap["heap_rate"] == (
        pytest.approx(1.0))


def test_peak_calendar_tracks_resident_events():
    sim = Simulator()
    for i in range(100):
        sim.timeout(50 + i)
    sim.run()
    assert kernel_snapshot(sim)["peak_calendar"] == 100
