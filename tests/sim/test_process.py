"""Process semantics: suspension, return values, interrupts, errors."""

import pytest

from repro.sim import Interrupt, Simulator, SimulationError, UnhandledProcessError


def test_process_runs_and_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(10)
        yield sim.timeout(20)
        return 99

    p = sim.process(proc())
    sim.run()
    assert p.processed and p.ok and p.value == 99
    assert sim.now == 30
    assert not p.is_alive


def test_process_receives_event_value():
    sim = Simulator()
    seen = []

    def proc():
        v = yield sim.timeout(5, value="hello")
        seen.append(v)

    sim.process(proc())
    sim.run()
    assert seen == ["hello"]


def test_process_waiting_on_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(40)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        return result

    p = sim.process(parent())
    assert sim.run(until=p) == "child-result"


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()
    done = sim.timeout(1, value="v")
    sim.run()

    def proc():
        v = yield done
        return v

    p = sim.process(proc())
    sim.run()
    assert p.value == "v"
    assert sim.now == 1  # no extra time consumed


def test_deep_chain_of_processed_events_no_recursion_blowup():
    sim = Simulator()
    pre = [sim.timeout(0, value=i) for i in range(5000)]
    sim.run()

    def proc():
        total = 0
        for ev in pre:
            total += yield ev
        return total

    p = sim.process(proc())
    sim.run()
    assert p.value == sum(range(5000))


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def bad():
        yield sim.timeout(5)
        raise KeyError("oops")

    def waiter():
        try:
            yield sim.process(bad())
        except KeyError as e:
            return f"caught {e}"

    p = sim.process(waiter())
    assert "caught" in sim.run(until=p)


def test_unwaited_process_exception_crashes_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(5)
        raise KeyError("oops")

    sim.process(bad())
    with pytest.raises(UnhandledProcessError):
        sim.run()


def test_yield_non_event_is_an_error_in_the_process():
    sim = Simulator()
    caught = []

    def proc():
        try:
            yield 123
        except SimulationError as e:
            caught.append(str(e))

    sim.process(proc())
    sim.run()
    assert caught and "non-event" in caught[0]


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1_000_000)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    p = sim.process(sleeper())

    def killer():
        yield sim.timeout(100)
        p.interrupt("die")

    sim.process(killer())
    sim.run()
    assert log == [(100, "die")]


def test_interrupted_process_can_keep_running():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(1_000_000)
        except Interrupt:
            pass
        yield sim.timeout(50)
        return "survived"

    p = sim.process(sleeper())

    def killer():
        yield sim.timeout(100)
        p.interrupt()

    sim.process(killer())
    assert sim.run(until=p) == "survived"
    assert sim.now == 150


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupt_detaches_from_target():
    # After an interrupt, the original awaited event firing later must not
    # resume the process a second time.
    sim = Simulator()
    resumed = []

    def sleeper():
        try:
            yield sim.timeout(200)
        except Interrupt:
            resumed.append("interrupted")
        yield sim.timeout(500)
        resumed.append("after")

    p = sim.process(sleeper())

    def killer():
        yield sim.timeout(100)
        p.interrupt()

    sim.process(killer())
    sim.run()
    assert resumed == ["interrupted", "after"]
    assert sim.now == 600


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_active_process_visible_during_execution():
    sim = Simulator()
    observed = []

    def proc():
        observed.append(sim.active_process)
        yield sim.timeout(1)

    p = sim.process(proc())
    sim.run()
    assert observed == [p]
    assert sim.active_process is None
