"""Kernel-level tests: event lifecycle, clock, ordering, determinism."""

import pytest

from repro.sim import (
    Simulator,
    SimulationError,
    UnhandledProcessError,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_timeout_advances_clock():
    sim = Simulator()
    t = sim.timeout(1500)
    sim.run()
    assert sim.now == 1500
    assert t.processed and t.ok


def test_timeout_value_passthrough():
    sim = Simulator()
    t = sim.timeout(10, value="payload")
    sim.run()
    assert t.value == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(100)
    sim.timeout(300)
    sim.run(until=200)
    assert sim.now == 200


def test_run_until_time_with_empty_calendar_still_advances():
    sim = Simulator()
    sim.run(until=5000)
    assert sim.now == 5000


def test_run_until_past_raises():
    sim = Simulator()
    sim.timeout(100)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=50)


def test_event_succeed_and_value():
    sim = Simulator()
    ev = sim.event()
    assert not ev.triggered
    ev.succeed(42)
    assert ev.triggered and not ev.processed
    sim.run()
    assert ev.processed and ev.ok and ev.value == 42


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unhandled_failure_crashes_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("boom"))
    with pytest.raises(UnhandledProcessError):
        sim.run()


def test_defused_failure_does_not_crash():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("boom"))
    ev.defuse()
    sim.run()
    assert ev.processed and not ev.ok


def test_fifo_order_within_same_timestamp():
    sim = Simulator()
    order = []
    for i in range(10):
        ev = sim.timeout(100)
        ev.callbacks.append(lambda e, i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_events_processed_in_time_order():
    sim = Simulator()
    order = []
    for delay in (500, 100, 300, 200, 400):
        ev = sim.timeout(delay)
        ev.callbacks.append(lambda e, d=delay: order.append(d))
    sim.run()
    assert order == [100, 200, 300, 400, 500]


def test_step_on_empty_calendar_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.timeout(700)
    sim.timeout(300)
    assert sim.peek() == 300


def test_run_until_event_returns_its_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(50)
        return "done"

    p = sim.process(proc())
    assert sim.run(until=p) == "done"
    assert sim.now == 50


def test_run_until_event_that_never_fires_raises():
    sim = Simulator()
    ev = sim.event()
    sim.timeout(10)
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_any_of_fires_on_first():
    sim = Simulator()
    a = sim.timeout(100, value="a")
    b = sim.timeout(200, value="b")
    cond = sim.any_of([a, b])
    sim.run(until=cond)
    assert sim.now == 100
    assert cond.value == {a: "a"}


def test_all_of_waits_for_every_event():
    sim = Simulator()
    a = sim.timeout(100, value="a")
    b = sim.timeout(200, value="b")
    cond = sim.all_of([a, b])
    result = sim.run(until=cond)
    assert sim.now == 200
    assert result == {a: "a", b: "b"}


def test_empty_all_of_fires_immediately():
    sim = Simulator()
    cond = sim.all_of([])
    assert cond.triggered


def test_condition_propagates_failure():
    sim = Simulator()
    a = sim.event()
    b = sim.timeout(100)
    cond = sim.all_of([a, b])
    a.fail(ValueError("bad"))
    with pytest.raises(ValueError):
        sim.run(until=cond)


def test_cross_simulator_event_rejected():
    sim1, sim2 = Simulator(), Simulator()
    ev = sim2.timeout(1)
    with pytest.raises(SimulationError):
        sim1.any_of([ev])


def test_determinism_identical_runs():
    def build():
        sim = Simulator()
        log = []

        def worker(wid, period):
            for _ in range(5):
                yield sim.timeout(period)
                log.append((sim.now, wid))

        for wid, period in enumerate((70, 70, 110)):
            sim.process(worker(wid, period))
        sim.run()
        return log

    assert build() == build()
