"""Instrument and random-stream tests."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim import Counter, MetricSet, Simulator, Tally, TimeWeighted
from repro.sim.rng import StreamRegistry


def test_counter_add_and_reset():
    c = Counter("ops")
    c.add()
    c.add(5)
    assert c.value == 6
    c.reset()
    assert c.value == 0


def test_tally_basic_stats():
    t = Tally("lat")
    for v in (10.0, 20.0, 30.0):
        t.observe(v)
    assert t.count == 3
    assert t.mean == pytest.approx(20.0)
    assert t.min == 10.0 and t.max == 30.0
    assert t.percentile(50) == pytest.approx(20.0)


def test_tally_empty_is_nan():
    t = Tally("lat")
    assert math.isnan(t.mean)
    assert math.isnan(t.percentile(99))
    assert math.isnan(t.min) and math.isnan(t.max)


def test_tally_std():
    t = Tally("x")
    for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
        t.observe(v)
    assert t.std == pytest.approx(np.std([2, 4, 4, 4, 5, 5, 7, 9], ddof=1))


def test_tally_reservoir_mean_stays_exact_beyond_capacity():
    t = Tally("x", max_samples=100)
    for v in range(1000):
        t.observe(float(v))
    assert t.count == 1000
    assert t.mean == pytest.approx(499.5)
    assert len(t._samples) == 100
    # Percentiles are approximate but must stay inside the observed range.
    assert 0.0 <= t.percentile(50) <= 999.0


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False), min_size=1, max_size=200))
def test_tally_matches_numpy_moments(values):
    t = Tally("h")
    for v in values:
        t.observe(v)
    assert t.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)
    assert t.min == min(values) and t.max == max(values)


def test_time_weighted_average():
    sim = Simulator()
    g = TimeWeighted("busy", sim)
    events = [(100, 1.0), (300, 0.0), (400, 1.0)]

    def driver():
        for when, val in events:
            yield sim.timeout(when - sim.now)
            g.set(val)

    sim.process(driver())
    sim.run(until=500)
    # busy during [100,300) and [400,500): 300 of 500 ns.
    assert g.time_average() == pytest.approx(300 / 500)


def test_time_weighted_add_and_reset():
    sim = Simulator()
    g = TimeWeighted("q", sim, initial=2.0)
    sim.run(until=100)
    g.add(3.0)
    assert g.value == 5.0
    g.reset()
    sim.run(until=200)
    assert g.time_average() == pytest.approx(5.0)


def test_metricset_lazy_instruments_and_snapshot():
    sim = Simulator()
    m = MetricSet(sim)
    m.counter("ops").add(7)
    m.tally("lat").observe(4.0)
    m.gauge("busy").set(1.0)
    sim.run(until=10)
    snap = m.snapshot()
    assert snap["ops"] == 7.0
    assert snap["lat.mean"] == pytest.approx(4.0)
    assert snap["lat.count"] == 1.0
    assert "busy.avg" in snap
    # Same name returns the same instrument.
    assert m.counter("ops") is m.counter("ops")
    m.reset()
    assert m.counter("ops").value == 0


def test_metricset_gauge_without_sim_rejected():
    m = MetricSet()
    with pytest.raises(ValueError):
        m.gauge("x")


def test_stream_registry_deterministic_across_instances():
    a = StreamRegistry(7).stream("zipf").integers(0, 1 << 30, size=8)
    b = StreamRegistry(7).stream("zipf").integers(0, 1 << 30, size=8)
    assert (a == b).all()


def test_stream_registry_independent_names():
    reg = StreamRegistry(7)
    a = reg.stream("alpha").integers(0, 1 << 30, size=8)
    b = reg.stream("beta").integers(0, 1 << 30, size=8)
    assert not (a == b).all()


def test_stream_registry_insertion_order_invariance():
    r1 = StreamRegistry(3)
    r1.stream("first")
    x1 = r1.stream("second").integers(0, 1 << 30, size=4)
    r2 = StreamRegistry(3)
    x2 = r2.stream("second").integers(0, 1 << 30, size=4)
    assert (x1 == x2).all()


def test_stream_registry_seed_matters():
    a = StreamRegistry(1).stream("s").integers(0, 1 << 30, size=8)
    b = StreamRegistry(2).stream("s").integers(0, 1 << 30, size=8)
    assert not (a == b).all()


def test_stream_registry_reset():
    reg = StreamRegistry(9)
    a = reg.stream("s").integers(0, 1 << 30, size=4)
    reg.reset()
    b = reg.stream("s").integers(0, 1 << 30, size=4)
    assert (a == b).all()
