"""Golden determinism tests: batched kernel == seed kernel, bit for bit.

The seed heapq event loop survives behind ``Simulator(legacy=True)`` as
the ordering oracle.  These tests run the same workloads on both
kernels with schedule tracing on and assert the BLAKE2 dispatch digests
match exactly — every event fires at the same time, in the same order,
with the same outcome — so the flat-array calendar is a pure speedup,
not a behaviour change.

Two golden workloads:

* a mixed calendar storm (pooled timers, zero-delay wakes, AnyOf races,
  overflow-heap far timers) exercising every insertion path at once;
* a full chaos soak (fault storm against a replicated HA cluster),
  which drags the whole middleware — NIC batching, SWAT failover,
  reclaim timers — through both kernels and must produce identical
  verdict rows and injection-log hashes.

Plus the BENCH_chaos replay identity re-asserted on the batched kernel.
"""

from repro.chaos import harness as chaos_harness
from repro.chaos.harness import run_soak
from repro.core.api import HydraCluster
from repro.sim import Simulator

_SMALL = dict(scale=0.05, n_keys=12, n_clients=2)


# ---------------------------------------------------------------------------
# mixed-workload golden digest


def _build_mixed(sim: Simulator) -> None:
    """Every calendar path in one pot: now-queue (zero-delay wakes and
    pooled rearm(0)), wheel (near timers), overflow heap (far timers),
    AnyOf losers, and plain process timeouts."""
    horizon = 60_000

    def near(period: int):
        timer = sim.pooled_timer()
        while sim.now < horizon:
            yield timer.rearm(period)

    def far(period: int):
        while sim.now < horizon:
            yield sim.timeout(period)

    def waker(idx: int):
        while sim.now < horizon:
            fast = sim.event()
            fast.succeed(idx)
            yield sim.any_of([fast, sim.timeout(700)])
            yield sim.timeout(300)

    def pulse():
        # Callback-driven sweep: recurring pooled timer fanning out
        # twelve zero-delay pooled wakes per tick.
        timer = sim.pooled_timer()
        rearms = [sim.pooled_timer().rearm for _ in range(12)]

        def tick(_ev):
            if sim.now < horizon:
                timer.rearm(800)
                timer.callbacks.append(tick)
            for rearm in rearms:
                rearm(0)

        timer.rearm(800)
        timer.callbacks.append(tick)

    for i, period in enumerate((120, 250, 400, 650)):
        sim.process(near(period), name=f"near{i}")
    for i in range(3):
        sim.process(far(5_000 + 1_700 * i), name=f"far{i}")
    for i in range(4):
        sim.process(waker(i), name=f"waker{i}")
    pulse()


def _mixed_digest(legacy: bool) -> tuple[str, int, int]:
    sim = Simulator(legacy=legacy)
    sim.trace_schedule()
    _build_mixed(sim)
    sim.run(until=60_000)
    return sim.schedule_digest(), sim.now, sim.k_dispatched


def test_mixed_workload_digest_matches_seed_kernel():
    legacy = _mixed_digest(legacy=True)
    batched = _mixed_digest(legacy=False)
    assert batched == legacy
    # and the run was non-trivial — thousands of events, not a no-op
    assert legacy[2] > 5_000


def test_mixed_workload_digest_is_stable_across_reruns():
    assert _mixed_digest(legacy=False) == _mixed_digest(legacy=False)


def test_digest_detects_reordering():
    """Sanity: the digest is not blind — a different schedule hashes
    differently, so digest equality above actually proves something."""

    def one(extra_delay: int) -> str:
        sim = Simulator()
        sim.trace_schedule()

        def proc():
            yield sim.timeout(10)
            yield sim.timeout(10 + extra_delay)

        sim.process(proc(), name="p")
        sim.run()
        return sim.schedule_digest()

    assert one(0) != one(1)


# ---------------------------------------------------------------------------
# chaos-storm golden row + digest


def _soak_on_kernel(monkeypatch, legacy: bool) -> tuple[dict, str]:
    """Run one storm cell with the cluster's Simulator pinned to one
    kernel (``run_soak`` builds its own cluster, so the kernel choice is
    injected by patching the harness's HydraCluster symbol; the real
    class is taken from its home module, not from the possibly-patched
    harness namespace)."""
    sims: list[Simulator] = []

    def make_cluster(*args, **kwargs):
        sim = Simulator(legacy=legacy)
        sim.trace_schedule()
        sims.append(sim)
        kwargs["sim"] = sim
        return HydraCluster(*args, **kwargs)

    monkeypatch.setattr(chaos_harness, "HydraCluster", make_cluster)
    row = run_soak("mixed", 71, **_SMALL)
    assert len(sims) == 1
    assert sims[0].k_dispatched > 0  # the traced sim is the one that ran
    return row, sims[0].schedule_digest()


def test_chaos_storm_reproduces_seed_kernel_exactly(monkeypatch):
    row_legacy, digest_legacy = _soak_on_kernel(monkeypatch, legacy=True)
    row_batched, digest_batched = _soak_on_kernel(monkeypatch, legacy=False)
    # Full verdict rows — ops, errors, latency percentiles, injection
    # hash — are pure functions of the dispatch schedule; they must be
    # equal field-for-field, floats included.
    assert row_batched == row_legacy
    # And the schedules themselves are bit-identical, event by event.
    assert digest_batched == digest_legacy
    assert row_legacy["injected_faults"] > 0  # the storm actually raged


def test_bench_chaos_replay_identity_on_batched_kernel():
    """Re-assert the BENCH_chaos determinism column's contract on the
    default (batched) kernel: same seed, same storm, same verdict."""
    a = run_soak("torn", 11, **_SMALL)
    b = run_soak("torn", 11, **_SMALL)
    assert a == b
    assert a["schedule_hash"] == b["schedule_hash"]
    assert a["injected_faults"] > 0
