"""SWAT: leader election, failover promotion, node join, no data loss."""

import pytest

from repro import HydraCluster, SimConfig
from repro.core import RequestTimeout
from repro.protocol import Status


def ha_cluster(replicas=1, shards_per_server=1, **hydra):
    cfg = SimConfig().with_overrides(
        replication={"replicas": replicas},
        hydra={"op_timeout_ns": 5_000_000, **hydra},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=shards_per_server)
    ha = cluster.enable_ha()
    cluster.start()
    return cluster, ha


def settle(cluster, ns=100_000_000):
    cluster.sim.run(until=cluster.sim.now + ns)


def test_leader_elected():
    cluster, ha = ha_cluster()
    settle(cluster, 20_000_000)
    assert ha.swat.leader_id is not None


def test_shard_agents_register():
    cluster, ha = ha_cluster(shards_per_server=2)
    settle(cluster, 20_000_000)
    for shard_id in cluster.routing.shard_ids():
        assert ha.zk.node_exists(f"/shards/{shard_id}")
        assert ha.zk.node_exists(f"/routing/{shard_id}")


def test_failover_promotes_secondary_without_data_loss():
    cluster, ha = ha_cluster()
    client = cluster.client()
    shard_id = cluster.routing.shard_ids()[0]
    old_shard = cluster.routing.resolve(shard_id)
    acked = {}

    def phase1():
        for i in range(30):
            key = f"k{i}".encode()
            status = yield from client.put(key, f"v{i}".encode())
            if status is Status.OK:
                acked[key] = f"v{i}".encode()

    cluster.run(phase1())
    settle(cluster, 10_000_000)  # let replication drain
    cluster.servers[0].kill()
    # Session expiry (2 s) + reaction time.
    settle(cluster, 4_000_000_000)
    new_shard = cluster.routing.resolve(shard_id)
    assert new_shard is not old_shard and new_shard.alive
    assert ha.swat.failovers == 1
    # Every acknowledged write survived the failure.
    promoted = new_shard.store.dump()
    for key, value in acked.items():
        assert promoted[key] == value

    def phase2():
        # Clients route to the promoted shard transparently.
        for key, value in list(acked.items())[:5]:
            got = yield from client.get(key)
            assert got == value
        assert (yield from client.put(b"post-failover", b"ok")) is Status.OK

    cluster.run(phase2())


def test_failover_with_two_replicas_rewires_remaining():
    cluster, ha = ha_cluster(replicas=2)
    client = cluster.client()
    shard_id = cluster.routing.shard_ids()[0]

    def load():
        for i in range(20):
            yield from client.put(f"k{i}".encode(), b"x" * 16)

    cluster.run(load())
    settle(cluster, 10_000_000)
    cluster.servers[0].kill()
    settle(cluster, 4_000_000_000)
    assert ha.swat.failovers == 1
    assert len(cluster.secondaries[shard_id]) == 1
    assert shard_id in cluster.replicators
    new_shard = cluster.routing.resolve(shard_id)

    def write_more():
        for i in range(10):
            yield from client.put(f"post{i}".encode(), b"y" * 8)

    cluster.run(write_more())
    settle(cluster, 20_000_000)
    # The re-attached secondary tracks the new primary.
    sec = cluster.secondaries[shard_id][0]
    assert sec.store.dump() == new_shard.store.dump()


def test_client_times_out_then_recovers():
    # Single-attempt mode (deadline_us=0) preserves the pre-retry
    # contract: one attempt, one RequestTimeout, no replay.
    cluster, ha = ha_cluster()
    client = cluster.client(deadline_us=0)

    def before():
        yield from client.put(b"k", b"v")

    cluster.run(before())
    settle(cluster, 10_000_000)
    cluster.servers[0].kill()

    def during():
        with pytest.raises(RequestTimeout):
            yield from client.get(b"k")

    cluster.run(during())
    settle(cluster, 4_000_000_000)

    def after():
        assert (yield from client.get(b"k")) == b"v"

    cluster.run(after())


def test_client_rides_through_failover():
    # Default deadline budget: a GET issued mid-blackout replays across
    # the SWAT promotion and completes without any client-visible error.
    cluster, ha = ha_cluster()
    client = cluster.client()

    def before():
        yield from client.put(b"k", b"v")

    cluster.run(before())
    settle(cluster, 10_000_000)
    cluster.servers[0].kill()

    def during():
        assert (yield from client.get(b"k")) == b"v"

    cluster.run(during())
    settle(cluster, 20_000_000)  # let SWAT finish republishing
    assert ha.swat.failovers == 1
    assert cluster.routing.generation >= 1
    assert cluster.metrics.counter("client.retries").value >= 1
    assert cluster.metrics.counter("client.failovers").value >= 1
    assert cluster.metrics.tally("client.failover_latency_ns").count >= 1


def test_failure_without_replica_counts_data_loss():
    cluster, ha = ha_cluster(replicas=0)
    settle(cluster, 20_000_000)
    cluster.servers[0].kill()
    settle(cluster, 4_000_000_000)
    assert cluster.metrics.counter("swat.data_loss").value >= 1
    assert ha.swat.failovers == 0


def test_leader_death_triggers_reelection_and_failover_still_works():
    cluster, ha = ha_cluster()
    client = cluster.client()

    def load():
        for i in range(10):
            yield from client.put(f"k{i}".encode(), b"v")

    cluster.run(load())
    settle(cluster, 20_000_000)
    first_leader = ha.swat.leader_id
    ha.swat.kill_member(first_leader)
    settle(cluster, 4_000_000_000)
    assert ha.swat.leader_id != first_leader
    cluster.servers[0].kill()
    settle(cluster, 4_000_000_000)
    assert ha.swat.failovers == 1


def test_node_join_migrates_keys():
    cluster, ha = ha_cluster(replicas=0, shards_per_server=2)
    client = cluster.client()
    n = 200
    expected = {}

    def load():
        for i in range(n):
            key, value = f"k{i}".encode(), f"v{i}".encode()
            yield from client.put(key, value)
            expected[key] = value

    cluster.run(load())
    before_ids = set(cluster.ring.members)
    join = cluster.sim.process(ha.swat.join_server(n_shards=2))
    cluster.sim.run(until=join)
    assert len(cluster.ring.members) == 4
    new_ids = set(cluster.ring.members) - before_ids
    moved = sum(len(cluster.routing.resolve(sid).store)
                for sid in new_ids)
    assert moved > 0  # some arcs moved to the new server
    total = sum(len(cluster.routing.resolve(sid).store)
                for sid in cluster.ring.members)
    assert total == n

    def verify():
        for key, value in expected.items():
            assert (yield from client.get(key)) == value

    cluster.run(verify())
