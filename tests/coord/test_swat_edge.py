"""SWAT edge cases: session flaps, join+failover interplay, agent retry."""


from repro import HydraCluster, SimConfig
from repro.coord.swat import SHARDS_PATH, ShardAgent
from repro.protocol import Status

MS = 1_000_000
S = 1_000_000_000


def ha_cluster(replicas=1, shards=1):
    cfg = SimConfig().with_overrides(
        replication={"replicas": replicas},
        hydra={"op_timeout_ns": 5 * MS},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=shards)
    ha = cluster.enable_ha()
    cluster.start()
    return cluster, ha


def test_transient_session_flap_reregisters_without_promotion():
    """An agent session expiry with a healthy shard must NOT promote."""
    cluster, ha = ha_cluster()
    cluster.sim.run(until=30 * MS)
    shard_id = cluster.routing.shard_ids()[0]
    original = cluster.routing.resolve(shard_id)
    # Kill only the agent's ZK session (simulate a GC pause / flap).
    agent = ha.agents[0]
    ha.zk._expire_session(ha.zk._sessions[agent.session.session_id])
    cluster.sim.run(until=cluster.sim.now + 4 * S)
    # Same shard object still routes; no failover counted.
    assert cluster.routing.resolve(shard_id) is original
    assert ha.swat.failovers == 0
    assert ha.zk.node_exists(f"{SHARDS_PATH}/{shard_id}")

    # And the shard still serves.
    client = cluster.client()

    def app():
        assert (yield from client.put(b"k", b"v")) is Status.OK

    cluster.run(app())


def test_agent_waits_out_lingering_ephemeral():
    """A replacement agent must wait for the stale znode, then register."""
    cluster, ha = ha_cluster()
    cluster.sim.run(until=30 * MS)
    shard = cluster.routing.resolve(cluster.routing.shard_ids()[0])
    # Start a second agent while the first one's znode still exists.
    dup = ShardAgent(cluster.sim, ha.zk, shard)
    cluster.sim.run(until=cluster.sim.now + 100 * MS)
    assert dup.proc.is_alive  # parked on the deletion watch, no crash
    # Expire the first agent's session: the duplicate takes over.
    first = ha.agents[0]
    ha.zk._expire_session(ha.zk._sessions[first.session.session_id])
    cluster.sim.run(until=cluster.sim.now + 4 * S)
    assert ha.zk.node_exists(f"{SHARDS_PATH}/{shard.shard_id}")


def test_join_then_failover_of_original_server():
    """Grow the cluster, then lose the original server: the promoted shard
    plus the joined server keep the whole keyspace available."""
    cluster, ha = ha_cluster(replicas=1, shards=2)
    client = cluster.client()
    expected = {}

    def load():
        for i in range(120):
            key, value = f"k{i}".encode(), f"v{i}".encode()
            yield from client.put(key, value)
            expected[key] = value

    cluster.run(load())
    cluster.sim.run(until=cluster.sim.now + 20 * MS)
    join = cluster.sim.process(ha.swat.join_server(n_shards=2))
    cluster.sim.run(until=join)
    assert len(cluster.ring.members) == 4
    # Let replication of any migrated-away state settle, then fail server 0.
    cluster.sim.run(until=cluster.sim.now + 50 * MS)
    snapshot_old_shards = {
        sid: cluster.routing.resolve(sid).store.dump()
        for sid in cluster.ring.members
    }
    del snapshot_old_shards
    cluster.servers[0].kill()
    cluster.sim.run(until=cluster.sim.now + 4 * S)
    assert ha.swat.failovers == 2  # both original shards promoted

    def verify():
        for key, value in expected.items():
            got = yield from client.get(key)
            assert got == value, key

    cluster.run(verify())


def test_join_server_starts_agents_for_new_shards():
    cluster, ha = ha_cluster(replicas=0, shards=1)
    cluster.sim.run(until=30 * MS)
    join = cluster.sim.process(ha.swat.join_server(n_shards=1))
    cluster.sim.run(until=join)
    cluster.sim.run(until=cluster.sim.now + 50 * MS)
    for sid in cluster.ring.members:
        assert ha.zk.node_exists(f"{SHARDS_PATH}/{sid}"), sid


def test_swat_member_count_and_kill_all_but_one():
    cluster, ha = ha_cluster()
    cluster.sim.run(until=30 * MS)
    # Kill two members; the survivor must lead.
    for mid in range(2):
        if ha.swat.leader_id == 2:
            break
        ha.swat.kill_member(mid if ha.swat.leader_id != mid
                            else ha.swat.leader_id)
    ha.swat.kill_member(ha.swat.leader_id)
    cluster.sim.run(until=cluster.sim.now + 4 * S)
    assert ha.swat.leader_id is not None
    # Failover still functions with a single surviving member.
    cluster.servers[0].kill()
    cluster.sim.run(until=cluster.sim.now + 4 * S)
    assert ha.swat.failovers == 1


def test_migration_deletes_propagate_to_secondaries():
    """Keys migrated away must also leave the donor's replicas."""
    cluster, ha = ha_cluster(replicas=1, shards=2)
    client = cluster.client()

    def load():
        for i in range(100):
            yield from client.put(f"k{i}".encode(), b"v")

    cluster.run(load())
    cluster.sim.run(until=cluster.sim.now + 20 * MS)
    join = cluster.sim.process(ha.swat.join_server(n_shards=2))
    cluster.sim.run(until=join)
    cluster.sim.run(until=cluster.sim.now + 50 * MS)
    for sid, secs in cluster.secondaries.items():
        primary = cluster.routing.resolve(sid)
        for sec in secs:
            assert sec.store.dump() == primary.store.dump(), sid
