"""ZooKeeper model: tree ops, sessions, ephemerals, watches."""

import pytest

from repro.config import CoordConfig
from repro.coord import ZkError, ZooKeeper
from repro.sim import Simulator


@pytest.fixture()
def zk():
    sim = Simulator()
    return sim, ZooKeeper(sim, CoordConfig())


def go(sim, gen):
    return sim.run(until=sim.process(gen))


def test_create_get_set_delete(zk):
    sim, z = zk
    s = z.connect("t")

    def app():
        yield from s.create("/a", b"one")
        data, version = yield from s.get_data("/a")
        assert (data, version) == (b"one", 0)
        v = yield from s.set_data("/a", b"two")
        assert v == 1
        data, version = yield from s.get_data("/a")
        assert (data, version) == (b"two", 1)
        yield from s.delete("/a")
        assert not (yield from s.exists("/a"))

    go(sim, app())
    assert sim.now > 0  # ops cost quorum rounds


def test_create_duplicate_and_missing_parent(zk):
    sim, z = zk
    s = z.connect()

    def app():
        yield from s.create("/a")
        with pytest.raises(ZkError):
            yield from s.create("/a")
        with pytest.raises(ZkError):
            yield from s.create("/nope/child")
        with pytest.raises(ZkError):
            yield from s.get_data("/ghost")
        with pytest.raises(ZkError):
            yield from s.delete("/ghost")

    go(sim, app())


def test_delete_nonempty_rejected(zk):
    sim, z = zk
    s = z.connect()

    def app():
        yield from s.create("/a")
        yield from s.create("/a/b")
        with pytest.raises(ZkError):
            yield from s.delete("/a")
        yield from s.delete("/a/b")
        yield from s.delete("/a")

    go(sim, app())


def test_versioned_set(zk):
    sim, z = zk
    s = z.connect()

    def app():
        yield from s.create("/a", b"x")
        yield from s.set_data("/a", b"y", expected_version=0)
        with pytest.raises(ZkError):
            yield from s.set_data("/a", b"z", expected_version=0)

    go(sim, app())


def test_sequential_nodes(zk):
    sim, z = zk
    s = z.connect()
    got = []

    def app():
        yield from s.create("/q")
        for _ in range(3):
            got.append((yield from s.create("/q/n-", sequential=True)))
        children = yield from s.get_children("/q")
        return children

    children = go(sim, app())
    assert got == ["/q/n-0000000001", "/q/n-0000000002", "/q/n-0000000003"]
    assert children == sorted(c.rsplit("/", 1)[1] for c in got)


def test_ephemeral_removed_on_session_expiry(zk):
    sim, z = zk
    cfg = z.config
    s = z.connect("dying")

    def app():
        yield from s.create("/e", ephemeral=True)

    go(sim, app())
    assert z.node_exists("/e")
    # No heartbeats: expire after session_timeout (+ sweep period).
    sim.run(until=sim.now + cfg.session_timeout_ns + 2 * cfg.heartbeat_ns)
    assert not z.node_exists("/e")
    assert not s.alive


def test_keepalive_prevents_expiry(zk):
    sim, z = zk
    s = z.connect("living")
    stop = {"flag": True}

    def app():
        yield from s.create("/e", ephemeral=True)

    go(sim, app())
    sim.process(s.keepalive(while_alive=lambda: stop["flag"]))
    sim.run(until=sim.now + 5 * z.config.session_timeout_ns)
    assert z.node_exists("/e") and s.alive
    stop["flag"] = False
    sim.run(until=sim.now + 3 * z.config.session_timeout_ns)
    assert not z.node_exists("/e")


def test_expired_session_cannot_operate(zk):
    sim, z = zk
    s = z.connect()
    sim.run(until=2 * z.config.session_timeout_ns + z.config.heartbeat_ns)

    def app():
        with pytest.raises(ZkError):
            yield from s.create("/x")

    go(sim, app())


def test_watch_deleted_and_children(zk):
    sim, z = zk
    s = z.connect()
    fired = []

    def app():
        yield from s.create("/w")
        yield from s.create("/w/child")
        del_watch = z.watch("/w/child", "deleted")
        kid_watch = z.watch("/w", "children")
        yield from s.delete("/w/child")
        ev = yield del_watch
        fired.append(("deleted", ev.path))
        ev = yield kid_watch
        fired.append(("children", ev.path))

    go(sim, app())
    assert ("deleted", "/w/child") in fired
    assert ("children", "/w") in fired


def test_watch_data_and_created(zk):
    sim, z = zk
    s = z.connect()

    def app():
        created = z.watch("/new", "created")
        yield from s.create("/new", b"a")
        yield created
        data_watch = z.watch("/new", "data")
        yield from s.set_data("/new", b"b")
        ev = yield data_watch
        assert ev.kind == "data"

    go(sim, app())


def test_watch_kind_validated(zk):
    _, z = zk
    with pytest.raises(ValueError):
        z.watch("/a", "sideways")


def test_close_expires_ephemerals(zk):
    sim, z = zk
    s = z.connect()

    def app():
        yield from s.create("/tmp", ephemeral=True)
        yield from s.close()

    go(sim, app())
    assert not z.node_exists("/tmp")
