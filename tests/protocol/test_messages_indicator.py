"""Message encode/decode and indicator framing."""

import pytest
from hypothesis import given, strategies as st

from repro.protocol import (
    FRAME_OVERHEAD,
    Op,
    Request,
    Response,
    Status,
    clear,
    consume,
    frame,
    frame_len,
    max_payload,
    probe,
    request_wire_len,
    response_wire_len,
)
from repro.rdma import MemoryRegion


def test_request_roundtrip():
    r = Request(op=Op.PUT, key=b"user:1", value=b"{json}", req_id=42)
    decoded = Request.decode(r.encode())
    assert decoded == r
    assert r.wire_len == len(r.encode()) == request_wire_len(6, 6)


def test_request_without_value():
    r = Request(op=Op.GET, key=b"k")
    assert Request.decode(r.encode()) == r


def test_request_length_mismatch_rejected():
    data = Request(op=Op.GET, key=b"k").encode()
    with pytest.raises(ValueError):
        Request.decode(data + b"extra")


def test_response_roundtrip_with_remote_pointer():
    resp = Response(op=Op.GET, status=Status.OK, req_id=9, value=b"v" * 32,
                    rkey=3, roffset=4096, rlen=56,
                    lease_expiry_ns=10**12, version=5)
    decoded = Response.decode(resp.encode())
    assert decoded == resp
    assert decoded.remote_pointer_valid and decoded.ok
    assert resp.wire_len == response_wire_len(32)


def test_response_without_pointer():
    resp = Response(op=Op.DELETE, status=Status.NOT_FOUND)
    decoded = Response.decode(resp.encode())
    assert not decoded.remote_pointer_valid and not decoded.ok


@given(key=st.binary(min_size=1, max_size=64), value=st.binary(max_size=256),
       op=st.sampled_from(list(Op)), req_id=st.integers(0, 2**63))
def test_request_roundtrip_property(key, value, op, req_id):
    r = Request(op=op, key=key, value=value, req_id=req_id)
    assert Request.decode(r.encode()) == r


# -- indicator framing -------------------------------------------------------

def test_frame_probe_consume_clear():
    region = MemoryRegion(1024)
    payload = b"request-bytes"
    blob = frame(payload)
    assert len(blob) == frame_len(len(payload))
    region.write(0, blob)
    assert probe(region, 0) == len(payload)
    assert consume(region, 0) == payload
    clear(region, 0, len(payload))
    assert probe(region, 0) is None


def test_probe_empty_buffer_is_none():
    region = MemoryRegion(256)
    assert probe(region, 0) is None
    assert consume(region, 0) is None


def test_probe_with_head_but_missing_tail_is_none():
    # Only the head word landed (e.g. a hypothetical partial delivery).
    region = MemoryRegion(256)
    blob = frame(b"hello")
    region.write(0, blob[:8])
    assert probe(region, 0) is None


def test_probe_with_corrupt_size_is_none():
    region = MemoryRegion(64)
    # Head claims a payload far beyond the buffer.
    from repro.protocol import HEAD_MAGIC
    region.write_u64(0, (HEAD_MAGIC << 32) | 10_000)
    assert probe(region, 0) is None


def test_frame_at_nonzero_offset():
    region = MemoryRegion(1024)
    region.write(512, frame(b"offset-frame"))
    assert consume(region, 512) == b"offset-frame"
    assert probe(region, 0) is None


def test_empty_payload_frame():
    region = MemoryRegion(64)
    region.write(0, frame(b""))
    assert probe(region, 0) == 0
    assert consume(region, 0) == b""


def test_max_payload():
    assert max_payload(1024) == 1024 - FRAME_OVERHEAD


@given(payload=st.binary(max_size=512))
def test_frame_roundtrip_property(payload):
    region = MemoryRegion(1024)
    region.write(16, frame(payload))
    assert consume(region, 16) == payload


@given(junk=st.binary(min_size=16, max_size=64))
def test_probe_never_false_positives_on_junk_without_magic(junk):
    # Unless the junk happens to contain both magics in the right spots,
    # probe must return None; if it returns a size, the tail must truly
    # match — i.e. probe never lies about completeness.
    region = MemoryRegion(128)
    region.write(0, junk)
    size = probe(region, 0)
    if size is not None:
        from repro.protocol import TAIL_MAGIC
        assert region.read_u64(8 + size) == TAIL_MAGIC
