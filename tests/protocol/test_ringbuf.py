"""Replication ring buffer: wrap, credit flow control, rewind."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocol import RingFull, RingReader, RingWriter
from repro.rdma import MemoryRegion


def pump(writer, reader, region, payload):
    """Writer places; we apply the writes locally (as RDMA would)."""
    for off, blob in writer.place(payload):
        region.write(off, blob)
    return reader.poll()


def test_single_record_roundtrip():
    region = MemoryRegion(256)
    w, r = RingWriter(256), RingReader(region)
    assert pump(w, r, region, b"record-1") == b"record-1"
    assert r.poll() is None


def test_many_records_in_order():
    region = MemoryRegion(1024)
    w, r = RingWriter(1024), RingReader(region)
    payloads = [f"rec-{i}".encode() for i in range(10)]
    for p in payloads:
        for off, blob in w.place(p):
            region.write(off, blob)
    assert [r.poll() for p in payloads] == payloads


def test_wrap_around_with_marker():
    region = MemoryRegion(128)
    w, r = RingWriter(128), RingReader(region)
    # Each frame: aligned(16 + 24) = 40 bytes; three frames force a wrap.
    for i in range(3):
        out = pump(w, r, region, bytes([i]) * 24)
        assert out == bytes([i]) * 24
        w.ack(r.consumed)
    # After 3 records (120B) the 4th wraps: place returns two writes.
    writes = w.place(b"\xFF" * 24)
    assert len(writes) == 2
    for off, blob in writes:
        region.write(off, blob)
    assert r.poll() == b"\xFF" * 24


def test_ring_full_without_acks():
    region = MemoryRegion(128)
    w, r = RingWriter(128), RingReader(region)
    for p in (b"a" * 24, b"b" * 24, b"c" * 24):
        for off, blob in w.place(p):
            region.write(off, blob)
    with pytest.raises(RingFull):
        w.place(b"d" * 24)  # no credit left for gap+frame
    # Consume and ack: credit returns.
    for _ in range(3):
        assert r.poll() is not None
    w.ack(r.consumed)
    assert w.place(b"d" * 24)


def test_record_larger_than_ring_rejected():
    w = RingWriter(128)
    with pytest.raises(ValueError):
        w.place(b"x" * 256)


def test_invalid_ring_size():
    with pytest.raises(ValueError):
        RingWriter(32)
    with pytest.raises(ValueError):
        RingWriter(100)  # not 8-aligned


def test_stale_ack_ignored_and_bogus_ack_rejected():
    w = RingWriter(256)
    w.place(b"x" * 8)
    consumed_now = 24
    w.ack(consumed_now)
    w.ack(10)  # stale: ignored
    assert w.acked == consumed_now
    with pytest.raises(ValueError):
        w.ack(10_000)


def test_rewind_to_resend():
    region = MemoryRegion(256)
    w, r = RingWriter(256), RingReader(region)
    mark_head, mark_written = w.head, w.written
    for off, blob in w.place(b"first"):
        region.write(off, blob)
    # Simulate the record being rejected: rewind and resend a new version.
    w.rewind_to(mark_head, mark_written)
    for off, blob in w.place(b"retry"):
        region.write(off, blob)
    assert r.poll() == b"retry"


def test_reader_sees_nothing_mid_gap():
    region = MemoryRegion(128)
    r = RingReader(region)
    assert r.poll() is None
    assert r.consumed == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(min_size=0, max_size=40), min_size=1, max_size=60))
def test_fifo_property_under_continuous_drain(payloads):
    region = MemoryRegion(256)
    w, r = RingWriter(256), RingReader(region)
    out = []
    for p in payloads:
        while True:
            try:
                writes = w.place(p)
                break
            except RingFull:
                got = r.poll()
                assert got is not None, "full ring but nothing to drain"
                out.append(got)
                w.ack(r.consumed)
        for off, blob in writes:
            region.write(off, blob)
    while True:
        got = r.poll()
        if got is None:
            break
        out.append(got)
    assert out == payloads


def test_exact_fit_at_boundary_needs_no_wrap_marker():
    """A frame that exactly fills the remaining gap wraps the cursor to 0
    without spending a WRAP marker or gap bytes."""
    region = MemoryRegion(128)
    w, r = RingWriter(128), RingReader(region)
    # First record: aligned(16+24)=40B.  Second: aligned(16+64)=80B fills
    # the remaining 88B?  No — use 64B payload => 80B frame, head at 40,
    # gap = 88 > 80, fits inline.  Craft an exact fit instead:
    for off, blob in w.place(b"a" * 24):       # head -> 40
        region.write(off, blob)
    for off, blob in w.place(b"b" * 72):       # aligned(88)=88 == gap
        region.write(off, blob)
    assert w.head == 0                          # wrapped by exact fit
    assert w.written == 128                     # no gap bytes charged
    assert r.poll() == b"a" * 24
    assert r.poll() == b"b" * 72


def test_wrap_gap_bytes_consume_credit():
    """The skipped tail gap counts against credit until the reader acks it."""
    region = MemoryRegion(128)
    w, r = RingWriter(128), RingReader(region)
    for off, blob in w.place(b"a" * 24):        # 40B, head=40
        region.write(off, blob)
    for off, blob in w.place(b"b" * 40):        # 56B, head=96
        region.write(off, blob)
    assert r.poll() == b"a" * 24
    w.ack(r.consumed)                           # 40B of credit back
    # Next frame (40B) needs the 32B tail gap + 40B at offset 0 = 72B,
    # but only 40 + 32 = 72B of credit remain — exactly enough.
    writes = w.place(b"c" * 24)
    assert len(writes) == 2                     # WRAP marker + frame
    assert w.free_bytes == 0                    # gap bytes consumed credit
    for off, blob in writes:
        region.write(off, blob)
    with pytest.raises(RingFull):
        w.place(b"")                            # even an empty frame: 16B
    assert r.poll() == b"b" * 40
    assert r.poll() == b"c" * 24
    w.ack(r.consumed)
    assert w.free_bytes == 128                  # all credit restored


def test_torn_frame_invisible_until_tail_lands():
    """Head word without its tail word (a write still in flight) is not
    surfaced; once the tail lands the record appears atomically."""
    region = MemoryRegion(128)
    w, r = RingWriter(128), RingReader(region)
    (off, blob), = w.place(b"payload!" * 3)
    region.write(off, blob[:-8])                # everything but the tail
    assert r.poll() is None
    assert r.consumed == 0
    region.write(off + len(blob) - 8, blob[-8:])
    assert r.poll() == b"payload!" * 3
