"""Slotted connection-buffer layout: offsets, capacity, validation."""

import pytest

from repro.protocol import SlotLayout
from repro.protocol.indicator import FRAME_OVERHEAD, frame, frame_len, probe
from repro.rdma import MemoryRegion


def test_single_slot_degenerates_to_whole_buffer():
    layout = SlotLayout(16 << 10, 1)
    assert layout.n_slots == 1
    assert layout.offset(0) == 0
    assert layout.slot_bytes == 16 << 10
    assert layout.max_payload == (16 << 10) - FRAME_OVERHEAD


def test_offsets_are_contiguous_and_aligned():
    layout = SlotLayout(16 << 10, 16)
    offs = [layout.offset(i) for i in range(16)]
    assert offs == [i * layout.slot_bytes for i in range(16)]
    assert all(o % 8 == 0 for o in offs)
    assert layout.slot_bytes % 8 == 0
    # All slots fit within the buffer.
    assert offs[-1] + layout.slot_bytes <= layout.buf_bytes


def test_uneven_division_rounds_down_to_alignment():
    layout = SlotLayout(1000, 3)  # 333 -> 328 after 8-byte alignment
    assert layout.slot_bytes == 328
    assert layout.offset(2) + layout.slot_bytes <= 1000


def test_out_of_range_slot_rejected():
    layout = SlotLayout(1024, 4)
    with pytest.raises(IndexError):
        layout.offset(4)
    with pytest.raises(IndexError):
        layout.offset(-1)


def test_too_many_slots_rejected():
    with pytest.raises(ValueError):
        SlotLayout(256, 64)  # 4B slots cannot hold a frame
    with pytest.raises(ValueError):
        SlotLayout(1024, 0)


def test_max_payload_fits_exactly():
    layout = SlotLayout(4096, 4)
    payload = b"x" * layout.max_payload
    assert frame_len(len(payload)) <= layout.slot_bytes
    assert frame_len(len(payload) + 1) > layout.slot_bytes


def test_frames_in_adjacent_slots_are_independent():
    """A frame written at slot i's offset probes there and nowhere else."""
    layout = SlotLayout(1024, 4)
    region = MemoryRegion(layout.buf_bytes)
    msg = b"hello-slot-2"
    region.write(layout.offset(2), frame(msg))
    assert probe(region, layout.offset(2)) == len(msg)
    for i in (0, 1, 3):
        assert probe(region, layout.offset(i)) is None
