"""Corrupted-frame handling: torn/garbled frames must never parse.

The indicator framing (head word fused with size, tail word written
last) and the item guardian word are the two defenses chaos injection
leans on; these tests feed them every partial/garbled shape a torn DMA
can produce and require a clean refusal, never a bogus payload.
"""

import struct

from repro.kvmem import (GUARD_DEAD, GUARD_LIVE, encode_item, parse_item)
from repro.protocol.indicator import (
    HEAD_MAGIC, TAIL_MAGIC, clear, consume, frame, probe)
from repro.rdma.memory import MemoryRegion

_U64 = struct.Struct("<Q")


def _region(nbytes=256):
    return MemoryRegion(nbytes, name="test.req")


def test_full_frame_round_trips():
    region = _region()
    payload = b"hello hydra frame"
    region.write(0, frame(payload))
    assert probe(region) == len(payload)
    assert consume(region) == payload
    clear(region, 0, len(payload))
    assert probe(region) is None


def test_torn_prefixes_never_parse():
    """Every word-aligned proper prefix of a frame must probe None."""
    payload = b"p" * 48
    full = frame(payload)
    for cut in range(8, len(full) - 7, 8):
        region = _region()
        region.write(0, full[:cut])  # head+partial payload, no tail
        assert probe(region) is None, cut
        assert consume(region) is None, cut


def test_garbled_head_magic_rejected():
    region = _region()
    region.write(0, frame(b"x" * 24))
    bad_head = ((HEAD_MAGIC ^ 0x1) << 32) | 24
    region.write(0, _U64.pack(bad_head))
    assert probe(region) is None


def test_corrupt_size_beyond_region_rejected():
    region = _region(64)
    # Head claims a payload far past the buffer end; the probe must not
    # read out of bounds or treat garbage as a tail word.
    head = (HEAD_MAGIC << 32) | 4096
    region.write(0, _U64.pack(head))
    assert probe(region) is None


def test_wrong_tail_word_rejected():
    region = _region()
    payload = b"y" * 32
    region.write(0, frame(payload))
    region.write(8 + len(payload), _U64.pack(TAIL_MAGIC ^ 0xFF))
    assert probe(region) is None


def test_stale_tail_from_recycled_slot_rejected():
    """A longer previous frame's tail must not validate a shorter torn one."""
    region = _region()
    old = frame(b"o" * 64)
    region.write(0, old)  # consumed but not cleared
    new = frame(b"n" * 24)
    region.write(0, new[:16])  # tear: head + 8 payload bytes, no tail
    assert probe(region) is None


def test_parse_item_guardian_fallbacks():
    key, value = b"k1", b"v" * 32
    good = encode_item(key, value, version=7)
    item = parse_item(good)
    assert item is not None and item.live and item.value == value

    # DEAD guardian: well-formed but reclaimed -> live is False.
    dead = bytearray(good)
    dead[-8:] = _U64.pack(GUARD_DEAD)
    item = parse_item(bytes(dead))
    assert item is not None and not item.live

    # Scribbled guardian (mid-reclaim garbage) -> unparseable.
    garbage = bytearray(good)
    garbage[-8:] = _U64.pack(0x1234567890ABCDEF)
    assert parse_item(bytes(garbage)) is None

    # Truncated reads and wrong magic -> unparseable.
    assert parse_item(good[:-8]) is None
    assert parse_item(good[:4]) is None
    assert parse_item(b"") is None
    flipped = bytearray(good)
    flipped[0] ^= 0xFF
    assert parse_item(bytes(flipped)) is None

    # Length fields inconsistent with the byte count -> unparseable.
    assert parse_item(good + b"\x00" * 8) is None


def test_parse_item_guard_constants_distinct():
    assert GUARD_LIVE != GUARD_DEAD
