"""Occupancy-word layout and set/clear/wraparound semantics."""

import pytest

from repro.protocol import (
    OCC_WORD_BYTES,
    SlotLayout,
    occ_announce,
    occ_bit,
    occ_consume,
    occ_encode,
    occ_header_bytes,
    occ_probe,
    occ_restore,
    occ_set,
    occ_slots,
    occ_word,
)
from repro.protocol.indicator import FRAME_OVERHEAD
from repro.rdma import MemoryRegion


def test_occ_bit_maps_slots_to_bits():
    assert occ_bit(0) == 1
    assert occ_bit(5) == 1 << 5
    assert occ_bit(63) == 1 << 63


def test_occ_bit_wraps_past_64():
    # Slot 64 shares bit 0 with slot 0; 65 shares bit 1 with slot 1.
    assert occ_bit(64) == occ_bit(0)
    assert occ_bit(65) == occ_bit(1)
    assert occ_bit(127) == occ_bit(63)
    with pytest.raises(ValueError):
        occ_bit(-1)


def test_occ_word_is_or_of_inflight_slots():
    assert occ_word([]) == 0
    assert occ_word([0, 3, 63]) == (1 | (1 << 3) | (1 << 63))
    # Duplicate / wrapped slots collapse onto the same bit.
    assert occ_word([1, 65]) == 1 << 1


def test_occ_encode_is_little_endian_u64():
    assert occ_encode(0) == b"\x00" * 8
    assert occ_encode(1) == b"\x01" + b"\x00" * 7
    assert occ_encode(1 << 63) == b"\x00" * 7 + b"\x80"
    assert len(occ_encode(occ_word(range(64)))) == OCC_WORD_BYTES


def test_set_then_consume_round_trips_and_clears():
    region = MemoryRegion(64)
    occ_set(region, [2, 7])
    assert occ_consume(region) == occ_word([2, 7])
    # Consuming snapshots AND zeroes: a second probe sees nothing.
    assert occ_consume(region) == 0


def test_set_accumulates_until_consumed():
    region = MemoryRegion(64)
    occ_set(region, [1])
    occ_set(region, [4])
    assert occ_consume(region) == occ_word([1, 4])


def test_occ_slots_expands_wraparound_groups():
    # 96-slot layout: bit 0 covers slots 0 and 64; both must be probed.
    word = occ_word([64])
    assert list(occ_slots(word, 96)) == [0, 64]
    # Without wraparound only the exact slot is indicated.
    assert list(occ_slots(occ_word([5]), 64)) == [5]
    assert list(occ_slots(0, 64)) == []


def test_layout_without_occupancy_is_unchanged():
    plain = SlotLayout(16 << 10, 16)
    assert plain.occupancy is False
    assert plain.header_bytes == 0
    assert plain.offset(0) == 0


def test_layout_with_occupancy_shifts_slots_past_header():
    layout = SlotLayout(16 << 10, 16, occupancy=True)
    assert layout.occupancy is True
    assert layout.header_bytes == OCC_WORD_BYTES
    assert layout.occ_offset == 0
    assert layout.offset(0) == OCC_WORD_BYTES
    # Slots stay 8-byte aligned and inside the buffer.
    offs = [layout.offset(i) for i in range(16)]
    assert all(o % 8 == 0 for o in offs)
    assert offs[-1] + layout.slot_bytes <= layout.buf_bytes
    assert layout.max_payload == layout.slot_bytes - FRAME_OVERHEAD


def test_occupancy_header_cannot_eat_the_only_slot():
    with pytest.raises(ValueError):
        SlotLayout(FRAME_OVERHEAD + 8, 1, occupancy=True)


def test_occ_header_grows_past_64_slots():
    # <=64 slots keep the original single word; wider windows pay one
    # summary word plus one exact sub-word per 64-slot group.
    assert occ_header_bytes(16) == OCC_WORD_BYTES
    assert occ_header_bytes(64) == OCC_WORD_BYTES
    assert occ_header_bytes(65) == 3 * OCC_WORD_BYTES
    assert occ_header_bytes(128) == 3 * OCC_WORD_BYTES
    assert occ_header_bytes(129) == 4 * OCC_WORD_BYTES


def test_announce_is_byte_identical_to_single_word_up_to_64():
    slots = [0, 7, 63]
    assert occ_announce(slots, 64) == occ_encode(occ_word(slots))
    assert occ_announce([], 16) == occ_encode(0)


def test_announce_rejects_out_of_range_slot():
    with pytest.raises(ValueError):
        occ_announce([128], 128)
    with pytest.raises(ValueError):
        occ_announce([-1], 128)


def test_two_level_announce_probe_round_trips_exactly():
    n = 128
    region = MemoryRegion(occ_header_bytes(n))
    region.write(0, occ_announce([0, 63, 64, 70, 127], n))
    slots, probes = occ_probe(region, n)
    # Exact, not group-aliased: slot 64 no longer drags slot 0 along.
    assert slots == [0, 63, 64, 70, 127]
    assert probes == 3  # summary + both dirty groups
    # The probe consumed the header: nothing left for the next sweep.
    again, probes2 = occ_probe(region, n)
    assert again == [] and probes2 == 1


def test_two_level_probe_skips_clean_groups():
    n = 192
    region = MemoryRegion(occ_header_bytes(n))
    region.write(0, occ_announce([130], n))
    slots, probes = occ_probe(region, n)
    assert slots == [130]
    assert probes == 2  # summary + group 2; groups 0 and 1 untouched


def test_two_level_restore_reannounces_for_next_sweep():
    n = 128
    region = MemoryRegion(occ_header_bytes(n))
    region.write(0, occ_announce([3, 100], n))
    assert occ_probe(region, n)[0] == [3, 100]
    # A budgeted sweep hands slot 100 back; the next probe sees only it.
    occ_restore(region, [100], n)
    assert occ_probe(region, n)[0] == [100]


def test_single_word_probe_counts_one():
    region = MemoryRegion(OCC_WORD_BYTES)
    region.write(0, occ_announce([2, 9], 16))
    slots, probes = occ_probe(region, 16)
    assert slots == [2, 9] and probes == 1


def test_layout_wide_window_reserves_two_level_header():
    layout = SlotLayout(32 << 10, 96, occupancy=True)
    assert layout.header_bytes == occ_header_bytes(96) == 3 * OCC_WORD_BYTES
    assert layout.offset(0) == layout.header_bytes
    assert all(layout.offset(i) % 8 == 0 for i in range(96))
