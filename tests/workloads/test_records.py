"""Columnar record codec (the G2 protobuf-style table flattening)."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads.records import Field, RecordError, RecordSchema

PERSON = RecordSchema("person", [
    Field(1, "id", int),
    Field(2, "name", str),
    Field(3, "blob", bytes),
    Field(4, "score", int),
])


def test_roundtrip_all_fields():
    rec = {"id": 42, "name": "Ada", "blob": b"\x00\x01", "score": -7}
    assert PERSON.decode(PERSON.encode(rec)) == rec


def test_missing_fields_omitted():
    rec = {"id": 1}
    out = PERSON.decode(PERSON.encode(rec))
    assert out == {"id": 1}


def test_negative_and_large_ints():
    for v in (0, -1, 1, -(2**40), 2**40, 2**62):
        assert PERSON.decode(PERSON.encode({"id": v}))["id"] == v


def test_unknown_tags_skipped_forward_compat():
    extended = RecordSchema("v2", [
        Field(1, "id", int),
        Field(9, "extra", str),
    ])
    blob = extended.encode({"id": 5, "extra": "future"})
    # The v1 schema (PERSON) decodes what it knows, skips tag 9.
    assert PERSON.decode(blob) == {"id": 5}


def test_type_validation_on_encode():
    with pytest.raises(RecordError):
        PERSON.encode({"id": "not-an-int"})
    with pytest.raises(RecordError):
        PERSON.encode({"name": 99})
    with pytest.raises(RecordError):
        PERSON.encode({"blob": "not-bytes"})
    with pytest.raises(RecordError):
        PERSON.encode({"id": True})  # bools are not ints here


def test_truncated_data_rejected():
    blob = PERSON.encode({"name": "hello"})
    with pytest.raises(RecordError):
        PERSON.decode(blob[:-2])
    with pytest.raises(RecordError):
        PERSON.decode(b"\x80")  # endless varint


def test_wire_type_mismatch_rejected():
    wrong = RecordSchema("w", [Field(1, "id", str)])
    blob = PERSON.encode({"id": 3})  # tag 1 as varint
    with pytest.raises(RecordError):
        wrong.decode(blob)


def test_schema_validation():
    with pytest.raises(ValueError):
        RecordSchema("dup", [Field(1, "a", int), Field(1, "b", int)])
    with pytest.raises(ValueError):
        RecordSchema("dup", [Field(1, "a", int), Field(2, "a", int)])
    with pytest.raises(ValueError):
        Field(0, "bad", int)
    with pytest.raises(ValueError):
        Field(1, "bad", float)


def test_key_for():
    assert PERSON.key_for("people", 42) == b"people/42"


def test_kv_integration_with_hydradb():
    """The actual G2 pattern: rows flattened into HydraDB values."""
    from repro import HydraCluster
    cluster = HydraCluster(n_server_machines=1, shards_per_server=2)
    cluster.start()
    client = cluster.client()
    row = {"id": 7, "name": "observation-7", "score": 99}
    key = PERSON.key_for("events", 7)

    def app():
        yield from client.put(key, PERSON.encode(row))
        blob = yield from client.get(key)
        assert PERSON.decode(blob) == row

    cluster.run(app())


@given(st.builds(
    dict,
    id=st.integers(min_value=-2**62, max_value=2**62),
    name=st.text(max_size=40),
    blob=st.binary(max_size=60),
    score=st.integers(min_value=-10**9, max_value=10**9),
))
def test_roundtrip_property(rec):
    assert PERSON.decode(PERSON.encode(rec)) == rec
