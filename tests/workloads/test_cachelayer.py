"""The §2.1 cache layer: prefetch, hit/miss, LRU eviction."""

import pytest

from repro import HydraCluster
from repro.workloads.cachelayer import CacheLayer

CHUNK = 1024
FETCH_NS = 2_000_000  # a slow backing-store (HDFS) fetch


def make_layer(capacity=4):
    cluster = HydraCluster(n_server_machines=1, shards_per_server=2)
    cluster.start()
    client = cluster.client()
    fetches = []

    def source(key):
        fetches.append(key)
        return FETCH_NS, key.ljust(CHUNK, b".")

    return cluster, CacheLayer(client, capacity, source), fetches


def test_prefetch_then_hits():
    cluster, cache, fetches = make_layer()
    keys = [f"blk{i}".encode() for i in range(3)]
    got = {}

    def app():
        yield from cache.prefetch(keys)
        for k in keys:
            got[k] = yield from cache.read(k)

    cluster.run(app())
    assert cache.stats.prefetched == 3
    assert cache.stats.hits == 3 and cache.stats.misses == 0
    assert fetches == keys  # fetched exactly once each
    for k in keys:
        assert got[k].startswith(k)


def test_miss_demand_fills_and_next_read_hits():
    cluster, cache, fetches = make_layer()

    def app():
        v1 = yield from cache.read(b"cold")
        assert v1.startswith(b"cold")
        v2 = yield from cache.read(b"cold")
        assert v2 == v1

    cluster.run(app())
    assert cache.stats.misses == 1 and cache.stats.hits == 1
    assert len(fetches) == 1


def test_miss_pays_source_latency_hit_does_not():
    cluster, cache, _ = make_layer()
    times = {}

    def app():
        t0 = cluster.sim.now
        yield from cache.read(b"x")
        times["miss"] = cluster.sim.now - t0
        t0 = cluster.sim.now
        yield from cache.read(b"x")
        times["hit"] = cluster.sim.now - t0

    cluster.run(app())
    assert times["miss"] > FETCH_NS
    assert times["hit"] < FETCH_NS / 10


def test_lru_eviction_at_capacity():
    cluster, cache, fetches = make_layer(capacity=3)

    def app():
        for i in range(3):
            yield from cache.read(f"b{i}".encode())
        yield from cache.read(b"b0")       # refresh b0
        yield from cache.read(b"b3")       # evicts b1 (coldest)
        assert b"b1" not in cache
        assert b"b0" in cache and b"b3" in cache
        yield from cache.read(b"b1")       # miss again

    cluster.run(app())
    assert cache.stats.evictions >= 2
    assert len(cache) == 3
    assert fetches.count(b"b1") == 2  # evicted then refetched


def test_evicted_chunks_removed_from_store():
    cluster, cache, _ = make_layer(capacity=2)

    def app():
        for i in range(5):
            yield from cache.read(f"b{i}".encode())

    cluster.run(app())
    total = sum(len(s.store) for s in cluster.shards())
    assert total == 2  # only the cached residents remain in HydraDB


def test_invalidate():
    cluster, cache, fetches = make_layer()

    def app():
        yield from cache.read(b"k")
        yield from cache.invalidate(b"k")
        assert b"k" not in cache
        yield from cache.read(b"k")  # refetch

    cluster.run(app())
    assert len(fetches) == 2


def test_capacity_validation():
    cluster, cache, _ = make_layer()
    with pytest.raises(ValueError):
        CacheLayer(cache.client, 0, lambda k: (0, b""))


def test_stats_dict():
    _, cache, _ = make_layer()
    d = cache.stats.as_dict()
    assert d["hit_rate"] == 0.0 and d["hits"] == 0
