"""Application workload models: MapReduce backends, G2, CDR."""


from repro.config import SimConfig
from repro.hardware import Machine
from repro.rdma import Fabric, TcpNetwork
from repro.sim import Simulator
from repro.workloads import (
    AppProfile,
    CdrProfile,
    DbClient,
    FIG2_APPS,
    G2Profile,
    HdfsBackend,
    HydraBackend,
    HydraTcpBackend,
    InMemoryDatabase,
    hydra_g2_cluster,
    load_subscribers,
    preload_entities,
    run_engines,
    run_job,
    run_pes,
)


def tcp_world(n=3):
    cfg = SimConfig()
    sim = Simulator()
    fabric, tcpnet = Fabric(sim, cfg), TcpNetwork(sim, cfg)
    machines = [Machine(sim, i, cfg) for i in range(n)]
    for m in machines:
        fabric.attach(m)
        tcpnet.attach(m)
    return cfg, sim, machines


SMALL = AppProfile("t", "hadoop", input_mb=16, compute_ns_per_mb=0,
                   n_tasks=2)


def test_fig2_profiles_cover_both_frameworks():
    frameworks = {p.framework for p in FIG2_APPS}
    assert frameworks == {"hadoop", "spark"}
    assert len(FIG2_APPS) == 8


def test_hdfs_backend_job_completes_and_costs_time():
    cfg, sim, machines = tcp_world()
    backend = HdfsBackend(sim, cfg, machines[0], machines[1:])
    conns = [sim.run(until=sim.process(backend.connect(machines[1])))
             for _ in range(SMALL.n_tasks)]
    t = run_job(sim, SMALL, conns)
    # ~16 MB at ~140 MB/s effective, two parallel tasks.
    assert 30_000_000 < t < 300_000_000


def test_hydra_backend_preload_and_read():
    backend = HydraBackend(None, SimConfig(), shards=2)
    backend.preload(8)
    assert backend._loaded == 8
    conns = [backend.sim.run(until=backend.sim.process(backend.connect(i)))
             for i in range(2)]
    t = run_job(backend.sim, SMALL, conns)
    assert t > 0
    # All chunks were served from the cluster (no misses tolerated).


def test_hydra_tcp_backend_between_hdfs_and_rdma():
    profile = SMALL
    cfg, sim, machines = tcp_world()
    hdfs = HdfsBackend(sim, cfg, machines[0], machines[1:])
    conns = [sim.run(until=sim.process(hdfs.connect(machines[1])))
             for _ in range(profile.n_tasks)]
    t_hdfs = run_job(sim, profile, conns)

    cfg2, sim2, machines2 = tcp_world()
    tcpb = HydraTcpBackend(sim2, cfg2, machines2[0])
    conns = [sim2.run(until=sim2.process(tcpb.connect(machines2[1])))
             for _ in range(profile.n_tasks)]
    t_tcp = run_job(sim2, profile, conns)

    backend = HydraBackend(None, SimConfig(), shards=2)
    backend.preload(profile.input_mb)
    conns = [backend.sim.run(until=backend.sim.process(backend.connect(i)))
             for i in range(profile.n_tasks)]
    t_rdma = run_job(backend.sim, profile, conns)
    assert t_rdma < t_tcp < t_hdfs


def test_g2_db_vs_hydra_single_engine():
    profile = G2Profile(entity_space=500)
    cfg, sim, machines = tcp_world(4)
    db = InMemoryDatabase(sim, cfg, machines[0])
    preload_entities(db.tables.__setitem__, profile)
    assert len(db.tables) == 500
    eps_db, elapsed = run_engines(
        sim, [DbClient(sim, machines[1], db)], profile, 20)
    assert eps_db > 0 and elapsed > 0

    from repro.protocol import Op
    cluster = hydra_g2_cluster(shards=2)
    preload_entities(
        lambda k, v: cluster.route(k).store.upsert(k, v, Op.PUT), profile)
    cluster.start()
    eps_hy, _ = run_engines(cluster.sim, [cluster.client(0)], profile, 20)
    assert eps_hy > 5 * eps_db


def test_cdr_report_slo_logic():
    from repro.workloads import CdrReport
    profile = CdrProfile()
    good = CdrReport(throughput_mops=2.0, lookup_p99_us=50,
                     update_p99_us=60, ops=100)
    slow = CdrReport(throughput_mops=0.2, lookup_p99_us=50,
                     update_p99_us=60, ops=100)
    laggy = CdrReport(throughput_mops=2.0, lookup_p99_us=500,
                      update_p99_us=60, ops=100)
    assert good.meets(profile)
    assert not slow.meets(profile)
    assert not laggy.meets(profile)


def test_cdr_end_to_end_meets_slos():
    profile = CdrProfile(n_subscribers=2000)
    cluster = hydra_g2_cluster()
    load_subscribers(cluster, profile)
    cluster.start()
    report = run_pes(cluster, profile, n_pes=10, ops_per_pe=150)
    assert report.ops > 1000
    assert report.meets(profile)
    assert report.lookup_p99_us < 100


def test_run_job_splits_input_evenly():
    backend = HydraBackend(None, SimConfig(), shards=2)
    backend.preload(8)
    conns = [backend.sim.run(until=backend.sim.process(backend.connect(i)))
             for i in range(4)]
    profile = AppProfile("even", "hadoop", input_mb=8, compute_ns_per_mb=0,
                         n_tasks=4)
    run_job(backend.sim, profile, conns)
    reads = [c._next for c in conns]
    assert all(r == reads[0] for r in reads)  # equal chunk counts
