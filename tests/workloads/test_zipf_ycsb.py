"""Workload generators: zipfian skew, keyspace, YCSB pre-generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.keys import Keyspace, make_key, make_value
from repro.workloads.ycsb import (
    OP_GET,
    PAPER_WORKLOADS,
    YcsbSpec,
    YcsbWorkload,
    paper_spec,
)
from repro.workloads.zipf import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    zeta,
)


def test_zeta_matches_direct_sum():
    n, theta = 1000, 0.99
    direct = sum(1.0 / i**theta for i in range(1, n + 1))
    assert zeta(n, theta) == pytest.approx(direct, rel=1e-9)


def test_zipfian_rank_zero_most_frequent():
    gen = ZipfianGenerator(10_000, rng=np.random.default_rng(1))
    sample = gen.sample(200_000)
    counts = np.bincount(sample, minlength=10_000)
    assert counts[0] == counts.max()
    assert counts[0] > counts[10] > counts[1000]


def test_zipfian_head_mass():
    # With theta=0.99 the hottest ~1% of items draw a large share.
    n = 10_000
    gen = ZipfianGenerator(n, rng=np.random.default_rng(2))
    sample = gen.sample(100_000)
    hot = np.sum(sample < n // 100) / len(sample)
    assert hot > 0.25


def test_zipfian_bounds_and_determinism():
    g1 = ZipfianGenerator(500, rng=np.random.default_rng(3))
    g2 = ZipfianGenerator(500, rng=np.random.default_rng(3))
    s1, s2 = g1.sample(10_000), g2.sample(10_000)
    assert (s1 == s2).all()
    assert s1.min() >= 0 and s1.max() < 500
    assert 0 <= g1.one() < 500


def test_zipfian_validation():
    with pytest.raises(ValueError):
        ZipfianGenerator(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, theta=1.0)
    with pytest.raises(ValueError):
        UniformGenerator(0)
    with pytest.raises(ValueError):
        zeta(0, 0.99)


def test_scrambled_zipfian_spreads_hot_keys():
    n = 10_000
    gen = ScrambledZipfianGenerator(n, rng=np.random.default_rng(4))
    sample = gen.sample(100_000)
    assert sample.min() >= 0 and sample.max() < n
    # Still skewed: top-10 keys carry far more than 10/n of the mass...
    _values, counts = np.unique(sample, return_counts=True)
    top10 = np.sort(counts)[-10:].sum() / len(sample)
    assert top10 > 0.15
    # ...but the hottest keys are scattered, not clustered at 0.
    order = np.argsort(counts)[::-1]
    hottest = _values[order[:10]]
    assert hottest.max() > n // 10


def test_uniform_is_flat():
    gen = UniformGenerator(1000, rng=np.random.default_rng(5))
    counts = np.bincount(gen.sample(100_000), minlength=1000)
    assert counts.max() < 3 * counts.mean()


def test_make_key_width_and_value():
    assert make_key(42) == b"user000000000042"
    assert len(make_key(42)) == 16
    assert len(make_value(42, 32)) == 32
    with pytest.raises(ValueError):
        make_key(10**13)


def test_keyspace_memoizes():
    ks = Keyspace(100)
    assert ks.key(5) is ks.key(5)
    assert ks.verify(5, ks.value(5))
    assert not ks.verify(5, None)
    assert not ks.verify(5, b"short")


def test_paper_workloads_cover_six_mixes():
    assert len(PAPER_WORKLOADS) == 6
    mixes = {(s.get_fraction, s.distribution) for s in PAPER_WORKLOADS}
    assert mixes == {(1.0, "zipfian"), (0.9, "zipfian"), (0.5, "zipfian"),
                     (1.0, "uniform"), (0.9, "uniform"), (0.5, "uniform")}
    spec = paper_spec(0.9, "uniform", n_ops=123)
    assert spec.n_ops == 123
    with pytest.raises(KeyError):
        paper_spec(0.7, "zipfian")


def test_ycsb_workload_generation():
    spec = YcsbSpec(name="t", n_records=1000, n_ops=10_000, get_fraction=0.9,
                    distribution="zipfian", seed=7)
    wl = YcsbWorkload(spec)
    assert len(wl) == 10_000
    get_frac = np.mean(wl.ops == OP_GET)
    assert 0.87 < get_frac < 0.93
    assert wl.key_indices.min() >= 0 and wl.key_indices.max() < 1000
    assert len(wl.hot_keys(5)) == 5


def test_ycsb_deterministic_by_seed():
    spec = YcsbSpec(name="t", n_records=100, n_ops=1000, seed=9)
    a, b = YcsbWorkload(spec), YcsbWorkload(spec)
    assert (a.ops == b.ops).all() and (a.key_indices == b.key_indices).all()


def test_ycsb_slices_partition_exactly():
    spec = YcsbSpec(name="t", n_records=100, n_ops=1003)
    wl = YcsbWorkload(spec)
    total = 0
    for i in range(7):
        ops, keys = wl.slice_for(i, 7)
        assert len(ops) == len(keys)
        total += len(ops)
    assert total == 1003
    with pytest.raises(ValueError):
        wl.slice_for(7, 7)


def test_ycsb_unknown_distribution():
    with pytest.raises(ValueError):
        YcsbWorkload(YcsbSpec(name="t", distribution="pareto"))


def test_spec_scaled():
    spec = PAPER_WORKLOADS[0].scaled(records=50, ops=60)
    assert spec.n_records == 50 and spec.n_ops == 60
    assert PAPER_WORKLOADS[0].n_records != 50  # frozen original untouched


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 5000), theta=st.floats(0.2, 0.99))
def test_zipfian_samples_in_range_property(n, theta):
    gen = ZipfianGenerator(n, theta=theta, rng=np.random.default_rng(0))
    s = gen.sample(500)
    assert s.min() >= 0 and s.max() < n
