"""Item layout: encode/parse round trips, guardian semantics, corruption."""

import pytest
from hypothesis import given, strategies as st

from repro.kvmem import (
    GUARD_DEAD,
    GUARD_LIVE,
    cachelines,
    encode_item,
    item_size,
    kill_item,
    parse_item,
    read_guardian,
    write_item,
)
from repro.rdma import MemoryRegion


def test_item_size_accounting():
    assert item_size(16, 32) == 16 + 16 + 32 + 8
    blob = encode_item(b"k" * 16, b"v" * 32, 1)
    assert len(blob) == item_size(16, 32)


def test_encode_parse_roundtrip():
    item = parse_item(encode_item(b"key", b"value", 7))
    assert item is not None
    assert item.key == b"key" and item.value == b"value"
    assert item.version == 7 and item.live


def test_dead_item_parses_as_not_live():
    item = parse_item(encode_item(b"k", b"v", 3, live=False))
    assert item is not None and not item.live


def test_empty_key_and_value_allowed():
    item = parse_item(encode_item(b"", b"", 0))
    assert item.key == b"" and item.value == b"" and item.live


def test_oversized_key_rejected():
    with pytest.raises(ValueError):
        encode_item(b"x" * 70000, b"v", 0)


def test_parse_garbage_returns_none():
    assert parse_item(b"") is None
    assert parse_item(b"\x00" * 40) is None          # wrong magic
    assert parse_item(bytes([0xA5]) * 64) is None    # poison pattern
    blob = encode_item(b"key", b"value", 1)
    assert parse_item(blob[:-1]) is None             # truncated
    assert parse_item(blob + b"\x00") is None        # length mismatch


def test_parse_corrupted_guardian_returns_none():
    blob = bytearray(encode_item(b"key", b"value", 1))
    blob[-8:] = b"\x01\x02\x03\x04\x05\x06\x07\x08"
    assert parse_item(bytes(blob)) is None


def test_write_kill_read_guardian_in_region():
    region = MemoryRegion(4096)
    n = write_item(region, 100, b"kk", b"vvv", 5)
    assert n == item_size(2, 3)
    assert read_guardian(region, 100, 2, 3) == GUARD_LIVE
    kill_item(region, 100, 2, 3)
    assert read_guardian(region, 100, 2, 3) == GUARD_DEAD
    # The rest of the item is untouched — readers still parse it (as dead).
    item = parse_item(region.read(100, n))
    assert item is not None and not item.live and item.value == b"vvv"


def test_cachelines_helper():
    assert cachelines(1) == 1
    assert cachelines(64) == 1
    assert cachelines(65) == 2
    assert cachelines(0) == 1  # an access always touches one line


@given(key=st.binary(max_size=128), value=st.binary(max_size=1024),
       version=st.integers(min_value=0, max_value=2**63))
def test_roundtrip_property(key, value, version):
    item = parse_item(encode_item(key, value, version))
    assert item is not None
    assert (item.key, item.value, item.version, item.live) == (
        key, value, version, True)


@given(data=st.binary(max_size=256))
def test_parse_never_crashes_on_arbitrary_bytes(data):
    item = parse_item(data)
    if item is not None:
        # If it parsed, the layout invariants must hold.
        assert item_size(len(item.key), len(item.value)) == len(data)
