"""Slab allocator invariants and lease-deferred reclamation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.kvmem import POISON_BYTE, LeaseReclaimer, OutOfMemory, SlabAllocator
from repro.rdma import MemoryRegion
from repro.sim import Simulator


def make_alloc(arena=4096, classes=(64, 128, 256)):
    return SlabAllocator(MemoryRegion(arena), classes)


def test_alloc_rounds_to_size_class():
    a = make_alloc()
    assert a.class_for(1) == 64
    assert a.class_for(64) == 64
    assert a.class_for(65) == 128
    assert a.class_for(256) == 256
    with pytest.raises(ValueError):
        a.class_for(257)


def test_alloc_free_reuse():
    a = make_alloc()
    o1 = a.alloc(100)   # 128-class
    o2 = a.alloc(100)
    assert o1 != o2
    a.free(o1)
    o3 = a.alloc(120)
    assert o3 == o1  # reused from the free list
    assert a.live_extents == 2


def test_double_free_rejected():
    a = make_alloc()
    o = a.alloc(10)
    a.free(o)
    with pytest.raises(ValueError):
        a.free(o)


def test_free_unknown_offset_rejected():
    a = make_alloc()
    with pytest.raises(ValueError):
        a.free(999)


def test_out_of_memory():
    a = SlabAllocator(MemoryRegion(128), (64,))
    a.alloc(1)
    a.alloc(1)
    with pytest.raises(OutOfMemory):
        a.alloc(1)


def test_stats_track_bytes_and_ops():
    a = make_alloc()
    o = a.alloc(200)  # 256-class
    assert a.live_bytes == 256 and a.allocated_ops == 1
    assert a.extent_class(o) == 256
    assert 0 < a.utilization < 1
    a.free(o)
    assert a.live_bytes == 0 and a.freed_ops == 1


@settings(max_examples=50)
@given(st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=256)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
    ),
    max_size=80,
))
def test_live_extents_never_overlap(ops):
    a = SlabAllocator(MemoryRegion(64 << 10), (64, 128, 256))
    live: list[int] = []
    for op, arg in ops:
        if op == "alloc":
            try:
                live.append(a.alloc(arg))
            except OutOfMemory:
                pass
        elif live:
            a.free(live.pop(arg % len(live)))
    ranges = a.live_ranges()
    for (o1, n1), (o2, _n2) in zip(ranges, ranges[1:]):
        assert o1 + n1 <= o2, "live extents overlap"
    assert len(ranges) == len(live)


# -- reclamation ----------------------------------------------------------

def test_reclaimer_frees_only_after_lease_expiry():
    sim = Simulator()
    a = make_alloc()
    r = LeaseReclaimer(sim, a, period_ns=1000)
    o = a.alloc(10)
    r.retire(o, lease_expiry_ns=5000)
    r.start()
    sim.run(until=4000)
    assert a.live_extents == 1 and r.pending == 1
    sim.run(until=6001)
    assert a.live_extents == 0 and r.pending == 0
    assert r.reclaimed.value == 1


def test_reclaimer_scribbles_poison():
    sim = Simulator()
    region = MemoryRegion(4096)
    a = SlabAllocator(region, (64,))
    r = LeaseReclaimer(sim, a, period_ns=100, scribble=True)
    o = a.alloc(10)
    region.write(o, b"sensitive")
    r.retire(o, lease_expiry_ns=50)
    r.start()
    sim.run(until=200)
    assert region.read(o, 64) == bytes([POISON_BYTE]) * 64


def test_reclaimer_handles_many_expiries_in_order():
    sim = Simulator()
    a = make_alloc(arena=64 << 10, classes=(64,))
    r = LeaseReclaimer(sim, a, period_ns=10)
    offsets = [a.alloc(1) for _ in range(20)]
    for i, o in enumerate(offsets):
        r.retire(o, lease_expiry_ns=100 * (i + 1))
    r.start()
    sim.run(until=1000)
    assert a.live_extents == 10  # leases 100..1000 expired
    sim.run(until=2005)
    assert a.live_extents == 0


def test_reclaimer_stop_and_double_start():
    sim = Simulator()
    a = make_alloc()
    r = LeaseReclaimer(sim, a, period_ns=100)
    r.start()
    with pytest.raises(RuntimeError):
        r.start()
    r.stop()
    o = a.alloc(1)
    r.retire(o, lease_expiry_ns=0)
    sim.run(until=500)
    assert r.pending == 1  # stopped: nothing reclaimed

    cfg = SimConfig()
    assert cfg.memory.reclaim_period_ns > 0  # config sanity
