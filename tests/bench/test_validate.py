"""The artifact schema validator behind `make bench-smoke`."""

import json

from repro.bench.validate import main, validate_artifact


def _mg_row(**kw):
    row = {"mode": "hybrid", "batch": 16, "get_kops": 250.0,
           "speedup_vs_message": 2.5, "pointer_hits": 10,
           "successful_hits": 10, "invalid_hits": 0, "demoted": 0,
           "reconciled": True, "bucket_reads": 0, "traversal_races": 0,
           "demotions": 0, "index_mutations_versioned": 0,
           "server_cpu_ns_per_get": 0.0}
    row.update(kw)
    return row


def good_multiget_payload():
    return {
        "experiment": "multiget_fanout_sweep",
        "description": "d", "unit": "kops",
        "rows": [
            _mg_row(mode="message", get_kops=100.0,
                    speedup_vs_message=1.0, pointer_hits=0,
                    successful_hits=0, demoted=10,
                    server_cpu_ns_per_get=700.0),
            _mg_row(),
            _mg_row(mode="cold", get_kops=120.0, speedup_vs_message=1.2,
                    pointer_hits=0, successful_hits=0, demoted=10,
                    bucket_reads=10),
        ],
    }


def test_good_payload_validates():
    assert validate_artifact(good_multiget_payload()) == []


def test_unreconciled_row_rejected():
    payload = good_multiget_payload()
    payload["rows"][1]["reconciled"] = False
    assert any("reconcile" in p for p in validate_artifact(payload))


def test_missing_row_key_and_bad_speedup_rejected():
    payload = good_multiget_payload()
    del payload["rows"][0]["demoted"]
    payload["rows"][1]["speedup_vs_message"] = 0
    problems = validate_artifact(payload)
    assert any("demoted" in p for p in problems)
    assert any("speedup_vs_message" in p for p in problems)


def test_cold_rows_must_beat_message_with_near_zero_cpu():
    payload = good_multiget_payload()
    payload["rows"][2]["speedup_vs_message"] = 0.9
    assert any("0% hit rate" in p for p in validate_artifact(payload))
    payload = good_multiget_payload()
    payload["rows"][2]["server_cpu_ns_per_get"] = 500.0
    assert any("near-zero server CPU" in p
               for p in validate_artifact(payload))
    payload = good_multiget_payload()
    del payload["rows"][2]
    assert any("cold" in p for p in validate_artifact(payload))


def test_unknown_experiment_rejected():
    problems = validate_artifact({"experiment": "nope", "description": "d",
                                  "unit": "kops", "rows": [{}]})
    assert any("unknown experiment" in p for p in problems)


def test_cli_exit_codes(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(good_multiget_payload()))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main([str(good)]) == 0
    assert "ok" in capsys.readouterr().out
    assert main([str(good), str(bad)]) == 1
    assert main([]) == 2


def good_sweep_payload():
    return {
        "experiment": "server_sweep",
        "description": "d", "unit": "kops / ns-per-op",
        "rows": [
            {"conns": 32, "window": 16, "mode": "baseline", "kops": 150.0,
             "speedup": 1.0, "server_cpu_ns_per_op": 6000.0,
             "cpu_ratio": 1.0, "sweeps": 100, "probes": 10000,
             "resp_doorbells": 500},
            {"conns": 32, "window": 16, "mode": "all", "kops": 151.0,
             "speedup": 1.01, "server_cpu_ns_per_op": 1000.0,
             "cpu_ratio": 6.0, "sweeps": 120, "probes": 400,
             "resp_doorbells": 120},
        ],
    }


def test_good_sweep_payload_validates():
    assert validate_artifact(good_sweep_payload()) == []


def test_sweep_all_mode_must_win_2x_at_32_conns():
    payload = good_sweep_payload()
    payload["rows"][1]["cpu_ratio"] = 1.4
    assert any("2x" in p for p in validate_artifact(payload))


def test_sweep_needs_a_unity_baseline_row():
    payload = good_sweep_payload()
    payload["rows"][0]["cpu_ratio"] = 1.1
    assert any("baseline" in p for p in validate_artifact(payload))
