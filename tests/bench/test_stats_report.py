"""Bench stats containers and the table formatter."""

import math

import pytest

from repro.bench.report import format_series, format_table
from repro.bench.stats import LatencySummary, RunResult, summarize
from repro.sim import Tally


def test_summarize_tally_to_microseconds():
    t = Tally("lat")
    for v in (1000.0, 2000.0, 3000.0):
        t.observe(v)
    s = summarize(t)
    assert s.count == 3
    assert s.mean_us == pytest.approx(2.0)
    assert s.p50_us == pytest.approx(2.0)
    assert s.max_us == pytest.approx(3.0)
    assert "mean=2.0us" in str(s)


def test_summarize_empty():
    s = summarize(Tally("lat"))
    assert s.count == 0 and math.isnan(s.mean_us)
    assert str(s) == "n=0"


def test_run_result_throughput():
    r = RunResult(name="x", measured_ops=1000, duration_ns=1_000_000)
    assert r.throughput_mops == pytest.approx(1.0)
    assert r.throughput_kops == pytest.approx(1000.0)
    zero = RunResult(name="z", measured_ops=10, duration_ns=0)
    assert zero.throughput_mops == 0.0


def test_run_result_scaling_and_row():
    a = RunResult(name="a", measured_ops=2000, duration_ns=1_000_000)
    b = RunResult(name="b", measured_ops=1000, duration_ns=1_000_000)
    assert a.scaled_against(b) == pytest.approx(2.0)
    assert b.scaled_against(RunResult("0", 0, 1)) == math.inf
    row = a.row()
    assert row["name"] == "a" and row["throughput_mops"] == 2.0
    assert row["get_mean_us"] is None  # no latency recorded


def test_latency_summary_empty_factory():
    s = LatencySummary.empty()
    assert s.count == 0 and math.isnan(s.p99_us)


def test_format_table_alignment_and_missing():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}]
    out = format_table(rows, title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1] and "c" in lines[1]
    assert "-" in lines[2]
    assert "1" in lines[3] and "2.500" in lines[3]
    assert "10" in lines[4] and "x" in lines[4]


def test_format_table_empty_and_large_numbers():
    assert "(no rows)" in format_table([], title="E")
    out = format_table([{"n": 123456.0, "nan": math.nan, "none": None}])
    assert "123,456" in out and "nan" in out and "-" in out


def test_format_series():
    s = format_series("zipf", [1, 2, 3], [0.5, 1.0, 1.5], y_label="Mops")
    assert s.startswith("zipf [Mops]:")
    assert "(1, 0.500)" in s and "(3, 1.500)" in s
