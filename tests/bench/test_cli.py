"""The `python -m repro.bench` command-line harness."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_every_registered_name_is_unique_and_documented():
    assert len(EXPERIMENTS) >= 12
    for name, (title, fn, takes_scale) in EXPERIMENTS.items():
        assert title and callable(fn)
        assert isinstance(takes_scale, bool)


def test_unknown_figure_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["no-such-figure"])


def test_single_figure_runs_and_prints(capsys):
    rc = main(["ab-sleep", "--scale", "0.1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sleep backoff" in out.lower()
    assert "rows in" in out


def test_out_file_appended(tmp_path, capsys):
    target = tmp_path / "results.txt"
    assert main(["ab-ack", "--out", str(target)]) == 0
    first = target.read_text()
    assert "ack interval" in first
    assert main(["ab-ack", "--out", str(target)]) == 0
    assert len(target.read_text()) > len(first)  # appended, not replaced


def test_scale_flag_forwarded(capsys):
    rc = main(["fig11", "--scale", "0.06"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "remote-pointer" in out.lower() or "hit" in out.lower()
