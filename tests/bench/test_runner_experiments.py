"""The YCSB driver and tiny-scale smoke runs of every experiment."""

import pytest

from repro import HydraCluster
from repro.bench.experiments import (
    ablation_ack_interval,
    ablation_hash_table,
    ablation_numa,
    ablation_rptr_sharing,
    default_scale,
    fig2_mapreduce,
    fig3_sensemaking,
    fig9_overall,
    fig10_rdma_choices,
    fig11_hit_analysis,
    fig12_scale_out,
    fig12_scale_up,
    fig13_replication,
)
from repro.bench.runner import drive_ycsb, preload_hydra, run_hydra_ycsb
from repro.workloads.ycsb import YcsbSpec, YcsbWorkload

TINY = 0.06  # 600 ops


def tiny_workload(get_fraction=0.9, distribution="zipfian"):
    return YcsbWorkload(YcsbSpec(name="tiny", n_records=600, n_ops=600,
                                 get_fraction=get_fraction,
                                 distribution=distribution))


def test_preload_installs_every_record():
    wl = tiny_workload()
    cluster = HydraCluster(n_server_machines=1, shards_per_server=2)
    preload_hydra(cluster, wl)
    assert sum(len(s.store) for s in cluster.shards()) == 600


def test_drive_ycsb_measures_and_validates():
    wl = tiny_workload()
    cluster = HydraCluster(n_server_machines=1, shards_per_server=2)
    res = run_hydra_ycsb(cluster, wl, n_clients=4)
    assert res.measured_ops == pytest.approx(600 * 0.9, rel=0.08)
    assert res.throughput_mops > 0
    assert res.get_latency.count > 0
    assert res.get_latency.mean_us > 1.0
    assert "rptr" in res.extras


def test_drive_ycsb_update_only_has_no_get_latency():
    wl = tiny_workload(get_fraction=0.0)
    cluster = HydraCluster(n_server_machines=1, shards_per_server=2)
    res = run_hydra_ycsb(cluster, wl, n_clients=2)
    assert res.get_latency.count == 0
    assert res.update_latency.count > 0


def test_drive_ycsb_detects_missing_preload():
    wl = tiny_workload()
    cluster = HydraCluster(n_server_machines=1, shards_per_server=2)
    cluster.start()
    clients = [cluster.client()]
    with pytest.raises(AssertionError):
        drive_ycsb(cluster.sim, clients, wl)


def test_default_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2.5")
    assert default_scale() == 2.5
    monkeypatch.delenv("REPRO_SCALE")
    assert default_scale() == 1.0


# -- one tiny smoke per experiment: wiring + row schema, not shape ----------

def test_fig9_smoke():
    rows = fig9_overall(scale=TINY, n_clients=6,
                        systems=("hydradb", "memcached"),
                        subset=["(b) 90% GET zipf"])
    assert len(rows) == 2
    assert {r["system"] for r in rows} == {"hydradb", "memcached"}
    assert all(r["throughput_mops"] > 0 for r in rows)


def test_fig10_smoke():
    rows = fig10_rdma_choices(scale=TINY, n_clients=6,
                              subset=["(b) 90% GET zipf"],
                              variants=["RDMA Write Only", "Send/Recv"])
    assert len(rows) == 2


def test_fig11_smoke():
    rows = fig11_hit_analysis(scale=TINY, n_clients=6)
    assert len(rows) == 6
    assert all(r["successful_hits"] >= 0 for r in rows)


def test_fig12_smoke():
    rows = fig12_scale_out(scale=TINY, n_clients=6, server_counts=(1, 2),
                           subset=["(e) 90% GET unif"])
    assert [r["servers"] for r in rows] == [1, 2]
    assert rows[0]["normalized"] == 1.0
    rows = fig12_scale_up(scale=TINY, n_clients=6, shard_counts=(1, 2),
                          subset=["(e) 90% GET unif"])
    assert [r["shards"] for r in rows] == [1, 2]


def test_fig13_smoke():
    rows = fig13_replication(client_counts=(2,), inserts_per_client=20)
    assert len(rows) == 5
    base = [r for r in rows if r["protocol"] == "no replication"][0]
    assert base["overhead_pct"] == 0.0


def test_fig2_smoke():
    from repro.workloads import AppProfile
    rows = fig2_mapreduce(apps=(AppProfile("t", "hadoop", input_mb=16,
                                           compute_ns_per_mb=0, n_tasks=2),))
    assert rows[0]["speedup_rdma"] > 1


def test_fig3_smoke():
    rows = fig3_sensemaking(scale=0.2, engine_counts=(1, 2))
    assert len(rows) == 2 and rows[0]["ratio"] > 1


def test_ablation_smokes():
    assert len(ablation_hash_table(scale=TINY, n_clients=6)) == 2
    assert len(ablation_numa(scale=TINY, n_clients=6)) == 3
    assert len(ablation_rptr_sharing(scale=TINY, n_clients=4)) == 2
    assert len(ablation_ack_interval(intervals=(8, 32), inserts=30)) == 2


def test_experiments_regenerate_deterministically():
    a = fig11_hit_analysis(scale=TINY, n_clients=4)
    b = fig11_hit_analysis(scale=TINY, n_clients=4)
    assert a == b


def test_fig13_deterministic():
    a = fig13_replication(client_counts=(2,), inserts_per_client=15)
    b = fig13_replication(client_counts=(2,), inserts_per_client=15)
    assert a == b
