"""Machine: NUMA domains, cores, and an attachment point for a NIC.

Mirrors the paper's testbed nodes: 4 NUMA domains x 8 cores, one RDMA NIC
per machine shared by every process on it (which is what couples co-located
clients and servers in the Fig. 12 scale-out experiment).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..config import SimConfig
from ..sim import Simulator
from .cpu import Core, CoreExhausted
from .numa import NumaTopology

if TYPE_CHECKING:  # pragma: no cover
    from ..rdma.nic import Nic
    from ..rdma.tcp import TcpStack

__all__ = ["Machine"]


class Machine:
    """A cluster node."""

    def __init__(self, sim: Simulator, machine_id: int, config: SimConfig,
                 n_numa: int = 4, cores_per_numa: int = 8):
        self.sim = sim
        self.machine_id = machine_id
        self.config = config
        self.numa = NumaTopology(n_numa, config.cpu)
        self.cores: list[Core] = []
        cid = 0
        for dom in range(n_numa):
            for _ in range(cores_per_numa):
                self.cores.append(Core(sim, self, cid, dom))
                cid += 1
        #: Attached by the fabric / TCP network at cluster build time.
        self.nic: Optional["Nic"] = None
        self.tcp: Optional["TcpStack"] = None
        #: Offset of this machine's wall clock from simulated true time.
        #: Processes on the machine that consult a local clock (e.g. the
        #: client lease check) should read ``sim.now + clock_skew_ns``.
        #: Set by the chaos injector's clock_skew action; 0 = perfect NTP.
        self.clock_skew_ns: int = 0

    def allocate_core(self, owner: str,
                      numa_domain: Optional[int] = None) -> Core:
        """Pin a free core (optionally within one NUMA domain) to ``owner``."""
        for core in self.cores:
            if core.pinned:
                continue
            if numa_domain is not None and core.numa_domain != numa_domain:
                continue
            core.pin(owner)
            return core
        where = f" in NUMA domain {numa_domain}" if numa_domain is not None else ""
        raise CoreExhausted(
            f"machine {self.machine_id} has no free core{where} for {owner!r}"
        )

    def free_cores(self, numa_domain: Optional[int] = None) -> int:
        return sum(
            1
            for c in self.cores
            if not c.pinned
            and (numa_domain is None or c.numa_domain == numa_domain)
        )

    def least_loaded_domain(self) -> int:
        """NUMA domain with the most free cores (shard placement policy)."""
        best_dom, best_free = 0, -1
        for dom in range(self.numa.n_domains):
            free = self.free_cores(dom)
            if free > best_free:
                best_dom, best_free = dom, free
        return best_dom

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Machine {self.machine_id} cores={len(self.cores)}>"
