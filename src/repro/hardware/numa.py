"""NUMA topology and memory-access cost model.

HydraDB shards confine their arena and hash table to the NUMA domain of the
core they are pinned to (§4.1.2).  The ablation benchmark compares that
against interleaved allocation, where every access averages local and remote
latency across the memory controllers.
"""

from __future__ import annotations

from ..config import CpuConfig

__all__ = ["NumaTopology"]


class NumaTopology:
    """A machine's NUMA domains with uniform remote-access penalty."""

    def __init__(self, n_domains: int, cpu: CpuConfig):
        if n_domains < 1:
            raise ValueError("need at least one NUMA domain")
        self.n_domains = n_domains
        self.cpu = cpu

    def access_ns(self, cpu_domain: int, mem_domain: int, lines: int = 1) -> int:
        """Cost for ``lines`` cacheline fetches from ``mem_domain``."""
        self._check(cpu_domain)
        self._check(mem_domain)
        remote = cpu_domain != mem_domain
        return self.cpu.cacheline_ns(lines, remote=remote)

    def interleaved_ns(self, cpu_domain: int, lines: int = 1) -> int:
        """Cost under page-interleaved allocation: 1/N local, rest remote."""
        self._check(cpu_domain)
        if self.n_domains == 1:
            return self.cpu.cacheline_ns(lines, remote=False)
        local = self.cpu.cacheline_local_ns
        remote = self.cpu.cacheline_remote_ns
        avg = (local + (self.n_domains - 1) * remote) / self.n_domains
        return int(lines * avg)

    def _check(self, domain: int) -> None:
        if not (0 <= domain < self.n_domains):
            raise ValueError(
                f"NUMA domain {domain} out of range [0, {self.n_domains})"
            )
