"""Core model: pinning, exclusive ownership, busy-time accounting.

A :class:`Core` does not schedule — HydraDB pins exactly one shard thread
per core (§4.1.1), so a core either belongs to one process or is free.  The
busy gauge feeds the polling-CPU-overhead ablation.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from ..sim import Simulator, TimeWeighted
from ..sim.events import Event, PooledTimer

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

__all__ = ["Core", "CoreExhausted"]


class CoreExhausted(RuntimeError):
    """Raised when a machine has no free core for a new pinned thread."""


class Core:
    """One physical core within a NUMA domain."""

    def __init__(self, sim: Simulator, machine: "Machine", core_id: int,
                 numa_domain: int):
        self.sim = sim
        self.machine = machine
        self.core_id = core_id
        self.numa_domain = numa_domain
        self.owner: Optional[str] = None
        self.busy = TimeWeighted(f"core{core_id}.busy", sim)
        #: Rearmable timer recycled across execute() calls — poll loops
        #: burn one of these per probe instead of a fresh Timeout each.
        self._timer = PooledTimer(sim)

    @property
    def pinned(self) -> bool:
        return self.owner is not None

    def pin(self, owner: str) -> None:
        if self.owner is not None:
            raise CoreExhausted(
                f"core {self.core_id} already pinned to {self.owner!r}"
            )
        self.owner = owner

    def unpin(self) -> None:
        self.owner = None
        self.busy.set(0.0)

    def _busy_down(self, _ev: Event) -> None:
        self.busy.add(-1.0)

    def execute(self, cost_ns: int) -> Event:
        """Burn ``cost_ns`` of CPU; accounts busy time.

        Returns a timeout event; the calling process must yield it.  Zero
        cost is allowed and completes at the current instant.  The pooled
        timer is rearmed when idle; overlapping executions (a second call
        while the last firing is still in flight) fall back to a fresh
        Timeout so the returned event is always exclusively the caller's.
        """
        self.busy.add(1.0)
        timer = self._timer
        if timer.callbacks is None:
            ev: Event = timer.rearm(cost_ns)
        else:
            ev = self.sim.timeout(cost_ns)
        ev.callbacks.append(self._busy_down)
        return ev

    def run(self, cost_ns: int) -> Generator[Event, None, None]:
        """Generator form of :meth:`execute` for ``yield from`` call sites."""
        yield self.execute(cost_ns)

    def utilization(self) -> float:
        """Fraction of elapsed time this core spent executing."""
        return self.busy.time_average()

    def __repr__(self) -> str:  # pragma: no cover
        who = self.owner or "free"
        return f"<Core {self.core_id} numa={self.numa_domain} {who}>"
