"""Hardware model: machines, cores, NUMA domains."""

from .cpu import Core, CoreExhausted
from .machine import Machine
from .numa import NumaTopology

__all__ = ["Core", "CoreExhausted", "Machine", "NumaTopology"]
