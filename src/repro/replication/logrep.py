"""Primary-side replication: RDMA Logging and strict request/ack (§5.2).

Star-formed primary/backup: the primary drives every secondary directly.

**rdma_log mode** (the paper's contribution): each mutation is placed into
every secondary's exposed ring with one-sided RDMA Writes and the shard
moves on immediately — no per-record acknowledgement.  Every
``ack_interval`` records the primary appends an ACK_REQUEST; the returning
ack replenishes write credit and, if it reports a failure, triggers
rollback: every unacknowledged record is re-placed in order, then
re-solicited.  The shard blocks only when the ring is out of credit.

**strict mode** (the Fig. 13 baseline): every record is followed by an
ACK_REQUEST and the shard blocks until every secondary has applied it —
one full round trip plus secondary merge time per mutation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..config import SimConfig
from ..protocol import Op, RingFull, RingWriter
from ..rdma import MemoryRegion, QueuePair, RemotePointer
from ..sim import Gate, MetricSet, Simulator
from ..sim.events import Event
from ..core.shard import Shard
from .log import ACK_SLOT_BYTES, Ack, LogRecord, RecordType
from .secondary import SecondaryShard

__all__ = ["LogReplicator", "SecondaryLink"]


class SecondaryLink:
    """Primary-side state for one secondary."""

    def __init__(self, sim: Simulator, secondary: SecondaryShard,
                 qp: QueuePair, ring_rptr: RemotePointer,
                 ack_region: MemoryRegion, log_bytes: int):
        self.sim = sim
        self.secondary = secondary
        self.qp = qp
        self.ring_rptr = ring_rptr
        self.ack_region = ack_region
        self.writer = RingWriter(log_bytes)
        self.ack_doorbell = Gate(sim)
        ack_region.subscribe(lambda _r: self.ack_doorbell.fire())
        self.applied_seq = 0
        self.last_epoch = 0
        #: Records placed but not yet covered by an ack (for rollback).
        self.unacked: Deque[tuple[int, bytes]] = deque()
        #: Strict-mode waiters: (seq, event).
        self.waiters: list[tuple[int, Event]] = []
        self.resends = 0

    def place_and_write(self, payload: bytes) -> None:
        """Reserve ring space and issue the RDMA write(s). May raise RingFull."""
        for offset, blob in self.writer.place(payload):
            self.qp.post_write(self.ring_rptr.slice(offset, len(blob)), blob)


class LogReplicator:
    """Replicates one primary shard's mutations to its secondaries."""

    def __init__(self, sim: Simulator, config: SimConfig, primary: Shard,
                 metrics: Optional[MetricSet] = None):
        self.sim = sim
        self.config = config
        self.rep = config.replication
        if self.rep.mode not in ("rdma_log", "strict"):
            raise ValueError(f"unknown replication mode {self.rep.mode!r}")
        self.primary = primary
        self.metrics = metrics or MetricSet(sim)
        self.links: list[SecondaryLink] = []
        self.seq = 0
        self._last_ackreq_seq = 0
        self.alive = True
        primary.replicator = self

    # -- wiring ---------------------------------------------------------
    def add_secondary(self, secondary: SecondaryShard) -> SecondaryLink:
        """Connect a secondary: QP pair, ack slot, and the monitor process."""
        fabric = self.primary.nic.fabric
        primary_qp, secondary_qp = fabric.connect(self.primary.nic,
                                                  secondary.machine.nic)
        ack_region = MemoryRegion(ACK_SLOT_BYTES,
                                  name=f"{self.primary.shard_id}.ack"
                                       f"{len(self.links)}")
        self.primary.nic.register(ack_region)
        secondary.attach(secondary_qp,
                         RemotePointer(ack_region.rkey, 0, ACK_SLOT_BYTES))
        link = SecondaryLink(self.sim, secondary, primary_qp,
                             secondary.ring_rptr(), ack_region,
                             self.rep.log_bytes)
        self.links.append(link)
        self.sim.process(self._ack_monitor(link),
                         name=f"{self.primary.shard_id}.ackmon")
        return link

    # -- the shard-facing hook -----------------------------------------------
    def replicate(self, op: Op, key: bytes, value: bytes,
                  version: int) -> tuple[int, Optional[Event]]:
        """Returns (cpu_cost_ns, optional event the shard must wait on)."""
        if not self.links:
            return 0, None
        self.seq += 1
        record = LogRecord(rtype=RecordType.DATA, seq=self.seq, op=op,
                           key=key, value=value, version=version).encode()
        want_ack = (self.rep.mode == "strict"
                    or self.seq - self._last_ackreq_seq >= self.rep.ack_interval)
        # CPU: build + post one record per secondary, plus the ack request
        # when one is due — soliciting every record costs every record.
        cost = self.rep.post_cost_ns * len(self.links) * (2 if want_ack else 1)
        blocked: list[SecondaryLink] = []
        for link in self.links:
            try:
                link.place_and_write(record)
                link.unacked.append((self.seq, record))
            except RingFull:
                blocked.append(link)
        if want_ack and not blocked:
            self._solicit_acks()
        if self.rep.mode == "strict" or blocked:
            ev = self.sim.process(
                self._synchronize(self.seq, record, blocked),
                name=f"{self.primary.shard_id}.repwait",
            )
            return cost, ev
        self.metrics.counter("repl.records").add()
        return cost, None

    # -- internals ---------------------------------------------------------
    def _solicit_acks(self) -> None:
        ackreq = LogRecord.ack_request(self.seq).encode()
        for link in self.links:
            try:
                link.place_and_write(ackreq)
            except RingFull:
                # Credit will return via an earlier outstanding ack request.
                pass
        self._last_ackreq_seq = self.seq
        self.metrics.counter("repl.ack_requests").add()

    def _synchronize(self, seq: int, record: bytes,
                     blocked: list[SecondaryLink]):
        """Slow path: finish placement on full rings and/or await acks."""
        # First, push the record into any ring that was full.
        for link in blocked:
            while True:
                try:
                    link.place_and_write(record)
                    link.unacked.append((seq, record))
                    break
                except RingFull:
                    self._solicit_acks()
                    yield link.ack_doorbell.wait()
        if blocked:
            self._solicit_acks()
        if self.rep.mode != "strict":
            self.metrics.counter("repl.records").add()
            return
        # Strict: wait until every secondary has applied this sequence.
        for link in self.links:
            if link.applied_seq >= seq:
                continue
            ev = Event(self.sim)
            link.waiters.append((seq, ev))
            yield ev
        self.metrics.counter("repl.records").add()

    def _ack_monitor(self, link: SecondaryLink):
        """Consume ack-slot writes: credit, progress, rollback."""
        while self.alive:
            ack = Ack.decode(link.ack_region.read(0, ACK_SLOT_BYTES))
            if ack.epoch == link.last_epoch:
                yield link.ack_doorbell.wait()
                continue
            link.last_epoch = ack.epoch
            link.writer.ack(ack.consumed)
            link.applied_seq = max(link.applied_seq, ack.applied_seq)
            while link.unacked and link.unacked[0][0] <= link.applied_seq:
                link.unacked.popleft()
            if ack.failed and link.unacked:
                self._resend(link)
            if link.waiters:
                ready = [ev for s, ev in link.waiters
                         if s <= link.applied_seq]
                link.waiters = [(s, ev) for s, ev in link.waiters
                                if s > link.applied_seq]
                for ev in ready:
                    ev.succeed(None)
            # Doorbell may already hold another epoch; loop re-probes.

    def _resend(self, link: SecondaryLink) -> None:
        """Rollback: re-place every unacknowledged record, in order."""
        link.resends += 1
        self.metrics.counter("repl.resends").add()
        for _seq, payload in link.unacked:
            try:
                link.place_and_write(payload)
            except RingFull:  # pragma: no cover - ring sized to prevent this
                break
        try:
            link.place_and_write(LogRecord.ack_request(self.seq).encode())
        except RingFull:  # pragma: no cover
            pass

    @property
    def min_applied_seq(self) -> int:
        return min((l.applied_seq for l in self.links), default=self.seq)
