"""The secondary shard: Single-Writer Zero-Reader backup target (§5).

A secondary serves no client requests.  It exposes its replication ring to
one primary, and a dedicated merge thread polls the ring and folds records
into its own :class:`~repro.core.store.ShardStore`.  On a processing
failure (injectable for tests) it stops advancing ``applied_seq``,
discards subsequent records, and waits for the primary's ack request to
report the first failed sequence — exactly the §5.2 recovery protocol.

On promotion (SWAT failover) the merge thread stops and the store is
handed to a fresh primary :class:`~repro.core.shard.Shard`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import SimConfig
from ..hardware import Core, Machine
from ..protocol import RingReader
from ..rdma import MemoryRegion, QueuePair, RemotePointer
from ..sim import Gate, Interrupt, MetricSet, Simulator
from ..core.errors import LifecycleError
from ..core.store import ShardStore
from .log import Ack, LogRecord, RecordType

__all__ = ["SecondaryShard"]


class SecondaryShard:
    """A backup replica dedicated to a single primary."""

    def __init__(self, sim: Simulator, config: SimConfig, shard_id: str,
                 machine: Machine, core: Core,
                 metrics: Optional[MetricSet] = None,
                 fault_rng: Optional[np.random.Generator] = None):
        self.sim = sim
        self.config = config
        self.rep = config.replication
        self.cpu = config.cpu
        self.shard_id = shard_id
        self.machine = machine
        self.core = core
        self.metrics = metrics or MetricSet(sim)
        self.store = ShardStore(sim, config, machine.nic, core.numa_domain,
                                shard_id)
        self.ring_region = MemoryRegion(self.rep.log_bytes,
                                        numa_domain=core.numa_domain,
                                        name=f"{shard_id}.ring")
        machine.nic.register(self.ring_region)
        self.reader = RingReader(self.ring_region)
        self.doorbell = Gate(sim)
        self.ring_region.subscribe(lambda _r: self.doorbell.fire())
        #: Wired by the primary-side replicator at attach time.
        self.qp: Optional[QueuePair] = None
        self.ack_rptr: Optional[RemotePointer] = None
        self.applied_seq = 0
        self.failing = False
        self._ack_epoch = 0
        self._fault_rng = fault_rng
        #: Optional chaos hook (:class:`repro.chaos.FaultInjector`): when
        #: set, merge-time faults can be injected per record, exercising
        #: the failing-ack -> primary-resend recovery path under load.
        self.fault_injector = None
        self.alive = False
        self._proc = None

    # -- wiring ---------------------------------------------------------
    def ring_rptr(self) -> RemotePointer:
        return RemotePointer(self.ring_region.rkey, 0, self.rep.log_bytes)

    def attach(self, qp: QueuePair, ack_rptr: RemotePointer) -> None:
        self.qp = qp
        self.ack_rptr = ack_rptr

    def rebind(self) -> None:
        """Reset replication progress for attachment to a new primary.

        Clears any stale ring contents (frames from the dead primary) and
        restarts sequence tracking; the caller resynchronizes store state
        separately before records start flowing again.
        """
        self.ring_region.zero(0, self.ring_region.nbytes)
        self.reader = RingReader(self.ring_region)
        self.applied_seq = 0
        self.failing = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self.alive:
            raise LifecycleError(f"{self.shard_id} already running")
        self.alive = True
        self._proc = self.sim.process(self._merge_loop(), name=self.shard_id)
        if self.store.reclaimer._proc is None:
            self.store.reclaimer.start()

    def stop(self) -> None:
        """Halt the merge thread (promotion or teardown)."""
        self.alive = False
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stopped")

    def kill(self) -> None:
        self.stop()
        self.store.reclaimer.stop()

    def promote_drain(self) -> int:
        """Fold every in-sequence ring record into the store (promotion).

        Called by SWAT after stopping the merge thread and before wrapping
        this store in a fresh primary: writes the dead primary acked and
        replicated — but that the merge thread had not folded in yet — must
        not be lost in the handover, or a client would observe an acked
        write vanish across the failover.  Stops at the first gap exactly
        like the merge loop (a failing stream's tail is unrecoverable).
        Returns the number of records applied.
        """
        applied = 0
        while not self.failing:
            payload = self.reader.poll()
            if payload is None:
                break
            record = LogRecord.decode(payload)
            if record.rtype is RecordType.ACK_REQUEST:
                continue
            if record.seq != self.applied_seq + 1:
                break
            self.store.apply(record.op, record.key, record.value,
                             version=record.version)
            self.applied_seq = record.seq
            applied += 1
        if applied:
            self.metrics.counter("replica.drained").add(applied)
        return applied

    # -- merge thread -------------------------------------------------------
    def _should_fault(self) -> bool:
        if self.fault_injector is not None \
                and self.fault_injector.replication_fault(self):
            return True
        if self._fault_rng is None or self.rep.fault_probability <= 0:
            return False
        return bool(self._fault_rng.random() < self.rep.fault_probability)

    def _send_ack(self) -> None:
        if self.qp is None or self.ack_rptr is None:
            return
        self._ack_epoch += 1
        ack = Ack(applied_seq=self.applied_seq,
                  consumed=self.reader.consumed,
                  epoch=self._ack_epoch, failed=self.failing)
        self.qp.post_write(self.ack_rptr, ack.encode())

    def _merge_loop(self):
        try:
            while self.alive:
                payload = self.reader.poll()
                if payload is None:
                    yield self.doorbell.wait()
                    yield self.core.execute(self.rep.merge_poll_ns)
                    continue
                record = LogRecord.decode(payload)
                if record.rtype is RecordType.ACK_REQUEST:
                    # Reply whether healthy or failing; a failing reply
                    # carries the first missing sequence (applied+1).
                    yield self.core.execute(self.cpu.build_response_ns)
                    self._send_ack()
                    continue
                expected = self.applied_seq + 1
                if record.seq != expected or self._should_fault():
                    # Out-of-order (post-failure stream) or injected fault:
                    # stop advancing, discard until the primary resends the
                    # expected sequence (triggered by our failing ack).
                    self.failing = True
                    self.metrics.counter("replica.discarded").add()
                    continue
                result = self.store.apply(record.op, record.key, record.value,
                                          version=record.version)
                yield self.core.execute(result.cost_ns)
                self.applied_seq = record.seq
                self.failing = False
                self.metrics.counter("replica.applied").add()
        except Interrupt:
            self.alive = False

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SecondaryShard {self.shard_id} applied={self.applied_seq}>"
