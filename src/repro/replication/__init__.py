"""High-availability replication: RDMA logging, strict ack, secondaries."""

from .log import ACK_SLOT_BYTES, Ack, LogRecord, RecordType
from .logrep import LogReplicator, SecondaryLink
from .secondary import SecondaryShard

__all__ = [
    "LogRecord",
    "RecordType",
    "Ack",
    "ACK_SLOT_BYTES",
    "LogReplicator",
    "SecondaryLink",
    "SecondaryShard",
]
