"""Replication log records and acknowledgements (§5.2).

Records travel primary -> secondary inside the indicator-framed ring
buffer; acknowledgements travel secondary -> primary as a single RDMA
Write into a small ack slot registered on the primary.  Both are real byte
encodings.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

from ..protocol import Op

__all__ = ["RecordType", "LogRecord", "Ack", "ACK_SLOT_BYTES"]


class RecordType(IntEnum):
    DATA = 1
    ACK_REQUEST = 2


_REC = struct.Struct("<BBHIQQ")   # type, op, klen, vlen, seq, version
_ACK = struct.Struct("<QQQB7x")   # applied_seq, consumed, epoch, failed

ACK_SLOT_BYTES = 32


@dataclass(frozen=True)
class LogRecord:
    """One replicated mutation (or an ack solicitation)."""

    rtype: RecordType
    seq: int
    op: Op = Op.PUT
    key: bytes = b""
    value: bytes = b""
    version: int = 0

    def encode(self) -> bytes:
        return (
            _REC.pack(self.rtype, self.op, len(self.key), len(self.value),
                      self.seq, self.version)
            + self.key
            + self.value
        )

    @classmethod
    def decode(cls, data: bytes) -> "LogRecord":
        rtype, op, klen, vlen, seq, version = _REC.unpack_from(data, 0)
        base = _REC.size
        if len(data) != base + klen + vlen:
            raise ValueError("log record length mismatch")
        return cls(rtype=RecordType(rtype), seq=seq, op=Op(op),
                   key=data[base:base + klen],
                   value=data[base + klen:base + klen + vlen],
                   version=version)

    @classmethod
    def ack_request(cls, seq: int) -> "LogRecord":
        """Solicit an acknowledgement covering everything up to ``seq``."""
        return cls(rtype=RecordType.ACK_REQUEST, seq=seq)


@dataclass(frozen=True)
class Ack:
    """Secondary -> primary acknowledgement state.

    ``applied_seq`` is the highest contiguously applied record;
    ``consumed`` is the cumulative ring-byte count (write credit);
    ``failed`` signals that the secondary is discarding records and needs a
    resend starting at ``applied_seq + 1``.  ``epoch`` makes each ack write
    distinguishable from the previous slot contents.
    """

    applied_seq: int
    consumed: int
    epoch: int
    failed: bool = False

    def encode(self) -> bytes:
        return _ACK.pack(self.applied_seq, self.consumed, self.epoch,
                         int(self.failed))

    @classmethod
    def decode(cls, data: bytes) -> "Ack":
        applied, consumed, epoch, failed = _ACK.unpack_from(data, 0)
        return cls(applied_seq=applied, consumed=consumed, epoch=epoch,
                   failed=bool(failed))
