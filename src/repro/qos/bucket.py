"""Token-bucket admission control (per-tenant op rate limiting).

Plain arithmetic over integer-nanosecond clocks — no simulator
dependency, so the refill math is unit-testable directly and one bucket
can be shared by every handle of a tenant (the cluster facade keys
buckets by tenant name).
"""

from __future__ import annotations

import math

__all__ = ["TokenBucket"]


class TokenBucket:
    """A classic token bucket: ``rate_ops`` tokens/second, ``burst`` deep.

    The bucket starts full.  :meth:`take` either consumes the tokens and
    returns 0, or — without consuming anything — returns the number of
    nanoseconds until the requested tokens will have accrued, which is
    exactly the ``retry_after_ns`` hint carried by
    :class:`~repro.core.errors.TenantThrottled`.
    """

    __slots__ = ("rate_pns", "burst", "tokens", "last_ns")

    def __init__(self, rate_ops: float, burst: int = 32, now_ns: int = 0):
        if rate_ops <= 0:
            raise ValueError("rate_ops must be positive")
        #: Refill rate in tokens per nanosecond.
        self.rate_pns = rate_ops / 1e9
        self.burst = max(1.0, float(burst))
        self.tokens = self.burst
        self.last_ns = now_ns

    def refill(self, now_ns: int) -> None:
        """Accrue tokens for the time elapsed since the last refill."""
        if now_ns > self.last_ns:
            self.tokens = min(
                self.burst,
                self.tokens + (now_ns - self.last_ns) * self.rate_pns)
            self.last_ns = now_ns

    def take(self, now_ns: int, n: int = 1) -> int:
        """Consume ``n`` tokens at ``now_ns``.

        Returns 0 when the tokens were consumed; otherwise consumes
        nothing and returns the ns until ``n`` tokens will be available
        (the retry-after hint).  Monotonic ``now_ns`` is assumed (the
        simulator clock never goes backwards).
        """
        self.refill(now_ns)
        if self.tokens >= n:
            self.tokens -= n
            return 0
        deficit = n - self.tokens
        return max(1, math.ceil(deficit / self.rate_pns))

    @property
    def level(self) -> float:
        """Tokens available as of the last refill (diagnostics)."""
        return self.tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TokenBucket(rate={self.rate_pns * 1e9:.0f}/s, "
                f"burst={self.burst:.0f}, tokens={self.tokens:.2f})")
