"""AIMD self-tuning of the in-flight window from observed RTT.

Classic additive-increase / multiplicative-decrease over a smoothed-RTT
congestion signal, in the spirit of the outstanding-request management
discussion in the RDMA hash-table literature: too small a window leaves
doorbell/batching throughput on the table, too large a window queues
requests in the connection buffer and inflates tail latency without
adding throughput.  The controller holds the window at the knee by
cutting multiplicatively when the smoothed RTT inflates past a multiple
of the best RTT seen (queueing delay = congestion) or on loss (attempt
timeout), and probing upward by +1 after every ``probe_interval`` clean
completions.

Pure arithmetic — no simulator dependency; the client feeds it
``on_ack(rtt_ns)`` / ``on_loss()`` and reads ``window``.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..config import QosConfig

__all__ = ["AimdController"]


class AimdController:
    """One AIMD-governed window (per connection; message or read path)."""

    __slots__ = ("min_window", "max_window", "rtt_smooth", "rtt_inflation",
                 "decrease", "probe_interval", "window", "srtt", "best_rtt",
                 "_good", "_cooldown", "acks", "losses", "cuts")

    def __init__(self, min_window: int = 1, max_window: int = 64,
                 rtt_smooth: float = 0.125, rtt_inflation: float = 3.0,
                 decrease: float = 0.5, probe_interval: int = 8,
                 initial: Optional[int] = None):
        if not (0 < rtt_smooth <= 1):
            raise ValueError("rtt_smooth must be in (0, 1]")
        if rtt_inflation <= 1:
            raise ValueError("rtt_inflation must exceed 1")
        if not (0 < decrease < 1):
            raise ValueError("decrease must be in (0, 1)")
        self.min_window = max(1, min_window)
        self.max_window = max(self.min_window, max_window)
        self.rtt_smooth = rtt_smooth
        self.rtt_inflation = rtt_inflation
        self.decrease = decrease
        self.probe_interval = max(1, probe_interval)
        start = self.min_window if initial is None else initial
        self.window = min(self.max_window, max(self.min_window, start))
        self.srtt = 0.0
        self.best_rtt = float("inf")
        self._good = 0
        #: Acks to ignore after a cut, so one congestion episode — whose
        #: queued requests all carry inflated RTTs — costs one cut, not a
        #: collapse to min_window.
        self._cooldown = 0
        self.acks = 0
        self.losses = 0
        self.cuts = 0

    @classmethod
    def from_config(cls, qos: "QosConfig",
                    initial: Optional[int] = None) -> "AimdController":
        return cls(min_window=qos.aimd_min_window,
                   max_window=qos.aimd_max_window,
                   rtt_smooth=qos.aimd_rtt_smooth,
                   rtt_inflation=qos.aimd_rtt_inflation,
                   decrease=qos.aimd_decrease,
                   probe_interval=qos.aimd_probe_interval,
                   initial=initial)

    def on_ack(self, rtt_ns: int) -> None:
        """One completed request with the given round-trip time."""
        self.acks += 1
        if rtt_ns < self.best_rtt:
            self.best_rtt = rtt_ns
        a = self.rtt_smooth
        self.srtt = rtt_ns if self.srtt == 0.0 else (
            (1.0 - a) * self.srtt + a * rtt_ns)
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if self.srtt > self.rtt_inflation * self.best_rtt:
            self._cut()
            return
        self._good += 1
        if self._good >= self.probe_interval:
            self._good = 0
            if self.window < self.max_window:
                self.window += 1

    def on_loss(self) -> None:
        """An attempt timed out (response presumed lost)."""
        self.losses += 1
        if self._cooldown == 0:
            self._cut()

    def _cut(self) -> None:
        self.cuts += 1
        self.window = max(self.min_window, int(self.window * self.decrease))
        self._good = 0
        self._cooldown = self.window

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AimdController(window={self.window}, "
                f"srtt={self.srtt:.0f}ns, best={self.best_rtt:.0f}ns)")
