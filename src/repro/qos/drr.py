"""Deficit-round-robin fair queueing across tenants.

:class:`DeficitRoundRobin` is the pure scheduling math (Shreedhar &
Varghese DRR with unit-cost items and per-tenant weights) — no simulator
dependency, unit-testable by pushing items and popping grants.

:class:`SlotArbiter` wraps it into the client's slot-acquisition
protocol: tenant handles submit *tickets* for a message slot on a shared
connection pipeline; whenever capacity frees up (responses drained, a
waiter wakes), ``pump(capacity)`` grants tickets in DRR order and fires
each ticket's gate so its owning process resumes.  Granted-but-not-yet-
posted tickets reserve capacity (``outstanding``) so concurrent pumps at
one sim instant never over-grant the window.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from ..sim import Gate

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator

__all__ = ["DeficitRoundRobin", "SlotArbiter"]


class DeficitRoundRobin:
    """Weighted DRR over named per-tenant FIFO queues (unit-cost items).

    Each round a tenant's deficit grows by ``quantum * weight``; items
    are served while the deficit covers their (unit) cost.  A tenant
    whose queue empties leaves the round ring and forfeits its deficit,
    so idle tenants cannot bank credit — the standard DRR property that
    bounds any backlogged tenant's service share to its weight share.
    """

    def __init__(self, quantum: float = 1.0):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._queues: dict[str, deque] = {}
        self._weights: dict[str, float] = {}
        self._deficit: dict[str, float] = {}
        #: Active (backlogged) tenants in round order; head is served next.
        self._ring: deque[str] = deque()
        #: Tenants already topped up on the current ring visit.
        self._topped: set[str] = set()

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def pending(self, tenant: str) -> int:
        q = self._queues.get(tenant)
        return len(q) if q else 0

    @property
    def tenants(self) -> list[str]:
        """Backlogged tenants in current round order."""
        return list(self._ring)

    def enqueue(self, tenant: str, item, weight: float = 1.0) -> None:
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
        self._weights[tenant] = max(weight, 1e-9)
        if not q and tenant not in self._ring:
            self._ring.append(tenant)
            self._deficit.setdefault(tenant, 0.0)
        q.append(item)

    def remove(self, tenant: str, item) -> bool:
        """Withdraw a queued item (e.g. a cancelled ticket)."""
        q = self._queues.get(tenant)
        if not q:
            return False
        try:
            q.remove(item)
        except ValueError:
            return False
        return True

    def next(self, eligible=None):
        """Serve the next ``(tenant, item)`` in DRR order, or ``None``.

        ``eligible`` (optional predicate on the tenant name) lets the
        caller veto tenants mid-round — the slot arbiter uses it to skip
        tenants already at their weighted occupancy share.  A vetoed
        tenant rotates to the ring tail without being served; when every
        backlogged tenant is vetoed the call returns ``None``.
        """
        ring = self._ring
        skipped = 0
        while ring and skipped < len(ring):
            tenant = ring[0]
            q = self._queues.get(tenant)
            if not q:
                # Queue drained (served dry or items withdrawn): leave
                # the round and forfeit the unspent deficit.
                ring.popleft()
                self._topped.discard(tenant)
                self._deficit[tenant] = 0.0
                continue
            if eligible is not None and not eligible(tenant):
                ring.rotate(-1)
                self._topped.discard(tenant)
                skipped += 1
                continue
            if tenant not in self._topped:
                self._deficit[tenant] += self.quantum * self._weights[tenant]
                self._topped.add(tenant)
            if self._deficit[tenant] >= 1.0:
                item = q.popleft()
                self._deficit[tenant] -= 1.0
                if not q:
                    ring.popleft()
                    self._topped.discard(tenant)
                    self._deficit[tenant] = 0.0
                return tenant, item
            # Deficit spent: rotate to the tail for the next round.
            ring.rotate(-1)
            self._topped.discard(tenant)
        return None


class _Ticket:
    """One pending slot acquisition by one tenant handle."""

    __slots__ = ("tenant", "gate", "granted", "done")

    def __init__(self, tenant: str, gate: Gate):
        self.tenant = tenant
        self.gate = gate
        self.granted = False
        self.done = False


class SlotArbiter:
    """DRR arbitration of message-slot grants on one connection pipeline.

    Protocol (see ``HydraClient._acquire_slot``): ``submit()`` a ticket,
    then loop — ``pump(avail, total)``, check ``ticket.granted``,
    otherwise block on the ticket's gate / the connection doorbell / the
    deadline.  Whoever frees capacity also pumps, so grants happen in
    DRR order no matter which process wakes first.  ``consume()``
    converts a grant into a real in-flight request; ``release()``
    returns the slot when its response lands (or times out);
    ``cancel()`` returns a grant (or withdraws a queued ticket) when
    the waiter gives up.

    Beyond grant *order*, the arbiter enforces weighted *occupancy*:
    while several tenants are active (waiting or with slots in flight),
    each is capped at its weight's share of the total window, so an
    aggressor that pipelines deeply cannot hold more than its share of
    slots no matter how fast it re-submits.  The moment a tenant goes
    fully idle it leaves the active set and its share spills to the
    rest — work-conserving across tenant busy periods.
    """

    def __init__(self, sim: "Simulator", quantum: float = 1.0):
        self.sim = sim
        self.drr = DeficitRoundRobin(quantum)
        #: Grants not yet consumed: reserved capacity.
        self.outstanding = 0
        #: Total grants ever issued (fairness accounting).
        self.grants = 0
        #: Per-tenant grant counters (slot-share fairness metrics).
        self.grants_by_tenant: dict[str, int] = {}
        #: Per-tenant slots currently in flight (consumed, not released).
        self.inflight: dict[str, int] = {}
        #: Per-tenant grants not yet consumed (reserved slots).
        self.reserved: dict[str, int] = {}

    def submit(self, tenant: str, weight: float = 1.0) -> _Ticket:
        ticket = _Ticket(tenant, Gate(self.sim))
        self.drr.enqueue(tenant, ticket, weight=weight)
        return ticket

    def waiting(self) -> int:
        return len(self.drr)

    def occupancy(self, tenant: str) -> int:
        """Slots this tenant holds right now (in flight + reserved)."""
        return (self.inflight.get(tenant, 0)
                + self.reserved.get(tenant, 0))

    def _caps(self, total: int) -> Optional[dict[str, float]]:
        """Weighted occupancy cap per active tenant (None = no cap).

        Active = backlogged in the DRR ring or holding slots.  With one
        (or zero) active tenants there is nothing to share, so no cap.
        """
        active = set(self.drr.tenants)
        for tenant, n in self.inflight.items():
            if n > 0:
                active.add(tenant)
        for tenant, n in self.reserved.items():
            if n > 0:
                active.add(tenant)
        if len(active) < 2:
            return None
        wsum = sum(self.drr._weights.get(t, 1.0) for t in active)
        return {t: max(1.0, total * self.drr._weights.get(t, 1.0) / wsum)
                for t in active}

    def pump(self, avail: int, total: Optional[int] = None) -> int:
        """Grant up to ``avail - outstanding`` tickets in DRR order,
        holding every tenant under its weighted share of ``total``
        (defaults to ``avail``) while others are active."""
        avail -= self.outstanding
        caps = self._caps(total if total is not None else avail)
        eligible = (None if caps is None else
                    (lambda t: self.occupancy(t) < caps.get(t, float("inf"))))
        n = 0
        while avail > 0:
            nxt = self.drr.next(eligible=eligible)
            if nxt is None:
                break
            tenant, ticket = nxt
            ticket.granted = True
            self.outstanding += 1
            self.reserved[tenant] = self.reserved.get(tenant, 0) + 1
            self.grants += 1
            self.grants_by_tenant[tenant] = (
                self.grants_by_tenant.get(tenant, 0) + 1)
            ticket.gate.fire(ticket)
            avail -= 1
            n += 1
        return n

    def consume(self, ticket: _Ticket) -> None:
        """The granted ticket's request is now posted; release the hold."""
        if ticket.done:
            return
        ticket.done = True
        self.outstanding -= 1
        if self.reserved.get(ticket.tenant, 0) > 0:
            self.reserved[ticket.tenant] -= 1
        self.inflight[ticket.tenant] = (
            self.inflight.get(ticket.tenant, 0) + 1)

    def release(self, tenant: str) -> None:
        """A posted request's slot freed (response landed / timed out)."""
        if self.inflight.get(tenant, 0) > 0:
            self.inflight[tenant] -= 1

    def cancel(self, ticket: _Ticket) -> None:
        """Waiter gave up (deadline): withdraw or return the grant."""
        if ticket.done:
            return
        ticket.done = True
        if ticket.granted:
            self.outstanding -= 1
            if self.reserved.get(ticket.tenant, 0) > 0:
                self.reserved[ticket.tenant] -= 1
        else:
            self.drr.remove(ticket.tenant, ticket)
