"""Traffic engineering for multi-tenant clients (PR 8).

Three deterministic building blocks, wired into the client library by
:mod:`repro.core.client` / :mod:`repro.core.api`:

* :class:`TokenBucket` — per-tenant admission control at op-issue time;
  an empty bucket yields a ``retry_after_ns`` hint the retry engine
  honors (sleep under the deadline budget, or raise
  :class:`~repro.core.errors.TenantThrottled`).
* :class:`DeficitRoundRobin` / :class:`SlotArbiter` — fair queueing of
  pending message-slot acquisitions across tenants sharing one
  connection pipeline, so an aggressor cannot monopolize the in-flight
  window.
* :class:`AimdController` — additive-increase / multiplicative-decrease
  self-tuning of the per-connection in-flight and read windows from
  observed RTT (``qos.autotune``), replacing the static
  ``client.max_inflight_*`` caps.

The math classes are simulator-free (unit-testable with plain ints);
only :class:`SlotArbiter` touches sim primitives (a broadcast
:class:`~repro.sim.Gate` per ticket).
"""

from .aimd import AimdController
from .bucket import TokenBucket
from .drr import DeficitRoundRobin, SlotArbiter

__all__ = [
    "AimdController",
    "DeficitRoundRobin",
    "SlotArbiter",
    "TokenBucket",
]
