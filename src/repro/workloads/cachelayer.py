"""The HDFS cache layer of §2.1: prefetch, serve, evict.

The paper deploys HydraDB as a *cache* in front of HDFS: a thin layer
"takes responsibility to prefetch input from HDFS into a HydraDB cluster,
service the I/O requests from upper-layer applications, [and] conduct
eviction".  HydraDB itself stays a plain reliable KV store (§1: usable
"either as a cache or a reliable storage system" — the cache policy lives
here, above the store).

:class:`CacheLayer` keeps an LRU over chunk keys with a chunk-capacity
bound; reads that miss are demand-filled from the backing source (paying
the slow-path fetch latency), evicting the coldest chunk first when full.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from ..core import HydraClient
from ..protocol import Status

__all__ = ["CacheLayer", "CacheStats"]


class CacheStats:
    __slots__ = ("hits", "misses", "evictions", "prefetched")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.prefetched = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "prefetched": self.prefetched,
                "hit_rate": self.hit_rate}


class CacheLayer:
    """LRU chunk cache over a HydraDB client.

    ``source_fetch_ns(key) -> (delay_ns, value_bytes)`` models the backing
    store (HDFS): how long a miss takes and what it returns.
    """

    def __init__(self, client: HydraClient, capacity_chunks: int,
                 source_fetch_ns: Callable[[bytes], tuple[int, bytes]]):
        if capacity_chunks <= 0:
            raise ValueError("capacity must be positive")
        self.client = client
        self.sim = client.sim
        self.capacity = capacity_chunks
        self.source_fetch_ns = source_fetch_ns
        #: LRU order: oldest first. Values are unused (key set only).
        self._lru: "OrderedDict[bytes, None]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key: bytes) -> bool:
        return key in self._lru

    # -- internals (generators: they drive the KV protocol) ----------------
    def _touch(self, key: bytes) -> None:
        self._lru.move_to_end(key)

    def _admit(self, key: bytes, value: bytes):
        while len(self._lru) >= self.capacity:
            victim, _ = self._lru.popitem(last=False)
            status = yield from self.client.delete(victim)
            if status is Status.OK:
                self.stats.evictions += 1
        status = yield from self.client.put(key, value)
        if status is not Status.OK:
            raise RuntimeError(f"cache admit failed: {status.name}")
        self._lru[key] = None

    # -- public API ------------------------------------------------------
    def prefetch(self, keys):
        """§2.1 prefetch phase: pull chunks from the source into the cache
        (evicting as needed). Run as a generator."""
        for key in keys:
            if key in self._lru:
                self._touch(key)
                continue
            delay, value = self.source_fetch_ns(key)
            yield self.sim.timeout(delay)
            yield from self._admit(key, value)
            self.stats.prefetched += 1

    def read(self, key: bytes):
        """Serve a chunk: HydraDB fast path on hit, demand-fill on miss."""
        if key in self._lru:
            value = yield from self.client.get(key)
            if value is not None:
                self._touch(key)
                self.stats.hits += 1
                return value
            # Raced with an eviction/delete elsewhere: fall through.
            self._lru.pop(key, None)
        self.stats.misses += 1
        delay, value = self.source_fetch_ns(key)
        yield self.sim.timeout(delay)
        yield from self._admit(key, value)
        return value

    def invalidate(self, key: bytes):
        """Drop a chunk (e.g. the underlying HDFS file changed)."""
        if key in self._lru:
            self._lru.pop(key)
            yield from self.client.delete(key)
