"""G2 Sensemaking analytics model (§2.2, Fig. 3).

G2 engines continuously assert over incoming observations: each event
resolves entities (a few GETs), then persists derived assertions (a PUT).
The paper replaces the relational store (DB2-class, "in-memory database")
with HydraDB and observes that 4x more engines operate effectively,
with up to an order of magnitude more throughput.

The :class:`InMemoryDatabase` baseline models the relational engine's
architecture: kernel TCP, a bounded executor pool, per-statement SQL
processing costs, and a commit lock serializing writers — the components
that cap its useful concurrency regardless of added engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import SimConfig
from ..core import HydraCluster
from ..hardware import Machine
from ..sim import MetricSet, Mutex, Resource, Simulator
from ..workloads.keys import make_key, make_value

__all__ = ["G2Profile", "InMemoryDatabase", "DbClient", "run_engines"]

DB_PORT = 50000


@dataclass(frozen=True)
class G2Profile:
    """Per-event work of a G2 engine."""

    lookups_per_event: int = 3
    writes_per_event: int = 1
    compute_ns_per_event: int = 5_000
    entity_space: int = 20_000
    value_len: int = 64


class InMemoryDatabase:
    """Relational baseline: executor pool + statement cost + commit lock."""

    STATEMENT_NS = 18_000       # parse/plan/execute one point statement
    COMMIT_LOCK_NS = 25_000     # serialized commit + log section per write

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 executors: int = 4,
                 metrics: Optional[MetricSet] = None):
        self.sim = sim
        self.config = config
        self.machine = machine
        self.metrics = metrics or MetricSet(sim)
        self.tables: dict[bytes, bytes] = {}
        self.executors = Resource(sim, capacity=executors)
        self.commit_lock = Mutex(sim)
        self._listener = machine.tcp.listen(DB_PORT)
        sim.process(self._acceptor(), name="db.accept")

    def _acceptor(self):
        while True:
            conn = yield self._listener.get()
            self.sim.process(self._session(conn), name="db.session")

    def _session(self, conn):
        while conn.open:
            (op, key, value), _n = yield conn.recv()
            slot = self.executors.request()
            yield slot
            yield self.sim.timeout(self.STATEMENT_NS)
            self.metrics.counter("db.statements").add()
            if op == "select":
                result = self.tables.get(key)
            else:
                lock = self.commit_lock.request()
                yield lock
                yield self.sim.timeout(self.COMMIT_LOCK_NS)
                self.tables[key] = value
                self.commit_lock.release(lock)
                result = b"OK"
            nbytes = 64 + (len(result) if result else 0)
            yield conn.send(result, nbytes)
            self.executors.release(slot)


class DbClient:
    """SQL-over-TCP client with the same get/put surface as HydraClient."""

    def __init__(self, sim: Simulator, machine: Machine,
                 db: InMemoryDatabase):
        self.sim = sim
        self.machine = machine
        self.db = db
        self._conn = None

    def _call(self, op, key, value):
        if self._conn is None:
            self._conn = yield self.machine.tcp.connect(
                self.db.machine.tcp, DB_PORT)
        yield self._conn.send((op, key, value), 64 + len(key) + len(value))
        result, _n = yield self._conn.recv()
        return result

    def get(self, key: bytes):
        """SELECT by primary key."""
        return (yield from self._call("select", key, b""))

    def put(self, key: bytes, value: bytes):
        """UPSERT a row."""
        return (yield from self._call("upsert", key, value))


def run_engines(sim: Simulator, clients, profile: G2Profile,
                events_per_engine: int,
                rng_seed: int = 7) -> tuple[float, int]:
    """Drive one engine per client; returns (events/sec, elapsed_ns).

    Works for both HydraDB clients and :class:`DbClient` instances.
    """
    import numpy as np

    start = sim.now
    total_events = 0

    def engine(eid: int, client):
        nonlocal total_events
        rng = np.random.default_rng(rng_seed + eid)
        lookups = rng.integers(0, profile.entity_space,
                               size=(events_per_engine,
                                     profile.lookups_per_event))
        for e in range(events_per_engine):
            for li in lookups[e]:
                yield from client.get(make_key(int(li)))
            yield sim.timeout(profile.compute_ns_per_event)
            for w in range(profile.writes_per_event):
                key = make_key(int(lookups[e][w % profile.lookups_per_event]))
                yield from client.put(key, make_value(e, profile.value_len))
            total_events += 1

    procs = [sim.process(engine(i, c), name=f"g2.e{i}")
             for i, c in enumerate(clients)]
    sim.run(until=sim.all_of(procs))
    elapsed = max(1, sim.now - start)
    return total_events / (elapsed / 1e9), elapsed


def preload_entities(store_put, profile: G2Profile) -> None:
    """Install the entity universe via a ``store_put(key, value)`` callable."""
    for i in range(profile.entity_space):
        store_put(make_key(i), make_value(i, profile.value_len))


def hydra_g2_cluster(config: Optional[SimConfig] = None,
                     shards: int = 4) -> HydraCluster:
    """A HydraDB deployment sized for the G2 experiment."""
    cluster = HydraCluster(config=config or SimConfig(),
                           n_server_machines=1, shards_per_server=shards,
                           n_client_machines=4)
    return cluster


__all__.append("preload_entities")
__all__.append("hydra_g2_cluster")
