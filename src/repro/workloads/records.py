"""Columnar-record codec for the G2 integration (§2.2).

The paper reorganizes relational tables as key-value structures "with the
help of protobuf to extract attributes residing in different columns".
This module provides that piece: a tiny schema-driven, tag-length-value
codec (protobuf-flavoured, no external dependency) that flattens a typed
record into the value bytes of a key-value pair and back.

Supported field types: ``int`` (zig-zag varint), ``str`` (UTF-8), and
``bytes``.  Unknown tags are skipped on decode, so schema evolution
(adding fields) is backward compatible, like protobuf's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

__all__ = ["Field", "RecordSchema", "RecordError"]

_WIRE_VARINT = 0
_WIRE_BYTES = 1


class RecordError(Exception):
    """Malformed record bytes or schema violation."""


@dataclass(frozen=True)
class Field:
    """One schema column: wire tag, name, and Python type."""

    tag: int
    name: str
    ftype: type  # int | str | bytes

    def __post_init__(self):
        if not 1 <= self.tag <= 0x1FFFFFFF:
            raise ValueError(f"tag {self.tag} out of range")
        if self.ftype not in (int, str, bytes):
            raise ValueError(f"unsupported field type {self.ftype!r}")


def _encode_zigzag(n: int) -> int:
    return (n << 1) if n >= 0 else (((-n) << 1) - 1)


def _decode_zigzag(z: int) -> int:
    return (z >> 1) if (z & 1) == 0 else -((z + 1) >> 1)


def _write_varint(out: bytearray, n: int) -> None:
    if n < 0:
        raise RecordError("varint must be non-negative")
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    shift = 0
    result = 0
    while True:
        if pos >= len(data):
            raise RecordError("truncated varint")
        b = data[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise RecordError("varint too long")


class RecordSchema:
    """An ordered set of typed fields with tag-based wire format."""

    def __init__(self, name: str, fields: Iterable[Field]):
        self.name = name
        self.fields = tuple(fields)
        tags = [f.tag for f in self.fields]
        names = [f.name for f in self.fields]
        if len(set(tags)) != len(tags):
            raise ValueError("duplicate field tags")
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names")
        self._by_tag = {f.tag: f for f in self.fields}
        self._by_name = {f.name: f for f in self.fields}

    def encode(self, record: dict[str, Any]) -> bytes:
        """Serialize; missing fields are omitted (decoded as absent)."""
        out = bytearray()
        for field in self.fields:
            if field.name not in record:
                continue
            value = record[field.name]
            if field.ftype is int:
                if not isinstance(value, int) or isinstance(value, bool):
                    raise RecordError(
                        f"{field.name}: expected int, got {type(value)}")
                _write_varint(out, (field.tag << 3) | _WIRE_VARINT)
                _write_varint(out, _encode_zigzag(value))
            else:
                if field.ftype is str:
                    if not isinstance(value, str):
                        raise RecordError(
                            f"{field.name}: expected str, got {type(value)}")
                    blob = value.encode("utf-8")
                else:
                    if not isinstance(value, (bytes, bytearray)):
                        raise RecordError(
                            f"{field.name}: expected bytes, got "
                            f"{type(value)}")
                    blob = bytes(value)
                _write_varint(out, (field.tag << 3) | _WIRE_BYTES)
                _write_varint(out, len(blob))
                out += blob
        return bytes(out)

    def decode(self, data: bytes) -> dict[str, Any]:
        """Parse; unknown tags are skipped (forward compatibility)."""
        record: dict[str, Any] = {}
        pos = 0
        while pos < len(data):
            header, pos = _read_varint(data, pos)
            tag, wire = header >> 3, header & 0x7
            if wire == _WIRE_VARINT:
                z, pos = _read_varint(data, pos)
                value: Any = _decode_zigzag(z)
            elif wire == _WIRE_BYTES:
                length, pos = _read_varint(data, pos)
                if pos + length > len(data):
                    raise RecordError("truncated bytes field")
                value = data[pos:pos + length]
                pos += length
            else:
                raise RecordError(f"unknown wire type {wire}")
            field = self._by_tag.get(tag)
            if field is None:
                continue  # schema evolution: skip unknown fields
            if field.ftype is int:
                if wire != _WIRE_VARINT:
                    raise RecordError(f"{field.name}: wire type mismatch")
                record[field.name] = value
            elif field.ftype is str:
                if wire != _WIRE_BYTES:
                    raise RecordError(f"{field.name}: wire type mismatch")
                record[field.name] = value.decode("utf-8")
            else:
                if wire != _WIRE_BYTES:
                    raise RecordError(f"{field.name}: wire type mismatch")
                record[field.name] = value
        return record

    def key_for(self, table: str, primary_key: Any) -> bytes:
        """The KV key a row maps to (table-qualified)."""
        return f"{table}/{primary_key}".encode("utf-8")
