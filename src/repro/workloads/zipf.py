"""Zipfian and scrambled-Zipfian generators (YCSB-compatible).

Implements the Gray et al. "Quickly generating billion-record synthetic
databases" sampler used by YCSB: O(1) per draw after a one-time zeta
precomputation (vectorized with NumPy so 60 M-class cardinalities stay
tractable).  The *scrambled* variant hashes ranks over the keyspace so the
popular items are spread across partitions — exactly what YCSB feeds the
paper's evaluation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfianGenerator", "ScrambledZipfianGenerator", "zeta"]

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def zeta(n: int, theta: float) -> float:
    """Generalized harmonic number sum_{i=1..n} 1/i^theta (vectorized)."""
    if n <= 0:
        raise ValueError("n must be positive")
    total = 0.0
    # Chunked to bound peak memory for very large n.
    step = 10_000_000
    for lo in range(1, n + 1, step):
        hi = min(n, lo + step - 1)
        i = np.arange(lo, hi + 1, dtype=np.float64)
        total += float(np.sum(i ** -theta))
    return total


class ZipfianGenerator:
    """Ranks in [0, n) with P(rank=k) proportional to 1/(k+1)^theta."""

    def __init__(self, n: int, theta: float = 0.99,
                 rng: np.random.Generator | None = None):
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self.rng = rng or np.random.default_rng()
        self.zetan = zeta(n, theta)
        self.zeta2 = zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        if n == 2:
            # Gray's eta degenerates to 0/0 at n=2; the limit is 1.
            self.eta = 1.0
        else:
            self.eta = ((1.0 - (2.0 / n) ** (1.0 - theta))
                        / (1.0 - self.zeta2 / self.zetan))

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` ranks (vectorized Gray et al. inversion)."""
        u = self.rng.random(size)
        uz = u * self.zetan
        ranks = (self.n * (self.eta * u - self.eta + 1.0) ** self.alpha)
        ranks = ranks.astype(np.int64)
        ranks = np.where(uz < 1.0, 0, ranks)
        ranks = np.where((uz >= 1.0) & (uz < 1.0 + 0.5 ** self.theta),
                         1, ranks)
        return np.clip(ranks, 0, self.n - 1)

    def one(self) -> int:
        return int(self.sample(1)[0])


class ScrambledZipfianGenerator:
    """Zipfian ranks scrambled over the keyspace by a 64-bit mix."""

    def __init__(self, n: int, theta: float = 0.99,
                 rng: np.random.Generator | None = None):
        self.n = n
        self.base = ZipfianGenerator(n, theta, rng)

    @staticmethod
    def _mix(x: np.ndarray) -> np.ndarray:
        """splitmix64 finalizer, vectorized over uint64."""
        with np.errstate(over="ignore"):
            x = x.astype(np.uint64)
            x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            x &= _MASK
            x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            x &= _MASK
            return x ^ (x >> np.uint64(31))

    def sample(self, size: int) -> np.ndarray:
        ranks = self.base.sample(size)
        return (self._mix(ranks) % np.uint64(self.n)).astype(np.int64)

    def one(self) -> int:
        return int(self.sample(1)[0])


class UniformGenerator:
    """Uniform key indices, same interface as the Zipfian generators."""

    def __init__(self, n: int, rng: np.random.Generator | None = None):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.rng = rng or np.random.default_rng()

    def sample(self, size: int) -> np.ndarray:
        return self.rng.integers(0, self.n, size=size, dtype=np.int64)

    def one(self) -> int:
        return int(self.sample(1)[0])


__all__.append("UniformGenerator")
