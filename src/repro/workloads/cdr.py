"""Call Data Record processing model (§2.3).

Telecom stream Processing Elements (PEs) perform subscriber lookups and
CDR updates against the store under hard service objectives: aggregate
throughput of millions of accesses per second with latencies no worse
than hundreds of microseconds.  Subscriber reference data is loaded
periodically; PEs then issue a lookup-heavy mix.

This module generates the workload and checks the SLOs — it backs the
``examples/call_records.py`` scenario and the CDR integration test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import HydraCluster
from ..protocol import Op
from ..sim import Simulator, Tally
from .keys import make_key, make_value

__all__ = ["CdrProfile", "CdrReport", "load_subscribers", "run_pes"]


@dataclass(frozen=True)
class CdrProfile:
    """Shape of the CDR stream."""

    n_subscribers: int = 50_000
    lookup_fraction: float = 0.85   # user-ID lookups vs CDR updates
    value_len: int = 48
    #: SLOs from §2.3: >= millions of accesses/s, <= hundreds of us.
    slo_throughput_mops: float = 1.0
    slo_p99_us: float = 300.0


@dataclass
class CdrReport:
    """Measured throughput/latency vs the §2.3 service objectives."""

    throughput_mops: float
    lookup_p99_us: float
    update_p99_us: float
    ops: int

    def meets(self, profile: CdrProfile) -> bool:
        """Whether both SLOs (throughput floor, p99 ceiling) hold."""
        worst = max(self.lookup_p99_us, self.update_p99_us)
        return (self.throughput_mops >= profile.slo_throughput_mops
                and worst <= profile.slo_p99_us)


def load_subscribers(cluster: HydraCluster, profile: CdrProfile) -> None:
    """Periodic reference-data load: install every subscriber record."""
    for i in range(profile.n_subscribers):
        key = make_key(i)
        shard = cluster.route(key)
        result = shard.store.upsert(key, make_value(i, profile.value_len),
                                    Op.PUT)
        if result.status.name != "OK":
            raise RuntimeError(f"subscriber load failed at {i}")


def run_pes(cluster: HydraCluster, profile: CdrProfile, n_pes: int,
            ops_per_pe: int, seed: int = 11) -> CdrReport:
    """Drive ``n_pes`` processing elements; returns the SLO report."""
    sim: Simulator = cluster.sim
    lookup_lat = Tally("cdr.lookup")
    update_lat = Tally("cdr.update")
    n_machines = len(cluster.client_machines)
    start_after_warm = {"t": None}

    def pe(pid: int):
        client = cluster.client(pid % n_machines)
        rng = np.random.default_rng(seed + pid)
        subs = rng.integers(0, profile.n_subscribers, size=ops_per_pe)
        is_lookup = rng.random(ops_per_pe) < profile.lookup_fraction
        warm = max(1, ops_per_pe // 10)
        for j in range(ops_per_pe):
            if j == warm and start_after_warm["t"] is None:
                start_after_warm["t"] = sim.now
            key = make_key(int(subs[j]))
            t0 = sim.now
            if is_lookup[j]:
                value = yield from client.get(key)
                assert value is not None
                if j >= warm:
                    lookup_lat.observe(sim.now - t0)
            else:
                yield from client.update(
                    key, make_value(int(subs[j]), profile.value_len))
                if j >= warm:
                    update_lat.observe(sim.now - t0)

    procs = [sim.process(pe(i), name=f"cdr.pe{i}") for i in range(n_pes)]
    sim.run(until=sim.all_of(procs))
    measured = lookup_lat.count + update_lat.count
    window = max(1, sim.now - (start_after_warm["t"] or 0))
    return CdrReport(
        throughput_mops=measured / window * 1000.0,
        lookup_p99_us=lookup_lat.percentile(99) / 1000.0,
        update_p99_us=update_lat.percentile(99) / 1000.0
        if update_lat.count else 0.0,
        ops=measured,
    )
