"""MapReduce / HDFS-cache acceleration model (§2.1, Fig. 2).

The paper's first application: HydraDB as a cache layer on top of HDFS.
Each HDFS block is split into chunks stored as key-value pairs; analytics
tasks then stream input from the cache instead of the HDFS datanode
protocol path.

Three I/O backends implement the same ``read_chunk`` interface:

* :class:`HdfsBackend` — *in-memory* HDFS (the paper's comparison point):
  kernel TCP plus the HDFS client/datanode protocol costs (RPC setup,
  checksum verification, JVM copies) that bound effective single-stream
  throughput near 1 GB/s even with the data in RAM.
* :class:`HydraBackend` — chunks served from a HydraDB cluster over the
  RDMA fabric.
* :class:`HydraTcpBackend` — the same chunk store behind kernel TCP,
  isolating how much of the gain is RDMA vs the leaner server path.

A job is ``n_tasks`` parallel task processes, each alternating chunk reads
with ``compute_ns_per_mb`` of CPU; Fig. 2's speedups are ratios of job
completion times.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimConfig
from ..core import HydraCluster
from ..protocol import Op
from ..sim import Simulator, Store

__all__ = [
    "AppProfile",
    "FIG2_APPS",
    "HdfsBackend",
    "HydraBackend",
    "HydraTcpBackend",
    "run_job",
]

MB = 1 << 20


@dataclass(frozen=True)
class AppProfile:
    """One Fig. 2 application."""

    name: str
    framework: str            # "hadoop" | "spark"
    input_mb: int
    compute_ns_per_mb: int    # CPU between chunk reads
    n_tasks: int = 4


#: Calibrated to the Fig. 2 app mix: I/O-bound Hadoop jobs gain the most;
#: Spark jobs are compute-heavy and gain 4-41%.
FIG2_APPS: tuple[AppProfile, ...] = (
    AppProfile("TestDFSIO-Read", "hadoop", input_mb=256,
               compute_ns_per_mb=0),
    AppProfile("Data-Loading", "hadoop", input_mb=256,
               compute_ns_per_mb=20_000),
    AppProfile("Grep", "hadoop", input_mb=192, compute_ns_per_mb=120_000),
    AppProfile("WordCount", "hadoop", input_mb=192,
               compute_ns_per_mb=400_000),
    AppProfile("Spark-Scan", "spark", input_mb=128,
               compute_ns_per_mb=18_000_000),
    AppProfile("Spark-Join", "spark", input_mb=128,
               compute_ns_per_mb=32_000_000),
    AppProfile("Spark-KMeans", "spark", input_mb=96,
               compute_ns_per_mb=65_000_000),
    AppProfile("Spark-PageRank", "spark", input_mb=96,
               compute_ns_per_mb=190_000_000),
)


class HdfsBackend:
    """In-memory HDFS: block protocol over kernel TCP."""

    #: Per-chunk-read client+datanode protocol work (RPC, checksum setup).
    RPC_OVERHEAD_NS = 1_000_000
    #: Per-byte cost of the full DFSClient path (checksum verification,
    #: JVM copies, record-reader deserialization): effective in-memory
    #: HDFS streaming lands near 140 MB/s per task, which is what the
    #: paper's "I/O is still the bottleneck even in memory" observation
    #: and its 17.9x TestDFSIO headline imply.
    BYTE_COST_NS = 7.0

    def __init__(self, sim: Simulator, config: SimConfig, server_machine,
                 client_machines):
        self.sim = sim
        self.config = config
        self.server_machine = server_machine
        self._listener = server_machine.tcp.listen(50010)
        self._conn_queue = Store(sim)
        sim.process(self._server(), name="hdfs.server")

    def _server(self):
        while True:
            conn = yield self._listener.get()
            self.sim.process(self._serve_conn(conn), name="hdfs.xceiver")

    def _serve_conn(self, conn):
        while conn.open:
            (_op, nbytes), _n = yield conn.recv()
            yield self.sim.timeout(
                self.RPC_OVERHEAD_NS + int(nbytes * self.BYTE_COST_NS))
            yield conn.send(b"D", nbytes + 64)

    def connect(self, machine):
        """Per-task connection factory (generator)."""
        ev = machine.tcp.connect(self.server_machine.tcp, 50010)
        conn = yield ev
        return _HdfsTaskConn(self.sim, conn)


class _HdfsTaskConn:
    def __init__(self, sim, conn):
        self.sim = sim
        self.conn = conn

    def read_chunk(self, nbytes: int):
        yield self.conn.send(("read", nbytes), 96)
        _data, _n = yield self.conn.recv()
        return nbytes


class HydraBackend:
    """Chunks in a HydraDB cluster, read over RDMA."""

    def __init__(self, sim_unused, config: SimConfig, chunk_bytes: int = MB,
                 shards: int = 4):
        big_enough = chunk_bytes * 2 + 4096
        self.chunk_bytes = chunk_bytes
        cfg = config.with_overrides(
            hydra={"conn_buf_bytes": big_enough},
            memory={"arena_bytes": max(config.memory.arena_bytes,
                                       chunk_bytes * 64),
                    "size_classes": config.memory.size_classes},
        )
        self.cluster = HydraCluster(config=cfg, n_server_machines=2,
                                    shards_per_server=shards,
                                    n_client_machines=2)
        self.sim = self.cluster.sim
        self._loaded = 0
        self.cluster.start()

    def preload(self, total_mb: int) -> None:
        """Prefetch phase: install all chunks directly (the cache layer's
        background prefetcher; not part of the measured job time)."""
        n_chunks = (total_mb * MB) // self.chunk_bytes
        value = bytes(self.chunk_bytes)
        for i in range(n_chunks):
            key = f"blk{i:012d}".encode()
            shard = self.cluster.route(key)
            shard.store.upsert(key, value, Op.PUT)
        self._loaded = n_chunks

    def connect(self, machine_index: int = 0):
        client = self.cluster.client(machine_index % 2)
        return _HydraTaskConn(self, client)
        yield  # pragma: no cover - keeps the factory a generator


class _HydraTaskConn:
    def __init__(self, backend: HydraBackend, client):
        self.backend = backend
        self.client = client
        self._next = 0

    def read_chunk(self, nbytes: int):
        key = f"blk{self._next % max(1, self.backend._loaded):012d}".encode()
        self._next += 1
        value = yield from self.client.get(key)
        if value is None:
            raise AssertionError(f"cache miss for preloaded chunk {key!r}")
        return len(value)


class HydraTcpBackend:
    """The HydraDB chunk server reached over kernel TCP (Fig. 2's
    'HydraDB-TCP' series): lean server path, commodity transport."""

    SERVICE_NS = 2_000  # hydra-style per-request service (no HDFS bloat)

    def __init__(self, sim: Simulator, config: SimConfig, server_machine,
                 chunk_bytes: int = MB):
        self.sim = sim
        self.config = config
        self.chunk_bytes = chunk_bytes
        self.server_machine = server_machine
        self._listener = server_machine.tcp.listen(7000)
        sim.process(self._server(), name="hydratcp.server")

    def _server(self):
        while True:
            conn = yield self._listener.get()
            self.sim.process(self._serve_conn(conn), name="hydratcp.worker")

    def _serve_conn(self, conn):
        while conn.open:
            (_op, nbytes), _n = yield conn.recv()
            yield self.sim.timeout(self.SERVICE_NS
                                   + self.config.cpu.memcpy_ns(nbytes))
            yield conn.send(b"D", nbytes + 64)

    def connect(self, machine):
        ev = machine.tcp.connect(self.server_machine.tcp, 7000)
        conn = yield ev
        return _HdfsTaskConn(self.sim, conn)


def run_job(sim: Simulator, profile: AppProfile, task_conns,
            chunk_bytes: int = MB) -> int:
    """Run one job; returns completion time (ns).

    ``task_conns`` is one connected backend handle per task; input is
    split evenly and each task alternates chunk reads with compute.
    """
    start = sim.now
    total_bytes = profile.input_mb * MB
    per_task = total_bytes // len(task_conns)

    def task(conn):
        remaining = per_task
        while remaining > 0:
            nbytes = min(chunk_bytes, remaining)
            got = yield from conn.read_chunk(nbytes)
            remaining -= nbytes
            del got
            compute = int(profile.compute_ns_per_mb * (nbytes / MB))
            if compute:
                yield sim.timeout(compute)

    procs = [sim.process(task(c), name=f"{profile.name}.t{i}")
             for i, c in enumerate(task_conns)]
    sim.run(until=sim.all_of(procs))
    return sim.now - start
