"""Keyspace helpers: fixed-width keys and deterministic values.

The paper's evaluation uses 16-byte keys with 32-byte values (per the
Facebook/Atikoglu production workload analyses); these helpers produce
exactly that shape while staying configurable.
"""

from __future__ import annotations

__all__ = ["make_key", "make_value", "Keyspace"]


def make_key(index: int, width: int = 16) -> bytes:
    """Fixed-width key for a record index (e.g. ``b'user000000000042'``)."""
    body = f"user{index:0{width - 4}d}"
    if len(body) != width:
        raise ValueError(f"index {index} does not fit a {width}-byte key")
    return body.encode("ascii")


def make_value(index: int, length: int = 32) -> bytes:
    """Deterministic, verifiable value for a record index."""
    seed = f"v{index:x}:".encode("ascii")
    reps = -(-length // len(seed))
    return (seed * reps)[:length]


class Keyspace:
    """A record universe with memoized key materialization."""

    def __init__(self, n_records: int, key_len: int = 16,
                 value_len: int = 32):
        self.n_records = n_records
        self.key_len = key_len
        self.value_len = value_len
        self._keys: dict[int, bytes] = {}

    def key(self, index: int) -> bytes:
        k = self._keys.get(index)
        if k is None:
            k = make_key(index, self.key_len)
            self._keys[index] = k
        return k

    def value(self, index: int) -> bytes:
        return make_value(index, self.value_len)

    def verify(self, index: int, value: bytes) -> bool:
        """True when ``value`` is a legitimate value for this keyspace.

        Updates rewrite values with the same generator, so any well-formed
        value matches its index prefix.
        """
        return value is not None and len(value) == self.value_len
