"""Workloads: YCSB generators and the paper's application models."""

from .cdr import CdrProfile, CdrReport, load_subscribers, run_pes
from .keys import Keyspace, make_key, make_value
from .cachelayer import CacheLayer, CacheStats
from .records import Field, RecordError, RecordSchema
from .mapreduce import (
    FIG2_APPS,
    AppProfile,
    HdfsBackend,
    HydraBackend,
    HydraTcpBackend,
    run_job,
)
from .sensemaking import (
    DbClient,
    G2Profile,
    InMemoryDatabase,
    hydra_g2_cluster,
    preload_entities,
    run_engines,
)
from .ycsb import (
    OP_GET,
    OP_UPDATE,
    PAPER_WORKLOADS,
    YcsbSpec,
    YcsbWorkload,
    paper_spec,
)
from .zipf import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    zeta,
)

__all__ = [
    "Keyspace", "make_key", "make_value",
    "YcsbSpec", "YcsbWorkload", "PAPER_WORKLOADS", "paper_spec",
    "OP_GET", "OP_UPDATE",
    "ZipfianGenerator", "ScrambledZipfianGenerator", "UniformGenerator",
    "zeta",
    "AppProfile", "FIG2_APPS", "HdfsBackend", "HydraBackend",
    "HydraTcpBackend", "run_job",
    "G2Profile", "InMemoryDatabase", "DbClient", "run_engines",
    "preload_entities", "hydra_g2_cluster",
    "CdrProfile", "CdrReport", "load_subscribers", "run_pes",
    "Field", "RecordSchema", "RecordError",
    "CacheLayer", "CacheStats",
]
