"""YCSB workload specification and pre-generation (§6, Evaluation Benchmark).

The paper pre-generates all requests before measuring (YCSB generation is
CPU-heavy); we do the same: a :class:`YcsbWorkload` materializes NumPy
arrays of (op, key-index) pairs, sliced per client.  The six §6 workloads
are provided as ready-made specs: {50, 90, 100}% GET x {zipfian, uniform}.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .keys import Keyspace
from .zipf import ScrambledZipfianGenerator, UniformGenerator

__all__ = ["OP_GET", "OP_UPDATE", "YcsbSpec", "YcsbWorkload",
           "PAPER_WORKLOADS", "paper_spec"]

OP_GET = 0
OP_UPDATE = 1


@dataclass(frozen=True)
class YcsbSpec:
    """Parameters of one YCSB run."""

    name: str
    n_records: int = 100_000
    n_ops: int = 100_000
    get_fraction: float = 1.0
    distribution: str = "zipfian"  # "zipfian" | "uniform"
    theta: float = 0.99
    key_len: int = 16
    value_len: int = 32
    seed: int = 42

    def scaled(self, records: int | None = None,
               ops: int | None = None) -> "YcsbSpec":
        return replace(self, n_records=records or self.n_records,
                       n_ops=ops or self.n_ops)


#: The six §6 workloads in the paper's Fig. 10 order:
#: (a)-(c) Zipfian at 50/90/100% GET, (d)-(f) Uniform likewise.
PAPER_WORKLOADS: tuple[YcsbSpec, ...] = (
    YcsbSpec(name="(a) 50% GET zipf", get_fraction=0.5,
             distribution="zipfian"),
    YcsbSpec(name="(b) 90% GET zipf", get_fraction=0.9,
             distribution="zipfian"),
    YcsbSpec(name="(c) 100% GET zipf", get_fraction=1.0,
             distribution="zipfian"),
    YcsbSpec(name="(d) 50% GET unif", get_fraction=0.5,
             distribution="uniform"),
    YcsbSpec(name="(e) 90% GET unif", get_fraction=0.9,
             distribution="uniform"),
    YcsbSpec(name="(f) 100% GET unif", get_fraction=1.0,
             distribution="uniform"),
)


def paper_spec(get_fraction: float, distribution: str,
               **overrides) -> YcsbSpec:
    for spec in PAPER_WORKLOADS:
        if (spec.get_fraction == get_fraction
                and spec.distribution == distribution):
            return replace(spec, **overrides) if overrides else spec
    raise KeyError(f"no paper workload with {get_fraction=} {distribution=}")


class YcsbWorkload:
    """Pre-generated request stream over a keyspace."""

    def __init__(self, spec: YcsbSpec):
        self.spec = spec
        self.keyspace = Keyspace(spec.n_records, spec.key_len, spec.value_len)
        rng = np.random.default_rng(spec.seed)
        if spec.distribution == "zipfian":
            gen = ScrambledZipfianGenerator(spec.n_records, spec.theta, rng)
        elif spec.distribution == "uniform":
            gen = UniformGenerator(spec.n_records, rng)
        else:
            raise ValueError(f"unknown distribution {spec.distribution!r}")
        self.key_indices = gen.sample(spec.n_ops)
        self.ops = np.where(rng.random(spec.n_ops) < spec.get_fraction,
                            OP_GET, OP_UPDATE).astype(np.int8)

    def __len__(self) -> int:
        return self.spec.n_ops

    def slice_for(self, client_idx: int, n_clients: int
                  ) -> tuple[np.ndarray, np.ndarray]:
        """This client's (ops, key_indices) — contiguous stripes."""
        if not 0 <= client_idx < n_clients:
            raise ValueError("client index out of range")
        per = len(self) // n_clients
        lo = client_idx * per
        hi = len(self) if client_idx == n_clients - 1 else lo + per
        return self.ops[lo:hi], self.key_indices[lo:hi]

    def hot_keys(self, top: int = 10) -> list[int]:
        """The most frequently accessed key indices (skew diagnostics)."""
        values, counts = np.unique(self.key_indices, return_counts=True)
        order = np.argsort(counts)[::-1][:top]
        return [int(v) for v in values[order]]
