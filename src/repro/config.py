"""Central configuration for the HydraDB reproduction.

Every tunable cost and size lives here as a frozen-by-convention dataclass.
Defaults are calibrated to the paper's testbed class (2.6 GHz Xeon E5-4650L,
4 NUMA nodes, 40 Gb/s ConnectX-3 through one IS5030 switch; see DESIGN.md §5).
All times are integer nanoseconds; all rates are bytes per nanosecond.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any

__all__ = [
    "FabricConfig",
    "NicConfig",
    "TcpConfig",
    "CpuConfig",
    "MemoryConfig",
    "HydraConfig",
    "ClientConfig",
    "TraversalConfig",
    "QosConfig",
    "ReplicationConfig",
    "DurabilityConfig",
    "CoordConfig",
    "SimConfig",
]


@dataclass
class FabricConfig:
    """Switch / link model (one hop through a single switch)."""

    #: One-way propagation through NIC-link-switch-link-NIC, excluding
    #: serialization and per-op NIC processing.
    propagation_ns: int = 500
    #: NIC-internal loopback between processes on the same machine.
    loopback_ns: int = 150
    #: 40 Gb/s InfiniBand QDR payload rate = 5 B/ns.
    bandwidth_bpns: float = 5.0
    #: RC transport gives up and completes with RETRY_EXC after this long
    #: without a response from the peer (dead-node detection path).
    retry_timeout_ns: int = 2_000_000

    def serialization_ns(self, nbytes: int) -> int:
        """Wire time for ``nbytes`` at InfiniBand line rate."""
        return int(nbytes / self.bandwidth_bpns)


@dataclass
class NicConfig:
    """RDMA-capable NIC model.

    Per-operation processing is serialized inside each engine (TX and RX),
    which makes the NIC a finite-rate device: ~1/tx_op_ns operations per
    nanosecond when unloaded.  When the number of live queue pairs exceeds
    the on-NIC QP state cache, connection state must be fetched from host
    memory and every operation slows down — this models the connection
    scalability wall discussed in §6.3 of the paper.
    """

    #: Initiator-side work per verb (doorbell, WQE fetch, DMA setup).
    tx_op_ns: int = 90
    #: Target-side work per inbound verb (RETH decode, DMA).
    rx_op_ns: int = 70
    #: Extra target-side work for an inbound RDMA Read (responder fetches
    #: payload from host memory and generates the response packet) — still
    #: zero *CPU*, but more NIC work than a write.
    read_responder_ns: int = 140
    #: Portion of ``tx_op_ns`` that is the MMIO doorbell write.  WQEs after
    #: the first in a doorbell-coalesced batch (``post_read_batch``) skip
    #: it: the initiator rings once for the whole chain, the standard
    #: batching lever surveyed in the RDMA hash-table literature.
    doorbell_ns: int = 40
    #: Extra cost for two-sided Send: receive-WQE consumption + CQE DMA.
    send_recv_extra_ns: int = 250
    #: QP state cache capacity; past this, each op pays ``qp_miss_ns``
    #: scaled by how badly the cache is oversubscribed.
    qp_cache_entries: int = 256
    qp_miss_ns: int = 120
    #: Unreliable Datagram loss probability (injected; real IB fabrics
    #: lose UD packets under congestion/SRQ exhaustion).  UD sends carry
    #: no QP connection state, so they never pay the QP-cache penalty —
    #: HERD's scalability argument — but they may silently vanish, the
    #: reliability gap §3 holds against HERD.
    ud_drop_probability: float = 0.0

    def qp_penalty_ns(self, active_qps: int) -> int:
        """Per-op slowdown from QP state cache misses."""
        if active_qps <= self.qp_cache_entries:
            return 0
        over = active_qps - self.qp_cache_entries
        miss_rate = over / active_qps
        return int(self.qp_miss_ns * miss_rate * (1.0 + over / self.qp_cache_entries))


@dataclass
class TcpConfig:
    """Kernel TCP (IPoIB) model for the baselines and HydraDB-TCP mode."""

    #: Socket syscall + kernel stack + copy, charged to the sending CPU.
    kernel_tx_ns: int = 11_000
    #: Interrupt + stack + copy to user, charged to the receiving CPU.
    kernel_rx_ns: int = 13_000
    #: Serialized interrupt/softirq processing per inbound message: IPoIB
    #: of the paper's era had no receive-side scaling, so one core drains
    #: the queue — the machine-level message-rate ceiling (~250 K msg/s).
    softirq_rx_ns: int = 4_000
    #: Propagation is the same wire, but IPoIB encapsulation adds latency.
    propagation_ns: int = 9_000
    #: Effective IPoIB goodput is far below line rate (~12 Gb/s observed).
    bandwidth_bpns: float = 1.5

    def serialization_ns(self, nbytes: int) -> int:
        """Wire time for ``nbytes`` at IPoIB goodput."""
        return int(nbytes / self.bandwidth_bpns)


@dataclass
class CpuConfig:
    """Server/client CPU cost model (2.6 GHz-class core)."""

    #: Inspect one request-buffer indicator word (cached poll).
    poll_probe_ns: int = 25
    #: Decode a request header / build a response header.
    parse_ns: int = 120
    build_response_ns: int = 100
    #: 64-bit hash of a small key.
    hash_key_ns: int = 40
    #: One cacheline fetch from local-NUMA DRAM.
    cacheline_local_ns: int = 85
    #: ...and from a remote NUMA domain.
    cacheline_remote_ns: int = 240
    #: Streaming copy rate for key/value payloads.
    memcpy_bpns: float = 12.0
    #: Allocation from the slab allocator (size-class pop).
    alloc_ns: int = 100
    free_ns: int = 60
    #: Additional write-path work per mutation: slab bookkeeping, lease
    #: table update, reclaim enqueue, stats.  This is the server-side
    #: read/write asymmetry §6.1 observes.
    update_extra_ns: int = 1500
    #: Full key comparison per 8-byte word (only on signature match).
    keycmp_word_ns: int = 6
    #: Post a receive WQE (two-sided mode only).
    post_recv_ns: int = 110
    #: Poll a completion queue (two-sided mode) — costlier than a memory
    #: probe because it is a ring-buffer read + ownership check.
    cq_poll_ns: int = 90
    #: Per-request server-side overhead of the two-sided path: completion
    #: channel handling, CQE consumption, SRQ bookkeeping — why §4.2.1's
    #: RDMA-Write messaging wins by 75-163%.
    sendrecv_server_extra_ns: int = 800
    #: High-resolution sleep the shard enters after idle polling.
    idle_sleep_ns: int = 100
    #: Consecutive empty poll sweeps before sleeping.
    idle_polls_before_sleep: int = 64
    #: §4.2.1 sleep-mode mitigation: False = pure busy polling (the shard
    #: core burns 100% CPU when idle, but requests are detected with no
    #: residual-sleep delay).
    sleep_backoff: bool = True

    def memcpy_ns(self, nbytes: int) -> int:
        """Streaming-copy time for a payload."""
        return int(nbytes / self.memcpy_bpns)

    def cacheline_ns(self, lines: int, remote: bool = False) -> int:
        """Latency-bound fetch of ``lines`` cachelines."""
        per = self.cacheline_remote_ns if remote else self.cacheline_local_ns
        return lines * per


@dataclass
class MemoryConfig:
    """KV memory substrate sizing."""

    #: Per-shard value arena (bytes).  Items are allocated out-of-place, so
    #: this must hold live + dead-awaiting-lease-expiry items.
    arena_bytes: int = 64 << 20
    #: Slab size classes (bytes); item extents round up to one of these.
    size_classes: tuple[int, ...] = (64, 96, 128, 192, 256, 512, 1024,
                                     4096, 65536, 1 << 20, 4 << 20)
    #: Background reclamation sweep period.
    reclaim_period_ns: int = 50_000_000


@dataclass
class HydraConfig:
    """HydraDB protocol parameters."""

    #: Per-connection request/response buffer bytes.
    conn_buf_bytes: int = 16 << 10
    #: Indicator-framed message slots each connection buffer is divided
    #: into (§4.2.1 generalized).  1 = the original single-message layout;
    #: K > 1 lets a client keep up to K requests in flight on one
    #: connection, with responses slot-matched to their requests.
    msg_slots_per_conn: int = 1
    #: Per-connection drain budget for server sweeps: a single sweep
    #: consumes at most this many ready slots from one connection, then
    #: re-marks it ready so the next sweep continues — one hot
    #: connection cannot dominate a sweep's handling time under skew.
    #: 0 = unbounded (drain everything found).
    sweep_drain_budget: int = 0
    #: TCP-mode ready-queue drain cap: one epoll-style wake drains up to
    #: this many queued payloads, and their responses are flushed per
    #: connection through one batched syscall (``send_many``) instead of
    #: one syscall each.  1 restores one-payload-per-wake.
    tcp_drain_batch: int = 16
    #: Hash-table buckets per shard (power of two).
    buckets_per_shard: int = 1 << 15
    #: Lease bounds (paper: 1 s .. 64 s scaled by observed popularity).
    lease_min_ns: int = 1_000_000_000
    lease_max_ns: int = 64_000_000_000
    #: GET count at which a key is considered maximally popular.
    lease_popularity_saturation: int = 64
    #: Client-side lease renewal period for keys it deems popular.
    lease_renew_period_ns: int = 500_000_000
    #: Use RDMA-Write indicator messaging (False = two-sided Send/Recv).
    rdma_write_messaging: bool = True
    #: 64-bit occupancy bitmap in a header word of each request buffer
    #: (the connection-buffer analogue of §4.1.3's bucket occupancy
    #: filter): the client sets a slot's bit with the same doorbell as
    #: its slot write, the shard snapshots+clears the word, and a sweep
    #: probes one word per connection instead of every slot.
    occupancy_word: bool = True
    #: Doorbells carry *which* connection fired, and the shard keeps a
    #: ready set so a sweep visits only dirty connections (periodic full
    #: sweeps remain as a safety net).  False = every sweep walks every
    #: connection (the seed design).
    ready_hints: bool = True
    #: Responses produced by one sweep are buffered per connection and
    #: flushed as a single doorbell-coalesced RDMA Write chain of at most
    #: this many WQEs.  0 disables batching: every response rings its own
    #: doorbell (the seed design).
    resp_doorbell_batch: int = 16
    #: Age bound (ns) on a buffered response: once the oldest response in a
    #: ``_SweepBatch`` has sat this long, the batch is flushed even if the
    #: sweep/queue that is filling it has not finished.  Bounds the added
    #: latency of doorbell batching under trickle load and under giant
    #: sweeps.  0 disables the age flush (flush only at sweep boundary /
    #: queue drain / batch cap).
    resp_flush_max_ns: int = 100_000
    #: "Announced since last response" masking of the occupancy word,
    #: on both ends of the wire.  Client side: each occupancy write
    #: carries only the in-flight slots not yet proven consumed (a
    #: response for req r proves every older in-flight announce was in
    #: the snapshot the shard swept).  Shard side: a re-announced bit
    #: for a slot that was consumed but whose response has not been
    #: posted yet is provably stale — the client cannot have reused the
    #: slot — and is skipped without a probe.  Long in-flight windows
    #: then stop re-announcing consumed slots, keeping shard probes ~=
    #: requests.  False = full-window rewrite, probe every bit.
    occ_announce_mask: bool = True
    #: Transport: "rdma" (the paper's main mode) or "tcp" (the kernel
    #: TCP/IPoIB fallback HydraDB also supports, §6) — in tcp mode the
    #: remote-pointer fast path is unavailable and every message costs
    #: server CPU in the stack.
    transport: str = "rdma"
    #: Pipelined (decoupled I/O / worker) shard variant for the §6.2.1
    #: ablation; False = the paper's single-threaded design.
    pipelined_shards: bool = False
    #: Sub-shards per instance (§6.3 future-work feature): 0 disables;
    #: K > 0 gives each shard instance K independent executor cores behind
    #: one connection endpoint, cutting the cluster QP count by K.
    subshards: int = 0
    #: I/O dispatcher threads per pipelined shard instance.
    pipeline_io_threads: int = 2
    pipeline_worker_threads: int = 2
    #: Pipeline hand-off cost (enqueue + wakeup + cacheline bounce).
    pipeline_handoff_ns: int = 800
    #: Per-op shared-store lock acquire/release cost in pipelined mode.
    pipeline_lock_ns: int = 150
    #: Store-access inflation in pipelined mode (Fig. 5 discussion):
    #: reads of the shared partition mostly hit replicated clean lines,
    #: while writes invalidate them across worker cores.
    pipeline_read_penalty: float = 1.3
    pipeline_write_penalty: float = 2.2
    #: Flat-array protocol hot paths (PR 9): the shard sweep parses whole
    #: occupancy-word batches into reused parallel arrays, the NIC recycles
    #: WQE/completion records through freelists, and the client reuses
    #: per-connection scratch buffers — no per-request Message/closure
    #: objects on the fast path.  False selects the original scalar
    #: per-object paths, kept as the ordering oracle: both settings must
    #: produce bit-identical schedule digests (tests/core/test_flat_parity).
    flat_hot_paths: bool = True

    # -- deprecation shim ----------------------------------------------------
    # PR 8 moved the client/traversal knobs into the typed ClientConfig /
    # TraversalConfig groups.  Reads and writes of the old flat names keep
    # working (with a once-per-key DeprecationWarning) by forwarding through
    # the owning SimConfig, which links itself in __post_init__.

    def __getattr__(self, name: str) -> Any:
        moved = _MOVED_HYDRA_KEYS.get(name)
        if moved is None:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}")
        root = self.__dict__.get("_root")
        if root is None:
            raise AttributeError(
                f"hydra.{name} moved to {moved[0]}.{moved[1]}; this "
                f"HydraConfig is not attached to a SimConfig, so the old "
                f"name cannot be forwarded")
        _warn_moved_key(name, moved)
        return getattr(getattr(root, moved[0]), moved[1])

    def __setattr__(self, name: str, value: Any) -> None:
        moved = _MOVED_HYDRA_KEYS.get(name)
        if moved is not None:
            root = self.__dict__.get("_root")
            if root is not None:
                _warn_moved_key(name, moved)
                setattr(getattr(root, moved[0]), moved[1], value)
                return
        object.__setattr__(self, name, value)


@dataclass
class ClientConfig:
    """Client-library parameters (windows, timeouts, retry, pointer cache).

    Split out of :class:`HydraConfig` in PR 8; the old flat ``hydra.*``
    names still resolve through a deprecation shim.
    """

    #: Client-side in-flight window per connection.  The effective window
    #: on the RDMA-Write message path is min(this, msg_slots_per_conn).
    #: 1 preserves the original stop-and-wait behavior.
    max_inflight_per_conn: int = 1
    #: Per-connection cap on outstanding one-sided Reads in the batched
    #: GET fan-out.  Reads are posted in doorbell-coalesced batches of at
    #: most this many WQEs; single-key GETs post batches of one, so the
    #: default changes nothing for them.
    max_inflight_reads: int = 16
    #: Client gives up on a response after this long (failover trigger).
    #: This bounds ONE message-path attempt; the public operations retry
    #: attempts under the ``op_deadline_us`` budget below.
    op_timeout_ns: int = 50_000_000
    #: Per-request deadline budget (microseconds) for every public client
    #: operation.  On a timeout / QP error the client tears down the stale
    #: connection, re-resolves the key through the (versioned) routing
    #: table, and replays the request with capped exponential backoff
    #: until this budget lapses — then raises ShardUnavailable.  The
    #: default comfortably covers a full SWAT failover (ZooKeeper session
    #: expiry + reaction + promotion ≈ 2.5 s).  0 disables retries: every
    #: attempt failure surfaces immediately (the pre-retry API).
    op_deadline_us: int = 4_000_000
    #: Capped exponential backoff between retry attempts (microseconds):
    #: first wait, and the cap it doubles up to.  A routing-table change
    #: notification short-circuits the wait, so promoted shards are
    #: retried as soon as SWAT republishes the route.
    retry_backoff_min_us: int = 1_000
    retry_backoff_max_us: int = 100_000
    #: Enable the RDMA-Read fast path with remote-pointer caching.
    rptr_cache_enabled: bool = True
    #: Share the remote-pointer cache among co-located clients (§4.2.4).
    rptr_sharing: bool = True
    #: Client rptr cache capacity (entries) when exclusive.
    rptr_cache_entries: int = 1 << 16
    #: Extra guard subtracted from lease horizons at lookup time, covering
    #: worst-case client clock skew (``machine.clock_skew_ns``).  A client
    #: whose clock runs behind the server would otherwise trust a cached
    #: remote pointer past its true lease expiry; set this at least as
    #: large as the deployment's skew bound to keep one-sided reads safe.
    lease_skew_guard_ns: int = 0


@dataclass
class TraversalConfig:
    """Client-side one-sided index traversal (§4.2.2 extended)."""

    #: The shard exports its compact hash table's buckets as a
    #: client-readable RDMA region, and a cold GET (no cached remote
    #: pointer) resolves with a one-sided bucket Read followed by an item
    #: Read — 2 RTTs, zero server CPU — instead of demoting to the
    #: message path.  False restores the PR-2 behavior (cold keys always
    #: go through messages).
    enabled: bool = True
    #: Bounded optimistic retry for the traversal: a read that races a
    #: concurrent mutation (bucket version moved, guardian flipped,
    #: reclaimed bytes) re-reads the bucket at most this many times
    #: before demoting the key to the message path.
    max_retries: int = 3
    #: Minimum number of *cold* keys in one read fan-out before the
    #: traversal engine engages.  A lone cold key is two dependent RTTs
    #: one-sided versus one message round-trip to an often-idle core, so
    #: the message path wins below this; at or above it the bucket Reads
    #: of different keys pipeline through one doorbell and the traversal
    #: amortizes.  1 = traverse every cold key (bench cold cells).
    min_fanout: int = 2
    #: Exported overflow-bucket frames per shard.  Chains that extend
    #: past this capacity set the demote flag in their last exported
    #: frame and clients fall back to the message path for them.
    export_overflow: int = 1024
    #: Read-horizon deferral (ns): a retired extent is never freed
    #: earlier than retire-time + this horizon, even if its frozen lease
    #: has already lapsed.  Bounds the window in which a traversal's
    #: bucket snapshot can hold an offset, so the follow-up item Read
    #: lands on intact (if DEAD-guarded) bytes rather than a recycled
    #: extent.  A walk is a handful of RTTs (~10 us with retries), so
    #: 1 ms is ~100x margin while staying well inside typical lease
    #: lengths — the lease, not the horizon, governs reclaim latency.
    read_horizon_ns: int = 1_000_000


@dataclass
class QosConfig:
    """Multi-tenant traffic engineering (PR 8).

    Doubles as the per-tenant policy handed to
    ``HydraCluster.client(tenant=..., qos=QosConfig(...))`` and as the
    cluster-wide defaults section ``SimConfig.qos``.
    """

    #: Token-bucket admission: sustained rate in ops/second (0 = no
    #: admission control) and the bucket depth in ops.  An op issued with
    #: the bucket empty waits out the refill under its deadline budget,
    #: or raises :class:`~repro.core.errors.TenantThrottled` carrying the
    #: ``retry_after_ns`` hint when the budget cannot cover the wait.
    rate_ops: float = 0.0
    burst: int = 32
    #: Deficit-round-robin weight of this tenant when competing for
    #: message slots / read window on a shared connection.
    weight: float = 1.0
    #: Fair queueing: arbitrate pending slot acquisitions across tenants
    #: sharing a connection pipeline with DRR.  False = legacy free-for-
    #: all (first process to wake takes the slot).
    fair_queueing: bool = True
    #: Slots granted per DRR round per unit weight.  1 = strict
    #: round-robin interleaving; larger quanta trade fairness granularity
    #: for doorbell/batching efficiency.
    drr_quantum: float = 1.0
    #: AIMD self-tuning of the per-connection in-flight and read windows
    #: from observed RTT: replaces the static ``client.max_inflight_*``
    #: caps when on.
    autotune: bool = False
    aimd_min_window: int = 1
    aimd_max_window: int = 64
    #: EWMA smoothing factor for the RTT estimate.
    aimd_rtt_smooth: float = 0.125
    #: Multiplicative decrease triggers when smoothed RTT exceeds this
    #: multiple of the best RTT seen (queueing-delay congestion signal).
    aimd_rtt_inflation: float = 3.0
    #: Window multiplier on congestion (loss or RTT inflation).
    aimd_decrease: float = 0.5
    #: Clean completions per +1 additive-increase step.
    aimd_probe_interval: int = 8
    #: Server-side load shedding: with N > 0, a sweep that finds more
    #: than N requests from one tenant while other tenants are also
    #: queued sheds the excess with ``Status.THROTTLED`` instead of
    #: executing them.  0 = never shed (default).
    server_shed_slots: int = 0
    #: ``retry_after_ns`` hint carried by server-side THROTTLED responses.
    shed_retry_after_ns: int = 200_000


#: Old flat ``hydra.<key>`` name -> (SimConfig section, new field name).
_MOVED_HYDRA_KEYS: dict[str, tuple[str, str]] = {
    "max_inflight_per_conn": ("client", "max_inflight_per_conn"),
    "max_inflight_reads": ("client", "max_inflight_reads"),
    "op_timeout_ns": ("client", "op_timeout_ns"),
    "op_deadline_us": ("client", "op_deadline_us"),
    "retry_backoff_min_us": ("client", "retry_backoff_min_us"),
    "retry_backoff_max_us": ("client", "retry_backoff_max_us"),
    "rptr_cache_enabled": ("client", "rptr_cache_enabled"),
    "rptr_sharing": ("client", "rptr_sharing"),
    "rptr_cache_entries": ("client", "rptr_cache_entries"),
    "index_traversal": ("traversal", "enabled"),
    "traversal_max_retries": ("traversal", "max_retries"),
    "traversal_min_fanout": ("traversal", "min_fanout"),
    "index_export_overflow": ("traversal", "export_overflow"),
    "traversal_read_horizon_ns": ("traversal", "read_horizon_ns"),
}

_warned_moved_keys: set[str] = set()


def _warn_moved_key(name: str, moved: tuple[str, str]) -> None:
    if name in _warned_moved_keys:
        return
    _warned_moved_keys.add(name)
    warnings.warn(
        f"hydra.{name} is deprecated; use {moved[0]}.{moved[1]} "
        f"(SimConfig.{moved[0]} section)",
        DeprecationWarning, stacklevel=3)


@dataclass
class ReplicationConfig:
    """High-availability / replication parameters (§5)."""

    #: Number of secondary shards per primary (0 disables replication).
    replicas: int = 0
    #: "rdma_log" (§5.2) or "strict" (request/ack per record).
    mode: str = "rdma_log"
    #: Secondary-exposed replication ring size.
    log_bytes: int = 8 << 20
    #: Primary requests an acknowledgement every N records (relaxed model).
    ack_interval: int = 32
    #: Secondary merge-thread poll period when idle.
    merge_poll_ns: int = 200
    #: Primary CPU cost to build + post one replication record.
    post_cost_ns: int = 400
    #: Injected per-record failure probability on the secondary (tests).
    fault_probability: float = 0.0


@dataclass
class DurabilityConfig:
    """Write-behind durable log tier (simulated PM; ``repro/durable``).

    Disabled by default: the durable tier is strictly additive to the
    replication ring, and enabling it changes event schedules (golden
    digests pin the default-off behavior).
    """

    #: Master switch: give every primary shard a PM device + durable log.
    enabled: bool = False
    #: When an acked write counts as safe on the durability path:
    #: "ack_on_replicate" — ack as soon as the secondary write posts
    #: (log flush is purely write-behind); "ack_on_flush" — the response
    #: additionally waits for the group-commit flush covering the write,
    #: so every acked write is durable even if primary AND secondary die.
    ack_mode: str = "ack_on_replicate"
    #: PM write latency and bandwidth (bytes per nanosecond).
    pm_write_latency_ns: int = 3_000
    pm_bandwidth_bpns: float = 2.0
    #: Device capacity per shard (watermark block + log frames).
    log_bytes: int = 32 << 20
    #: Group-commit aging window: a flush gathers everything appended
    #: within this long of the first pending record...
    group_commit_ns: int = 50_000
    #: ...or flushes early once this many records are pending.
    group_commit_records: int = 64
    #: Primary CPU cost to stage one record (off the replication path).
    append_cost_ns: int = 150
    #: Recovery CPU cost per replayed record (on top of store apply cost).
    replay_apply_ns: int = 400


@dataclass
class CoordConfig:
    """ZooKeeper + SWAT parameters."""

    #: Session heartbeat period and expiry multiple.
    heartbeat_ns: int = 500_000_000
    session_timeout_ns: int = 2_000_000_000
    #: ZK request proposal/commit latency (quorum round).
    zk_op_ns: int = 1_200_000
    #: SWAT reaction processing time after a failure notification.
    swat_react_ns: int = 5_000_000


@dataclass
class SimConfig:
    """Root configuration aggregating every subsystem."""

    seed: int = 42
    fabric: FabricConfig = field(default_factory=FabricConfig)
    nic: NicConfig = field(default_factory=NicConfig)
    tcp: TcpConfig = field(default_factory=TcpConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    hydra: HydraConfig = field(default_factory=HydraConfig)
    client: ClientConfig = field(default_factory=ClientConfig)
    traversal: TraversalConfig = field(default_factory=TraversalConfig)
    qos: QosConfig = field(default_factory=QosConfig)
    replication: ReplicationConfig = field(default_factory=ReplicationConfig)
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    coord: CoordConfig = field(default_factory=CoordConfig)

    def __post_init__(self) -> None:
        # Back-link the hydra section so the deprecation shim can forward
        # old flat keys to their new homes.  ``replace()`` reuses section
        # instances for untouched sections, so an instance already linked
        # to another SimConfig is copied first — each root resolves old
        # names against its *own* client/traversal groups.
        hydra = self.hydra
        if hydra.__dict__.get("_root") is not None:
            hydra = replace(hydra)
            object.__setattr__(self, "hydra", hydra)
        hydra.__dict__["_root"] = self

    def with_overrides(self, **sections: dict[str, Any]) -> "SimConfig":
        """Return a copy with per-section field overrides.

        Example::

            cfg.with_overrides(client={"rptr_cache_enabled": False},
                               replication={"replicas": 2})

        Old flat ``hydra.*`` keys that moved to the ``client`` /
        ``traversal`` groups are still accepted under ``hydra={...}`` and
        routed to their new section, with a once-per-key
        DeprecationWarning.
        """
        sections = {name: dict(fields) for name, fields in sections.items()}
        hydra_fields = sections.get("hydra")
        if hydra_fields:
            for key in list(hydra_fields):
                moved = _MOVED_HYDRA_KEYS.get(key)
                if moved is not None:
                    _warn_moved_key(key, moved)
                    sections.setdefault(moved[0], {})[moved[1]] = (
                        hydra_fields.pop(key))
            if not hydra_fields:
                del sections["hydra"]
        updates: dict[str, Any] = {}
        for section, fields in sections.items():
            current = getattr(self, section)
            updates[section] = replace(current, **fields)
        return replace(self, **updates)
