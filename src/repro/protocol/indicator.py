"""Indicator-encapsulated message framing (§4.2.1, Fig. 7).

One-sided RDMA Writes deliver no receive notification, so HydraDB frames
every message with polling indicators, relying on the RC in-order write
guarantee (first introduced for RDMA MPI [Liu et al. 2004]):

* **head word** — arrival indicator fused with the 4-byte message size, so
  observing the indicator set also guarantees the size field is consistent;
* **payload** — ``size`` bytes;
* **tail word** — written last in increasing memory order; once the poller
  sees it, the whole message is guaranteed complete.

The poller probes the head word; on a hit it "skips the next Msg-Size
bytes" and probes the tail word; only when both match does it consume the
payload and zero the frame for reuse.

In the simulator a single RDMA Write lands atomically, which is a strict
strengthening of "last byte lands last"; the two-phase poll is still
exercised because a frame can also be *absent* or recycled.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..rdma.memory import MemoryRegion

__all__ = [
    "HEAD_MAGIC",
    "TAIL_MAGIC",
    "FRAME_OVERHEAD",
    "frame",
    "frame_len",
    "max_payload",
    "probe",
    "consume",
    "clear",
]

HEAD_MAGIC = 0xB1FF0001
TAIL_MAGIC = 0xE00FE00FE00FE00F
FRAME_OVERHEAD = 16  # 8B head word + 8B tail word

_U64 = struct.Struct("<Q")


def frame_len(payload_len: int) -> int:
    """Total frame bytes for a payload (head + payload + tail words)."""
    return FRAME_OVERHEAD + payload_len


def max_payload(buffer_len: int) -> int:
    """Largest payload a buffer of ``buffer_len`` bytes can frame."""
    return buffer_len - FRAME_OVERHEAD


def frame(payload: bytes) -> bytes:
    """Build the on-wire frame for ``payload``."""
    head = (HEAD_MAGIC << 32) | len(payload)
    return _U64.pack(head) + payload + _U64.pack(TAIL_MAGIC)


def probe(region: MemoryRegion, offset: int = 0) -> Optional[int]:
    """Phase-1+2 poll at ``offset``.

    Returns the payload length when a complete frame is present, else
    ``None``.  Mirrors the paper's sequence: check head indicator (which
    validates the size field), skip the payload, check the tail word.
    """
    head = region.read_u64(offset)
    if (head >> 32) != HEAD_MAGIC:
        return None
    size = head & 0xFFFFFFFF
    tail_off = offset + 8 + size
    if tail_off + 8 > region.nbytes:
        return None  # corrupt size; treat as not-yet-arrived
    if region.read_u64(tail_off) != TAIL_MAGIC:
        return None  # body still in flight
    return size


def consume(region: MemoryRegion, offset: int = 0) -> Optional[bytes]:
    """Probe and, on success, return the payload *without* clearing."""
    size = probe(region, offset)
    if size is None:
        return None
    return region.read(offset + 8, size)


def clear(region: MemoryRegion, offset: int, payload_len: int) -> None:
    """Zero a consumed frame so the slot can be reused."""
    region.zero(offset, frame_len(payload_len))
