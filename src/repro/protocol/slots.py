"""Slotted connection-buffer layout (§4.2.1, generalized).

The paper pre-registers one request and one response buffer per
connection.  A stop-and-wait client only ever needs a single
indicator-framed message at offset 0, but keeping **multiple requests in
flight per connection** requires the buffer to be partitioned into a ring
of fixed-size *slots*, each independently framed with the indicator
format:

* slot ``i`` of the request buffer carries the i-th outstanding request;
* the shard writes the response for the request found in request-slot
  ``i`` into response-slot ``i`` — slot indices match, so concurrent
  responses never overwrite each other and the client can pair a landed
  response with its request by ``req_id`` without scanning.

Slots are 8-byte aligned so every head/tail indicator word is naturally
aligned.  ``n_slots=1`` degenerates to the original single-message layout
(one frame at offset 0 spanning the whole buffer).
"""

from __future__ import annotations

from .indicator import FRAME_OVERHEAD

__all__ = ["SlotLayout"]


class SlotLayout:
    """Partition of a connection buffer into equal indicator-framed slots."""

    __slots__ = ("buf_bytes", "n_slots", "slot_bytes")

    def __init__(self, buf_bytes: int, n_slots: int = 1):
        if n_slots < 1:
            raise ValueError("need at least one slot")
        slot = (buf_bytes // n_slots) & ~7  # 8-byte aligned slots
        if slot < FRAME_OVERHEAD + 8:
            raise ValueError(
                f"{buf_bytes}B buffer cannot hold {n_slots} slots of at "
                f"least {FRAME_OVERHEAD + 8}B; raise hydra.conn_buf_bytes "
                f"or lower hydra.msg_slots_per_conn")
        self.buf_bytes = buf_bytes
        self.n_slots = n_slots
        self.slot_bytes = slot

    def offset(self, slot: int) -> int:
        """Byte offset of ``slot`` within the connection buffer."""
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"slot {slot} outside 0..{self.n_slots - 1}")
        return slot * self.slot_bytes

    @property
    def max_payload(self) -> int:
        """Largest message payload one slot can frame."""
        return self.slot_bytes - FRAME_OVERHEAD

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<SlotLayout {self.n_slots}x{self.slot_bytes}B "
                f"of {self.buf_bytes}B>")
