"""Slotted connection-buffer layout (§4.2.1, generalized).

The paper pre-registers one request and one response buffer per
connection.  A stop-and-wait client only ever needs a single
indicator-framed message at offset 0, but keeping **multiple requests in
flight per connection** requires the buffer to be partitioned into a ring
of fixed-size *slots*, each independently framed with the indicator
format:

* slot ``i`` of the request buffer carries the i-th outstanding request;
* the shard writes the response for the request found in request-slot
  ``i`` into response-slot ``i`` — slot indices match, so concurrent
  responses never overwrite each other and the client can pair a landed
  response with its request by ``req_id`` without scanning.

Slots are 8-byte aligned so every head/tail indicator word is naturally
aligned.  ``n_slots=1`` degenerates to the original single-message layout
(one frame at offset 0 spanning the whole buffer).

Occupancy word (server-sweep scalability)
-----------------------------------------

With ``occupancy=True`` the first 8 bytes of the buffer hold a 64-bit
**occupancy bitmap** and the slots start after it.  The writer announces
slot ``i`` by setting bit ``i % 64`` (wraparound: layouts beyond 64 slots
map several slots onto one bit, so a set bit means "probe the whole
group").  The poller reads the word — one cacheline probe instead of
``n_slots`` indicator probes — snapshots it, zeroes it, and probes only
the indicated slots; this is the connection-buffer analogue of the
paper's 7-bit bucket occupancy filter (§4.1.3).

Race discipline (relies on RC in-order delivery, like the indicator
format itself):

* the writer posts the slot frame *first* and the occupancy word
  *second* on the same QP, so a set bit is always preceded by its frame;
* the writer writes the **full word**: the OR of the bits of every slot
  it still has in flight.  Bits for slots the poller already consumed
  are merely re-set, costing one spurious (empty) probe — never a lost
  message;
* the poller snapshots and zeroes the word in one step
  (:func:`occ_consume`); a bit set after the snapshot fires the region
  doorbell again and is picked up by the next sweep.  Periodic full
  sweeps remain as a safety net for hardware where snapshot+clear is not
  atomic.
"""

from __future__ import annotations

import struct

from ..rdma.memory import MemoryRegion
from .indicator import FRAME_OVERHEAD

__all__ = [
    "SlotLayout",
    "OCC_WORD_BYTES",
    "occ_bit",
    "occ_word",
    "occ_encode",
    "occ_consume",
    "occ_set",
    "occ_slots",
    "occ_header_bytes",
    "occ_announce",
    "occ_probe",
    "occ_restore",
]

#: Size of the occupancy bitmap header (one 64-bit word).
OCC_WORD_BYTES = 8

_U64 = struct.Struct("<Q")
_WORD_MASK = 0xFFFFFFFFFFFFFFFF


def occ_header_bytes(n_slots: int) -> int:
    """Occupancy header size for a window of ``n_slots``.

    Up to 64 slots fit the original single word.  Wider windows get the
    **two-level** scheme: a summary word (bit ``g`` = "group ``g`` has
    announcements") followed by one exact sub-word per 64-slot group, so
    probing stays exact instead of group-aliased — the poller reads the
    summary, then only the indicated sub-words.
    """
    if n_slots <= 64:
        return OCC_WORD_BYTES
    groups = -(-n_slots // 64)
    return OCC_WORD_BYTES * (1 + groups)


def occ_bit(slot: int) -> int:
    """Bitmask announcing ``slot``.

    Slots beyond 63 wrap around onto the low bits (slot 64 shares bit 0
    with slot 0), so the word stays one probe wide at any window size;
    the poller treats a set bit as "probe every slot in this group".
    """
    if slot < 0:
        raise ValueError(f"slot {slot} cannot be announced")
    return 1 << (slot % 64)


def occ_word(slots) -> int:
    """The full occupancy word for a set of in-flight slots."""
    word = 0
    for slot in slots:
        word |= occ_bit(slot)
    return word


def occ_encode(word: int) -> bytes:
    """On-wire bytes of an occupancy word (little-endian u64)."""
    return _U64.pack(word & _WORD_MASK)


def occ_set(region: MemoryRegion, slots, offset: int = 0) -> None:
    """Writer-side announce: OR the in-flight set into the header word.

    Local (test/loopback) form of what a client does remotely with an
    RDMA Write of :func:`occ_encode`'s bytes.
    """
    region.write_u64(offset, region.read_u64(offset) | occ_word(slots))


def occ_consume(region: MemoryRegion, offset: int = 0) -> int:
    """Poller-side probe: snapshot the occupancy word and zero it.

    One step, so every bit set before the snapshot is captured and every
    bit set after it re-fires the region doorbell for the next sweep.
    """
    word = region.read_u64(offset)
    if word:
        region.write_u64(offset, 0)
    return word


def occ_slots(word: int, n_slots: int):
    """Candidate slots a snapshot indicates (group-expanded on wraparound)."""
    for slot in range(n_slots):
        if word & occ_bit(slot):
            yield slot


def occ_announce(slots, n_slots: int) -> bytes:
    """Full occupancy *header* bytes for a writer's in-flight set.

    Single-word form for windows up to 64 slots (byte-identical to
    :func:`occ_encode` of :func:`occ_word`); summary + exact sub-words
    beyond that.  The writer RDMA-Writes the whole header in the chained
    WQE after its frame, same race discipline as the single word.
    """
    if n_slots <= 64:
        return occ_encode(occ_word(slots))
    groups = -(-n_slots // 64)
    subs = [0] * groups
    summary = 0
    for slot in slots:
        if not 0 <= slot < n_slots:
            raise ValueError(f"slot {slot} outside 0..{n_slots - 1}")
        g = slot // 64
        subs[g] |= 1 << (slot % 64)
        summary |= 1 << g
    return b"".join([occ_encode(summary)] + [occ_encode(s) for s in subs])


def occ_probe(region: MemoryRegion, n_slots: int, offset: int = 0
              ) -> tuple[list[int], int]:
    """Poller-side probe of a (possibly two-level) occupancy header.

    Returns ``(slots, probes)``: the exact announced slots and how many
    word probes it took (1 for the single-word form; 1 + one per dirty
    group for the two-level form).  Each word is snapshot-and-zeroed like
    :func:`occ_consume`.
    """
    if n_slots <= 64:
        return list(occ_slots(occ_consume(region, offset), n_slots)), 1
    summary = occ_consume(region, offset)
    probes = 1
    slots: list[int] = []
    groups = -(-n_slots // 64)
    for g in range(groups):
        if not (summary >> g) & 1:
            continue
        probes += 1
        word = occ_consume(region, offset + OCC_WORD_BYTES * (1 + g))
        base = g * 64
        for b in range(64):
            if (word >> b) & 1:
                slot = base + b
                if slot < n_slots:
                    slots.append(slot)
    return slots, probes


def occ_restore(region: MemoryRegion, slots, n_slots: int,
                offset: int = 0) -> None:
    """Poller-side re-announce: OR ``slots`` back into the header.

    Used by drain-budgeted sweeps to hand the un-drained remainder of a
    snapshot to the next sweep without losing announcements.
    """
    if n_slots <= 64:
        occ_set(region, slots, offset)
        return
    for slot in slots:
        g = slot // 64
        sub_off = offset + OCC_WORD_BYTES * (1 + g)
        region.write_u64(sub_off,
                         region.read_u64(sub_off) | (1 << (slot % 64)))
        region.write_u64(offset, region.read_u64(offset) | (1 << g))


class SlotLayout:
    """Partition of a connection buffer into equal indicator-framed slots."""

    __slots__ = ("buf_bytes", "n_slots", "slot_bytes", "occupancy",
                 "header_bytes")

    def __init__(self, buf_bytes: int, n_slots: int = 1,
                 occupancy: bool = False):
        if n_slots < 1:
            raise ValueError("need at least one slot")
        header = occ_header_bytes(n_slots) if occupancy else 0
        slot = ((buf_bytes - header) // n_slots) & ~7  # 8-byte aligned slots
        if slot < FRAME_OVERHEAD + 8:
            raise ValueError(
                f"{buf_bytes}B buffer cannot hold {n_slots} slots of at "
                f"least {FRAME_OVERHEAD + 8}B; raise hydra.conn_buf_bytes "
                f"or lower hydra.msg_slots_per_conn")
        self.buf_bytes = buf_bytes
        self.n_slots = n_slots
        self.slot_bytes = slot
        self.occupancy = occupancy
        self.header_bytes = header

    #: Byte offset of the occupancy word within the buffer.
    occ_offset = 0

    def offset(self, slot: int) -> int:
        """Byte offset of ``slot`` within the connection buffer."""
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"slot {slot} outside 0..{self.n_slots - 1}")
        return self.header_bytes + slot * self.slot_bytes

    @property
    def max_payload(self) -> int:
        """Largest message payload one slot can frame."""
        return self.slot_bytes - FRAME_OVERHEAD

    def __repr__(self) -> str:  # pragma: no cover
        occ = " +occ" if self.occupancy else ""
        return (f"<SlotLayout {self.n_slots}x{self.slot_bytes}B "
                f"of {self.buf_bytes}B{occ}>")
