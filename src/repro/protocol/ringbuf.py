"""Single-writer ring buffer over a registered region (§5.2).

The replication log: the secondary exposes a large memory chunk; the
primary RDMA-Writes indicator-framed records into it in a log-structured,
wrapping fashion.  The writer never reads remote memory — it tracks its own
write position and learns reclaimed space from acknowledgements — and the
reader never writes to the network — it polls locally and zeroes consumed
frames.

Frames are 8-byte aligned.  When a frame does not fit before the end of
the region, the writer emits a WRAP marker and the reader treats the tail
gap as consumed.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..rdma.memory import MemoryRegion
from .indicator import HEAD_MAGIC, TAIL_MAGIC, frame, frame_len

__all__ = ["RingWriter", "RingReader", "WRAP_MAGIC", "RingFull"]

WRAP_MAGIC = 0x77AA0002
_U64 = struct.Struct("<Q")


class RingFull(Exception):
    """The writer has no credit for the next record (reader lagging)."""


def _aligned(n: int) -> int:
    return (n + 7) & ~7


class RingWriter:
    """Primary-side ring state; produces the RDMA writes to issue.

    Flow control is credit-based: ``written`` counts every byte the writer
    has laid down (frames, padding, wrap gaps) and ``acked`` is the
    cumulative consumed count carried in the secondary's acknowledgements.
    """

    def __init__(self, size: int):
        if size < 64 or size % 8:
            raise ValueError("ring size must be >=64 and 8-byte aligned")
        self.size = size
        self.head = 0
        self.written = 0
        self.acked = 0

    @property
    def free_bytes(self) -> int:
        """Remaining write credit (capacity minus unacked bytes)."""
        return self.size - (self.written - self.acked)

    def ack(self, consumed_cumulative: int) -> None:
        """Apply a credit update from the secondary's acknowledgement."""
        if consumed_cumulative < self.acked:
            return  # stale/duplicate ack
        if consumed_cumulative > self.written:
            raise ValueError("ack beyond written bytes")
        self.acked = consumed_cumulative

    def rewind_to(self, head: int, written: int) -> None:
        """Roll the write cursor back (resend path after a secondary NACK)."""
        self.head = head % self.size
        self.written = written

    def place(self, payload: bytes) -> list[tuple[int, bytes]]:
        """Reserve space and return ``[(ring_offset, bytes), ...]`` to write.

        Possibly two writes: a WRAP marker then the frame at offset 0.
        Raises :class:`RingFull` when credit is insufficient; the caller
        must solicit an ack and retry.
        """
        need = _aligned(frame_len(len(payload)))
        if need > self.size:
            raise ValueError("record larger than the ring")
        writes: list[tuple[int, bytes]] = []
        gap = self.size - self.head
        total = need if gap >= need else gap + need
        if total > self.free_bytes:
            raise RingFull(
                f"need {total}B, only {self.free_bytes}B of credit"
            )
        if gap < need:
            # The gap is always >=8 (everything is 8-aligned).
            writes.append((self.head, _U64.pack(WRAP_MAGIC << 32)))
            self.written += gap
            self.head = 0
        blob = frame(payload)
        writes.append((self.head, blob + bytes(need - len(blob))))
        self.head = (self.head + need) % self.size
        self.written += need
        return writes


class RingReader:
    """Secondary-side poller over the locally owned ring region."""

    def __init__(self, region: MemoryRegion):
        self.region = region
        self.pos = 0
        #: Cumulative consumed bytes — the value carried back in acks.
        self.consumed = 0

    def poll(self) -> Optional[bytes]:
        """Return the next payload if one is complete, advancing the ring."""
        head = self.region.read_u64(self.pos)
        magic = head >> 32
        if magic == WRAP_MAGIC:
            gap = self.region.nbytes - self.pos
            self.region.zero(self.pos, 8)
            self.consumed += gap
            self.pos = 0
            head = self.region.read_u64(0)
            magic = head >> 32
        if magic != HEAD_MAGIC:
            return None
        size = head & 0xFFFFFFFF
        tail_off = self.pos + 8 + size
        if tail_off + 8 > self.region.nbytes:
            return None
        if self.region.read_u64(tail_off) != TAIL_MAGIC:
            return None
        payload = self.region.read(self.pos + 8, size)
        need = _aligned(frame_len(size))
        self.region.zero(self.pos, min(need, self.region.nbytes - self.pos))
        self.pos = (self.pos + need) % self.region.nbytes
        self.consumed += need
        return payload
