"""Wire protocol: messages, indicator framing, replication ring buffer."""

from .indicator import (
    FRAME_OVERHEAD,
    HEAD_MAGIC,
    TAIL_MAGIC,
    clear,
    consume,
    frame,
    frame_len,
    max_payload,
    probe,
)
from .messages import (
    Op,
    Request,
    Response,
    Status,
    request_wire_len,
    response_wire_len,
)
from .ringbuf import RingFull, RingReader, RingWriter, WRAP_MAGIC
from .slots import (
    OCC_WORD_BYTES,
    SlotLayout,
    occ_bit,
    occ_consume,
    occ_encode,
    occ_set,
    occ_slots,
    occ_word,
)

__all__ = [
    "Op",
    "Status",
    "Request",
    "Response",
    "request_wire_len",
    "response_wire_len",
    "frame",
    "frame_len",
    "max_payload",
    "probe",
    "consume",
    "clear",
    "FRAME_OVERHEAD",
    "HEAD_MAGIC",
    "TAIL_MAGIC",
    "RingWriter",
    "RingReader",
    "RingFull",
    "WRAP_MAGIC",
    "SlotLayout",
    "OCC_WORD_BYTES",
    "occ_bit",
    "occ_word",
    "occ_encode",
    "occ_set",
    "occ_consume",
    "occ_slots",
]
