"""Request/response wire messages.

Real byte encodings (not Python objects) because they travel through
registered memory regions via simulated RDMA Writes — framing bugs, torn
buffers, and stale bytes must be *representable* for the consistency
machinery to be testable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

__all__ = ["Op", "Status", "Request", "Response"]


class Op(IntEnum):
    """Operation codes carried in request headers."""
    GET = 1
    PUT = 2          # insert-or-update
    INSERT = 3       # fails if the key exists
    UPDATE = 4       # fails if the key is missing
    DELETE = 5
    LEASE_RENEW = 6


class Status(IntEnum):
    """Response status codes."""
    OK = 0
    NOT_FOUND = 1
    EXISTS = 2
    ERROR = 3
    #: Server-side load shed (``qos.server_shed_slots``): the shard
    #: refused to execute the request this sweep; the response's
    #: ``lease_expiry_ns`` field carries the retry-after hint (ns).
    THROTTLED = 4


_REQ = struct.Struct("<BBHIQ")          # op, tlen, klen, vlen, req_id
_RESP = struct.Struct("<BBHIQIQIQQ")    # op, status, _, vlen, req_id,
                                        # rkey, roffset, rlen, lease, version


@dataclass(frozen=True)
class Request:
    """A client-to-shard operation.

    ``tenant`` is the requesting tenant's name for server-side
    per-tenant accounting and shedding; it rides the previously-reserved
    second header byte as a trailing-bytes length, so the default
    (anonymous) encoding is bit-identical to the pre-tenant wire format.
    """

    op: Op
    key: bytes
    value: bytes = b""
    req_id: int = 0
    tenant: bytes = b""

    def encode(self) -> bytes:
        """Serialize to the on-wire request bytes."""
        return (
            _REQ.pack(self.op, len(self.tenant), len(self.key),
                      len(self.value), self.req_id)
            + self.key
            + self.value
            + self.tenant
        )

    @classmethod
    def decode(cls, data: bytes) -> "Request":
        """Parse request bytes (raises ValueError on length mismatch)."""
        op, tlen, klen, vlen, req_id = _REQ.unpack_from(data, 0)
        base = _REQ.size
        if len(data) != base + klen + vlen + tlen:
            raise ValueError("request length mismatch")
        return cls(
            op=Op(op),
            key=data[base:base + klen],
            value=data[base + klen:base + klen + vlen],
            req_id=req_id,
            tenant=data[base + klen + vlen:base + klen + vlen + tlen],
        )

    @property
    def wire_len(self) -> int:
        """Encoded size in bytes (for buffer sizing and wire accounting)."""
        return _REQ.size + len(self.key) + len(self.value) + len(self.tenant)


@dataclass(frozen=True)
class Response:
    """A shard-to-client reply.

    For successful GETs the response also carries the item's remote pointer
    (rkey/roffset/rlen) and the lease expiry timestamp, enabling the client
    to use one-sided RDMA Reads for this key until the lease lapses
    (§4.2.2 / §4.2.3).
    """

    op: Op
    status: Status
    req_id: int = 0
    value: bytes = b""
    rkey: int = 0
    roffset: int = 0
    rlen: int = 0
    lease_expiry_ns: int = 0
    version: int = 0

    def encode(self) -> bytes:
        """Serialize to the on-wire response bytes."""
        return (
            _RESP.pack(self.op, self.status, 0, len(self.value), self.req_id,
                       self.rkey, self.roffset, self.rlen,
                       self.lease_expiry_ns, self.version)
            + self.value
        )

    @classmethod
    def decode(cls, data: bytes) -> "Response":
        """Parse response bytes (raises ValueError on length mismatch)."""
        (op, status, _r, vlen, req_id, rkey, roffset, rlen,
         lease, version) = _RESP.unpack_from(data, 0)
        base = _RESP.size
        if len(data) != base + vlen:
            raise ValueError("response length mismatch")
        return cls(op=Op(op), status=Status(status), req_id=req_id,
                   value=data[base:base + vlen], rkey=rkey, roffset=roffset,
                   rlen=rlen, lease_expiry_ns=lease, version=version)

    @property
    def wire_len(self) -> int:
        """Encoded size in bytes."""
        return _RESP.size + len(self.value)

    @property
    def remote_pointer_valid(self) -> bool:
        """True when the response carries a usable remote pointer."""
        return self.rlen > 0

    @property
    def ok(self) -> bool:
        """Shorthand for ``status is Status.OK``."""
        return self.status is Status.OK

    @property
    def retry_after_ns(self) -> int:
        """Shed-retry hint of a THROTTLED response (rides the lease field,
        which a shed response cannot meaningfully carry anyway)."""
        return self.lease_expiry_ns if self.status is Status.THROTTLED else 0


def request_wire_len(klen: int, vlen: int) -> int:
    """Encoded request size without building it (buffer sizing)."""
    return _REQ.size + klen + vlen


def response_wire_len(vlen: int) -> int:
    return _RESP.size + vlen
