"""Shared-resource primitives: FIFO stores, counted resources, mutexes.

These model contended server-side structures in the baselines (thread pools,
global locks) and bounded queues inside NICs.  HydraDB's own shards are
deliberately lock-free (single-threaded), so the heavy users of this module
are the Memcached/Redis/pipelined-execution models.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, TYPE_CHECKING

from .events import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .core import Simulator

__all__ = ["Store", "Resource", "Mutex", "Gate"]


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, sim: "Simulator", item: Any):
        super().__init__(sim)
        self.item = item


class Store:
    """An unbounded-or-bounded FIFO queue of Python objects.

    ``put`` returns an event that succeeds once the item is accepted
    (immediately unless the store is full); ``get`` returns an event that
    succeeds with the oldest item once one is available.
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[_StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        ev = _StorePut(self.sim, item)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif not self.full:
            self.items.append(item)
            ev.succeed(None)
        else:
            self._putters.append(ev)
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.full:
            return False
        self.items.append(item)
        return True

    def get(self) -> Event:
        ev = Event(self.sim)
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putter()
        elif self._putters:
            putter = self._putters.popleft()
            putter.succeed(None)
            ev.succeed(putter.item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if self.items:
            item = self.items.popleft()
            self._admit_putter()
            return True, item
        if self._putters:
            putter = self._putters.popleft()
            putter.succeed(None)
            return True, putter.item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and not self.full:
            putter = self._putters.popleft()
            self.items.append(putter.item)
            putter.succeed(None)


class Request(Event):
    """A pending claim on a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, sim: "Simulator", resource: "Resource"):
        super().__init__(sim)
        self.resource = resource


class Resource:
    """A counted resource (semaphore) with FIFO granting."""

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of grants currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def request(self) -> Request:
        req = Request(self.sim, self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed(None)
        else:
            self._waiters.append(req)
        return req

    def release(self, request: Request) -> None:
        if request.resource is not self:
            raise SimulationError("releasing a request of another resource")
        if not request.triggered:
            # Cancel a queued request.
            try:
                self._waiters.remove(request)
            except ValueError:
                raise SimulationError("request not held nor queued") from None
            request.succeed(None)  # unblock the canceller if it is waiting
            return
        if self._in_use <= 0:  # pragma: no cover - invariant guard
            raise SimulationError("release without matching grant")
        if self._waiters:
            # Hand the slot directly to the next waiter; _in_use unchanged.
            self._waiters.popleft().succeed(None)
        else:
            self._in_use -= 1


class Mutex(Resource):
    """A capacity-1 resource; models coarse-grained baseline locks."""

    def __init__(self, sim: "Simulator"):
        super().__init__(sim, capacity=1)


class RwLock:
    """A readers-writer lock: shared readers, exclusive writers, FIFO-ish.

    Writers wait for all active readers to drain; arriving readers queue
    behind a waiting writer (no writer starvation).
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._readers = 0
        self._writer = False
        self._wait_writers: Deque[Event] = deque()
        self._wait_readers: Deque[Event] = deque()

    @property
    def readers(self) -> int:
        return self._readers

    @property
    def write_held(self) -> bool:
        return self._writer

    def read_acquire(self) -> Event:
        ev = Event(self.sim)
        if not self._writer and not self._wait_writers:
            self._readers += 1
            ev.succeed(None)
        else:
            self._wait_readers.append(ev)
        return ev

    def read_release(self) -> None:
        if self._readers <= 0:
            raise SimulationError("read_release without readers")
        self._readers -= 1
        self._dispatch()

    def write_acquire(self) -> Event:
        ev = Event(self.sim)
        if not self._writer and self._readers == 0:
            self._writer = True
            ev.succeed(None)
        else:
            self._wait_writers.append(ev)
        return ev

    def write_release(self) -> None:
        if not self._writer:
            raise SimulationError("write_release without writer")
        self._writer = False
        self._dispatch()

    def _dispatch(self) -> None:
        if self._writer:
            return
        if self._wait_writers and self._readers == 0:
            self._writer = True
            self._wait_writers.popleft().succeed(None)
            return
        if not self._wait_writers:
            while self._wait_readers:
                self._readers += 1
                self._wait_readers.popleft().succeed(None)


class Gate:
    """A re-arming broadcast signal.

    ``wait()`` returns an event that succeeds at the next ``fire(value)``.
    Used for doorbells (e.g. waking a sleeping poller) where every waiter
    must observe the signal.

    All waiters of one firing observe the same occurrence, so they share a
    single pending event: a gate that is waited on every poll round but
    rarely fires holds one event total, not one per ``wait()``.  Waiters
    still resume in ``wait()`` order (callback order on the shared event).
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._pending: Optional[Event] = None
        self._n_waiting = 0

    def wait(self) -> Event:
        ev = self._pending
        if ev is None:
            ev = self._pending = Event(self.sim)
        self._n_waiting += 1
        return ev

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        ev, self._pending = self._pending, None
        n, self._n_waiting = self._n_waiting, 0
        if ev is not None:
            ev.succeed(value)
        return n
