"""Measurement instruments: counters, tallies, and time-weighted gauges.

The bench harness samples these to produce the per-figure series.  All
instruments are cheap enough to leave enabled in every run.
"""

from __future__ import annotations

import math
from typing import Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .core import Simulator

__all__ = ["Counter", "Tally", "TimeWeighted", "MetricSet", "ScopedMetrics",
           "kernel_snapshot"]


def kernel_snapshot(sim: "Simulator") -> dict[str, float]:
    """Kernel telemetry for one simulator: scheduling volume, calendar-tier
    hit mix, timer-pool reuse and peak calendar occupancy.

    The counters live as plain ints on the :class:`Simulator` hot paths,
    which deliberately under-count: pooled rearms skip ``k_scheduled``
    and now-queue hits have no counter at all, keeping the two hottest
    paths increment-free.  This derives the full picture (scheduled =
    ``k_scheduled + k_timer_rearms``; now hits = scheduled - wheel -
    heap) and flattens it for bench reports so BENCH_simcore speedups
    are attributable to specific tiers.
    """
    scheduled = sim.k_scheduled + sim.k_timer_rearms
    now_hits = scheduled - sim.k_wheel_hits - sim.k_heap_hits
    rearms = sim.k_timer_rearms
    allocs = sim.k_timer_allocs
    timers = rearms + allocs
    return {
        "events_scheduled": scheduled,
        "events_dispatched": sim.k_dispatched,
        "now_hits": now_hits,
        "wheel_hits": sim.k_wheel_hits,
        "heap_hits": sim.k_heap_hits,
        "now_rate": now_hits / scheduled if scheduled else 0.0,
        "wheel_rate": sim.k_wheel_hits / scheduled if scheduled else 0.0,
        "heap_rate": sim.k_heap_hits / scheduled if scheduled else 0.0,
        "timer_rearms": rearms,
        "timer_allocs": allocs,
        "timer_reuse_rate": rearms / timers if timers else 0.0,
        "peak_calendar": sim.k_peak_pending,
    }


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Tally:
    """Collects scalar observations (e.g. per-request latency in ns).

    Keeps raw samples (bounded by ``max_samples`` with uniform reservoir
    subsampling) plus exact streaming moments, so means are exact while
    percentiles degrade gracefully on very long runs.
    """

    def __init__(self, name: str, max_samples: int = 200_000, seed: int = 0x5EED):
        self.name = name
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._rng = np.random.default_rng(seed)
        self.count = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self._sum += value
        self._sumsq += value * value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            # Vitter's algorithm R keeps the retained set uniform.
            j = int(self._rng.integers(0, self.count))
            if j < self.max_samples:
                self._samples[j] = value

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else math.nan

    @property
    def std(self) -> float:
        if self.count < 2:
            return math.nan
        var = (self._sumsq - self._sum * self._sum / self.count) / (self.count - 1)
        return math.sqrt(max(var, 0.0))

    @property
    def min(self) -> float:
        return self._min if self.count else math.nan

    @property
    def max(self) -> float:
        return self._max if self.count else math.nan

    def percentile(self, q: float) -> float:
        if not self._samples:
            return math.nan
        return float(np.percentile(np.asarray(self._samples), q))

    def reset(self) -> None:
        self._samples.clear()
        self.count = 0
        self._sum = self._sumsq = 0.0
        self._min = math.inf
        self._max = -math.inf

    def __repr__(self) -> str:  # pragma: no cover
        return f"Tally({self.name}: n={self.count}, mean={self.mean:.1f})"


class TimeWeighted:
    """A gauge integrated over simulated time (e.g. CPU busy fraction)."""

    def __init__(self, name: str, sim: "Simulator", initial: float = 0.0):
        self.name = name
        self.sim = sim
        self._value = initial
        self._last_change = sim.now
        self._area = 0.0
        self._start = sim.now

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.sim.now
        self._area += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def time_average(self) -> float:
        now = self.sim.now
        elapsed = now - self._start
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_change)
        return area / elapsed

    def reset(self) -> None:
        self._area = 0.0
        self._start = self._last_change = self.sim.now


class MetricSet:
    """A named bundle of instruments with lazy creation.

    Components grab ``metrics.counter("rdma.read.ops")`` etc.; the harness
    walks the registry when reporting.
    """

    def __init__(self, sim: Optional["Simulator"] = None):
        self.sim = sim
        self.counters: dict[str, Counter] = {}
        self.tallies: dict[str, Tally] = {}
        self.gauges: dict[str, TimeWeighted] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def tally(self, name: str, max_samples: int = 200_000) -> Tally:
        t = self.tallies.get(name)
        if t is None:
            t = self.tallies[name] = Tally(name, max_samples=max_samples)
        return t

    def gauge(self, name: str) -> TimeWeighted:
        if self.sim is None:
            raise ValueError("MetricSet needs a Simulator for gauges")
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = TimeWeighted(name, self.sim)
        return g

    def reset(self) -> None:
        for c in self.counters.values():
            c.reset()
        for t in self.tallies.values():
            t.reset()
        for g in self.gauges.values():
            g.reset()

    def snapshot(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for name, c in self.counters.items():
            out[name] = float(c.value)
        for name, t in self.tallies.items():
            out[f"{name}.mean"] = t.mean
            out[f"{name}.count"] = float(t.count)
        for name, g in self.gauges.items():
            out[f"{name}.avg"] = g.time_average()
        return out

    def scoped(self, prefix: str) -> "ScopedMetrics":
        """A view of this set with every instrument name prefixed.

        Used for per-tenant metric namespaces: a tenant handle grabs
        ``metrics.scoped("client.tenant.analytics")`` once and its
        ``counter("throttled")`` lands in the shared registry as
        ``client.tenant.analytics.throttled``.
        """
        return ScopedMetrics(self, prefix)


class ScopedMetrics:
    """A prefix-namespaced facade over a shared :class:`MetricSet`."""

    __slots__ = ("base", "prefix")

    def __init__(self, base: MetricSet, prefix: str):
        self.base = base
        self.prefix = prefix

    def counter(self, name: str) -> Counter:
        return self.base.counter(f"{self.prefix}.{name}")

    def tally(self, name: str, max_samples: int = 200_000) -> Tally:
        return self.base.tally(f"{self.prefix}.{name}",
                               max_samples=max_samples)

    def gauge(self, name: str) -> TimeWeighted:
        return self.base.gauge(f"{self.prefix}.{name}")
