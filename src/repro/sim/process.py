"""Generator-coroutine processes for the simulation kernel.

A process wraps a Python generator that yields :class:`~repro.sim.events.Event`
instances.  The process suspends on each yielded event and resumes with the
event's value (or has the event's exception thrown in).  A process is itself
an event: it triggers when the generator returns (value = ``StopIteration``
value) or raises.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from .events import Event, Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .core import Simulator

__all__ = ["Process"]

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """An active simulation entity driven by a generator."""

    __slots__ = ("gen", "name", "_target", "_alive", "_resume_cb")

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str = ""):
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(f"{gen!r} is not a generator")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = None
        self._alive = True
        #: One bound resume callback for the process's lifetime (appending
        #: ``self._resume`` would allocate a fresh bound method per yield).
        self._resume_cb = self._resume
        # Kick off at the current time via an immediately-successful event.
        init = Event(sim)
        init.callbacks.append(self._resume_cb)
        init.succeed(None)

    @property
    def is_alive(self) -> bool:
        return self._alive

    @property
    def target(self) -> Optional[Event]:
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        twice before it handles the first interrupt queues both.
        """
        if not self._alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        ev = Event(self.sim)
        ev.callbacks.append(self._resume_interrupt)
        ev.succeed(Interrupt(cause))

    # -- internal -------------------------------------------------------
    def _resume_interrupt(self, trigger: Event) -> None:
        if not self._alive:
            return  # finished before the interrupt was delivered
        # Detach from whatever we were waiting on; its later processing
        # must not resume us again.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._step(trigger.value, throw=True)

    def _resume(self, event: Event) -> None:
        if not self._alive:
            return
        if event._ok:
            self._step(event.value, throw=False)
        else:
            event.defuse()
            self._step(event.value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        # Iterative drive loop: yielding an already-processed event resumes
        # the generator immediately without growing the Python stack.
        sim = self.sim
        while True:
            self._target = None
            sim._active_process = self
            try:
                if throw:
                    target = self.gen.throw(value)
                else:
                    target = self.gen.send(value)
            except StopIteration as stop:
                self._alive = False
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self._alive = False
                self.fail(exc)
                return
            finally:
                sim._active_process = None
            if not isinstance(target, Event):
                value = SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
                throw = True
                continue
            if target.sim is not sim:
                value = SimulationError(
                    "yielded event belongs to another simulator"
                )
                throw = True
                continue
            if target.callbacks is None:
                # Already processed: resume immediately with its value.
                if target._ok:
                    value, throw = target.value, False
                else:
                    target.defuse()
                    value, throw = target.value, True
                continue
            self._target = target
            target.callbacks.append(self._resume_cb)
            return

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Process {self.name!r} {'alive' if self._alive else 'done'}>"
