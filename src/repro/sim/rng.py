"""Deterministic named random streams.

Every stochastic component draws from its own named stream derived from a
single root seed, so adding a new consumer never perturbs the draws seen by
existing ones — runs stay reproducible and comparable across configurations.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["StreamRegistry"]


class StreamRegistry:
    """Hands out independent ``numpy.random.Generator`` streams by name."""

    def __init__(self, root_seed: int = 42):
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The per-name seed mixes the root seed with a CRC of the name, so the
        mapping is stable across processes and insertion orders.
        """
        gen = self._streams.get(name)
        if gen is None:
            tag = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.root_seed, spawn_key=(tag,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams; subsequent calls recreate them from scratch."""
        self._streams.clear()
