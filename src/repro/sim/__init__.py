"""Discrete-event simulation kernel (integer-nanosecond virtual time).

The kernel is deliberately small: events, generator-coroutine processes,
FIFO stores / counted resources, measurement instruments, and deterministic
named random streams.  Everything above it — NICs, shards, clients — is a
process yielding events.
"""

from .core import Simulator, UnhandledProcessError
from .events import (AllOf, AnyOf, Event, Interrupt, PooledTimer,
                     SimulationError, Timeout)
from .monitor import Counter, MetricSet, Tally, TimeWeighted, kernel_snapshot
from .process import Process
from .resources import Gate, Mutex, Resource, RwLock, Store
from .rng import StreamRegistry

__all__ = [
    "Simulator",
    "UnhandledProcessError",
    "Event",
    "Timeout",
    "PooledTimer",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Process",
    "Store",
    "Resource",
    "Mutex",
    "RwLock",
    "Gate",
    "Counter",
    "Tally",
    "TimeWeighted",
    "MetricSet",
    "kernel_snapshot",
    "StreamRegistry",
]
