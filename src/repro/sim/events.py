"""Event primitives for the discrete-event simulation kernel.

Events are the unit of synchronization: a process yields an event and is
resumed when the event is *processed* (its callbacks run).  The design
follows the classic SimPy model but is trimmed to what the HydraDB
simulation needs and uses integer-nanosecond timestamps throughout.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Simulator

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
]

_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (e.g. a machine-failure record).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence within the simulation.

    Lifecycle: *pending* -> *triggered* (``succeed``/``fail`` called and the
    event is queued) -> *processed* (callbacks have run).  Callbacks receive
    the event itself.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked when the event is processed; ``None`` afterwards.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(0, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise TypeError(f"{exc!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._enqueue(0, self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another event (callback chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay (integer nanoseconds)."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(delay, self)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: tuple[Event, ...]):
        super().__init__(sim)
        self.events = events
        self._n_done = 0
        for ev in events:
            if ev.sim is not sim:
                raise SimulationError("events belong to different simulators")
        if not events:
            self.succeed(self._collect())
            return
        for ev in events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}

    def _check(self, ev: Event) -> None:
        if self.triggered:
            if not ev._ok and not ev._defused:
                # Nobody will look at this failure through the condition.
                ev.defuse()
                self.sim._report_orphan_failure(ev)
            return
        if not ev._ok:
            ev.defuse()
            self.fail(ev._value)
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of ``events`` succeeds (or any fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1


class AllOf(_Condition):
    """Fires when all of ``events`` have succeeded (or any fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= len(self.events)
