"""Event primitives for the discrete-event simulation kernel.

Events are the unit of synchronization: a process yields an event and is
resumed when the event is *processed* (its callbacks run).  The design
follows the classic SimPy model but is trimmed to what the HydraDB
simulation needs and uses integer-nanosecond timestamps throughout.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Simulator

#: Calendar wheel geometry (shared with :mod:`repro.sim.core`, defined
#: here so the timer fast paths below can insert without an import cycle).
#: 4096 integer-ns slots cover every hot-path delay (NIC 25-800 ns,
#: propagation 500 ns, CPU parse/build ~100 ns); only retry timers
#: (2 ms), op deadlines (50 ms) and lease periods overflow.
_WHEEL_BITS = 12
_WHEEL_SLOTS = 1 << _WHEEL_BITS
_WHEEL_MASK = _WHEEL_SLOTS - 1

__all__ = [
    "Event",
    "Timeout",
    "PooledTimer",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
]

_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (e.g. a machine-failure record).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence within the simulation.

    Lifecycle: *pending* -> *triggered* (``succeed``/``fail`` called and the
    event is queued) -> *processed* (callbacks have run).  Callbacks receive
    the event itself.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "_uid")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked when the event is processed; ``None`` afterwards.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        if sim._tracing:
            # Creation-order uid: the identity the schedule hash is built on.
            self._uid = next(sim._trace_uid)

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inline wake fast path: a zero-delay trigger goes straight to
        # the now-deque (the single hottest kernel operation — worth
        # skipping the _enqueue call for).
        sim = self.sim
        if sim._legacy:
            sim._enqueue(0, self)
        else:
            sim.k_scheduled += 1
            sim._now_q.append(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise TypeError(f"{exc!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        sim = self.sim
        if sim._legacy:
            sim._enqueue(0, self)
        else:
            sim.k_scheduled += 1
            sim._now_q.append(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another event (callback chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay (integer nanoseconds)."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim.k_timer_allocs += 1
        sim._enqueue(delay, self)


class PooledTimer(Event):
    """A rearmable timer for recurring loops (sweep polls, idle backoff,
    lease/reclaim periods).

    A pooled timer is *idle* after construction and again once a firing has
    been processed (every waiter resumed).  While idle it may be rearmed —
    which recycles the same object instead of allocating a fresh
    :class:`Timeout` plus calendar entry per poll::

        timer = sim.pooled_timer()
        while polling:
            yield timer.rearm(poll_ns)

    Contract: ``rearm()`` is only legal while :attr:`idle` (rearming a timer
    still in flight raises :class:`SimulationError`); a timer may only be
    rearmed by its owning loop — code that hands the event to third parties
    that may outlive the firing (or that may yield it late) must *release*
    the timer (stop rearming it and drop the reference, letting a fresh
    ``Timeout`` take over) because rearming recycles the callback/value
    state in place.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator"):
        super().__init__(sim)
        self.delay = 0
        self.callbacks = None  # idle: nothing scheduled yet

    @property
    def idle(self) -> bool:
        """True when no firing is pending or awaiting processing."""
        return self.callbacks is None

    def rearm(self, delay: int, value: Any = None) -> "PooledTimer":
        if self.callbacks is not None:
            raise SimulationError("rearm() on a pooled timer still in flight")
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        self.callbacks = []
        self.delay = delay
        self._ok = True
        self._value = value
        self._defused = False
        sim = self.sim
        sim.k_timer_rearms += 1
        # Inlined calendar insert (== Simulator._enqueue): rearm is the
        # per-tick cost of every poll loop, so it pays not to route the
        # recycled timer through another call frame.  k_scheduled is NOT
        # bumped here — kernel_snapshot folds k_timer_rearms back in.
        if sim._legacy:
            sim.k_heap_hits += 1
            heappush(sim._heap, (sim._now + delay, next(sim._seq), self))
            return self
        if delay == 0:
            sim._now_q.append(self)
            return self
        t = sim._now + delay
        if t < sim._limit:
            sim.k_wheel_hits += 1
            slot = sim._wheel[t & _WHEEL_MASK]
            if not slot:
                heappush(sim._slot_times, t)
            slot.append(self)
        else:
            sim.k_heap_hits += 1
            heappush(sim._heap, (t, next(sim._seq), self))
        return self


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: tuple[Event, ...]):
        super().__init__(sim)
        self.events = events
        self._n_done = 0
        for ev in events:
            if ev.sim is not sim:
                raise SimulationError("events belong to different simulators")
        if not events:
            self.succeed(self._collect())
            return
        for ev in events:
            if self.triggered:
                break  # decided by an earlier event; don't subscribe losers
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}

    def _check(self, ev: Event) -> None:
        if self.triggered:
            if not ev._ok and not ev._defused:
                # Nobody will look at this failure through the condition.
                ev.defuse()
                self.sim._report_orphan_failure(ev)
            return
        if not ev._ok:
            ev.defuse()
            self.fail(ev._value)
            self._detach_pending()
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._collect())
            self._detach_pending()

    def _detach_pending(self) -> None:
        # Once the condition has triggered, the losers must not keep a dead
        # reference to it in their callbacks forever: a long-lived event
        # raced against many short timeouts (deadline vs route_change in the
        # retry gate) would otherwise accumulate one stale callback per race.
        check = self._check
        for ev in self.events:
            cbs = ev.callbacks
            if cbs is not None:
                try:
                    cbs.remove(check)
                except ValueError:
                    pass

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of ``events`` succeeds (or any fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1


class AllOf(_Condition):
    """Fires when all of ``events`` have succeeded (or any fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= len(self.events)
