"""The discrete-event simulator core.

A single :class:`Simulator` owns a monotonic integer-nanosecond clock and a
two-tier event calendar:

* a **bucketed wheel** of flat per-timestamp lists covering the near-term
  horizon (``now .. now + 4096`` ns — every NIC/CPU/fabric latency in
  :mod:`repro.config` lands here), indexed by ``t & mask`` with an int-heap
  of armed timestamps so the next instant is found without tuple churn;
* an **overflow heap** of explicit ``(time, seq, event)`` entries for
  far-out timers (retry timeouts, leases, reclaim periods), migrated into
  the wheel as the clock advances.

Zero-delay wakes — process resumes, replication acks, chained-WQE
completions; the dominant event class — skip the calendar entirely and go
to a ``now``-deque drained inline after the scheduled batch
(:meth:`Simulator.step_batch`).

Determinism: both tiers and the ``now``-deque preserve exact ``(time, seq)``
order, where seq is scheduling order.  The pre-batching single-heap kernel
is kept behind ``Simulator(legacy=True)`` as the ordering oracle; the golden
schedule-hash tests prove both kernels dispatch bit-identically.
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from itertools import count
from typing import Any, Iterable, Optional

from .events import (
    _WHEEL_BITS,
    _WHEEL_MASK,
    _WHEEL_SLOTS,
    AllOf,
    AnyOf,
    Event,
    PooledTimer,
    SimulationError,
    Timeout,
)
from .process import Process, ProcessGenerator

__all__ = ["Simulator", "UnhandledProcessError"]


class UnhandledProcessError(SimulationError):
    """A process died with an exception nobody was waiting on."""

    def __init__(self, event: Event):
        cause = event.value
        super().__init__(f"unhandled failure in simulation: {cause!r}")
        self.event = event
        self.__cause__ = cause


class Simulator:
    """Event loop with integer-nanosecond virtual time.

    ``legacy=True`` selects the original single binary-heap calendar (one
    ``(time, seq, event)`` tuple per event, one ``step()`` per dispatch).
    It dispatches in exactly the same order as the default batched kernel
    and exists as the baseline for BENCH_simcore and the golden
    schedule-hash tests.
    """

    def __init__(self, legacy: bool = False) -> None:
        self._now: int = 0
        self._legacy = legacy
        #: Legacy calendar, or the overflow tier of the batched kernel.
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        # Batched-kernel calendar state (unused when legacy).
        self._wheel: list[list[Event]] = (
            [] if legacy else [[] for _ in range(_WHEEL_SLOTS)])
        self._slot_times: list[int] = []  # int-heap of armed wheel timestamps
        self._now_q: deque[Event] = deque()  # zero-delay wakes at this instant
        self._ready: deque[Event] = deque()  # current timestamp, being drained
        self._limit: int = _WHEEL_SLOTS  # == now + wheel horizon
        # Kernel telemetry: plain ints, surfaced via monitor.kernel_snapshot.
        # Pooled rearms deliberately skip k_scheduled, and now-queue hits
        # carry no counter of their own — the snapshot derives both
        # (scheduled = k_scheduled + k_timer_rearms, now = scheduled -
        # wheel - heap), keeping the two hottest paths increment-free.
        self.k_scheduled = 0
        self.k_dispatched = 0
        self.k_wheel_hits = 0
        self.k_heap_hits = 0
        self.k_timer_rearms = 0
        self.k_timer_allocs = 0
        self.k_peak_pending = 0
        # Schedule tracing (off by default; see trace_schedule()).
        self._tracing = False
        self._trace_uid: Optional[count] = None
        self._trace_hash = None
        if legacy:
            self._enqueue = self._enqueue_legacy  # type: ignore[method-assign]

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, int(delay), value)

    def pooled_timer(self) -> PooledTimer:
        """A rearmable timer for recurring loops (see :class:`PooledTimer`)."""
        return PooledTimer(self)

    def process(self, gen: ProcessGenerator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, tuple(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, tuple(events))

    # -- scheduling ---------------------------------------------------------
    def _enqueue(self, delay: int, event: Event) -> None:
        self.k_scheduled += 1
        if delay == 0:
            # Immediate-event fast path: succeed()/fail() wakes and
            # zero-delay timeouts dispatch after the current batch without
            # a calendar round-trip.
            self._now_q.append(event)
            return
        t = self._now + delay
        if t < self._limit:
            self.k_wheel_hits += 1
            slot = self._wheel[t & _WHEEL_MASK]
            if not slot:
                heapq.heappush(self._slot_times, t)
            slot.append(event)
        else:
            self.k_heap_hits += 1
            heapq.heappush(self._heap, (t, next(self._seq), event))

    def _enqueue_legacy(self, delay: int, event: Event) -> None:
        self.k_scheduled += 1
        self.k_heap_hits += 1
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), event))

    def _report_orphan_failure(self, event: Event) -> None:
        # A failure absorbed by an already-triggered condition; schedule a
        # crash so silent data loss cannot occur.
        raise UnhandledProcessError(event)

    # -- schedule tracing ---------------------------------------------------
    def trace_schedule(self) -> None:
        """Start folding every dispatch into a schedule hash.

        Events created after this call get a creation-order uid; each
        dispatch folds ``(now, uid, ok, type)`` into a blake2b digest.  Two
        kernels driving the same workload must produce identical digests —
        the golden tests compare the batched kernel against ``legacy=True``.
        """
        self._tracing = True
        self._trace_uid = count()
        self._trace_hash = hashlib.blake2b(digest_size=16)

    def schedule_digest(self) -> str:
        """Hex digest of the dispatch schedule observed since tracing began."""
        if self._trace_hash is None:
            raise SimulationError("trace_schedule() was never called")
        return self._trace_hash.hexdigest()

    def _trace_event(self, event: Event) -> None:
        uid = getattr(event, "_uid", -1)
        self._trace_hash.update(
            b"%d|%d|%d|%s;" % (self._now, uid, 1 if event._ok else 0,
                               type(event).__name__.encode()))

    # -- execution ------------------------------------------------------------
    def _next_time(self) -> Optional[int]:
        if self._ready or self._now_q:
            return self._now
        if self._slot_times:
            return self._slot_times[0]
        if self._heap:
            return self._heap[0][0]
        return None

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or ``None`` if none remain."""
        if self._legacy:
            return self._heap[0][0] if self._heap else None
        return self._next_time()

    def _advance_clock(self) -> None:
        """Advance ``now`` to the next armed timestamp and stage its batch.

        Overflow entries entering the horizon are migrated first — on every
        advance, before any callback runs — so a same-timestamp wheel insert
        can never slip in front of an older overflow entry (seq order is
        append order within a slot).
        """
        st = self._slot_times
        heap = self._heap
        if st:
            t = st[0]
        elif heap:
            t = heap[0][0]
        else:
            raise SimulationError("step() on an empty event calendar")
        self._now = t
        limit = t + _WHEEL_SLOTS
        self._limit = limit
        if heap and heap[0][0] < limit:
            wheel = self._wheel
            push, pop = heapq.heappush, heapq.heappop
            while heap and heap[0][0] < limit:
                ht, _s, hev = pop(heap)
                slot = wheel[ht & _WHEEL_MASK]
                if not slot:
                    push(st, ht)
                slot.append(hev)
        heapq.heappop(st)  # == t: the slot we are about to drain
        slot = self._wheel[t & _WHEEL_MASK]
        self._ready.extend(slot)
        slot.clear()
        pending = self.k_scheduled + self.k_timer_rearms - self.k_dispatched
        if pending > self.k_peak_pending:
            self.k_peak_pending = pending

    def _dispatch(self, event: Event) -> None:
        self.k_dispatched += 1
        if self._tracing:
            self._trace_event(event)
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            raise UnhandledProcessError(event)

    def step(self) -> None:
        """Process exactly one event (kept one-per-call for API compat)."""
        if self._legacy:
            if not self._heap:
                raise SimulationError("step() on an empty event calendar")
            when, _, event = heapq.heappop(self._heap)
            if when < self._now:  # pragma: no cover - invariant guard
                raise SimulationError("event scheduled in the past")
            self._now = when
            self._dispatch(event)
            return
        ready = self._ready
        if ready:
            self._dispatch(ready.popleft())
        elif self._now_q:
            self._dispatch(self._now_q.popleft())
        else:
            self._advance_clock()
            self._dispatch(self._ready.popleft())

    def step_batch(self) -> int:
        """Dispatch every event of the next timestamp as one flat batch.

        Drains the staged slot list in seq order, then the ``now``-deque
        FIFO (which may keep growing as wakes cascade); returns the number
        of events dispatched.  In legacy mode this degrades to ``step()``.
        """
        if self._legacy:
            self.step()
            return 1
        ready = self._ready
        nq = self._now_q
        if not ready and not nq:
            self._advance_clock()
        n = 0
        tracing = self._tracing
        if ready:
            # The staged slot cannot grow mid-batch (delay > 0 is strictly
            # future, delay 0 goes to the now-deque), so it drains with a
            # plain iteration — no per-event popleft.
            try:
                for event in ready:
                    if tracing:
                        self._trace_event(event)
                    callbacks, event.callbacks = event.callbacks, None
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
                    n += 1
                    if not event._ok and not event._defused:
                        raise UnhandledProcessError(event)
            except BaseException:
                # Leave the undispatched tail staged, as the legacy
                # kernel leaves it in its heap.
                for _ in range(n):
                    ready.popleft()
                self.k_dispatched += n
                raise
            ready.clear()
        popleft = nq.popleft
        while nq:  # wakes may cascade: the deque can grow while draining
            event = popleft()
            if tracing:
                self._trace_event(event)
            callbacks, event.callbacks = event.callbacks, None
            if callbacks:
                for cb in callbacks:
                    cb(event)
            n += 1
            if not event._ok and not event._defused:
                self.k_dispatched += n
                raise UnhandledProcessError(event)
        self.k_dispatched += n
        return n

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the calendar drains), an integer
        time (run up to and including that instant), or an :class:`Event`
        (run until it is processed and return its value).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[int] = None
        if isinstance(until, Event):
            stop_event = until
            # run() re-raises the stop event's failure itself; keep step()
            # from treating it as an orphaned error.
            if not stop_event.processed:
                stop_event.callbacks.append(
                    lambda ev: None if ev._ok else ev.defuse()
                )
        elif until is not None:
            stop_time = int(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )
        if self._legacy:
            while self._heap:
                if stop_event is not None and stop_event.processed:
                    break
                if stop_time is not None and self._heap[0][0] > stop_time:
                    self._now = stop_time
                    break
                self.step()
        elif stop_event is not None:
            # Per-event stepping: stop exactly when the awaited event has
            # been processed, leaving the rest of its batch staged.
            while not stop_event.processed and self._next_time() is not None:
                self.step()
        else:
            step_batch = self.step_batch
            next_time = self._next_time
            if stop_time is None:
                while next_time() is not None:
                    step_batch()
            else:
                while True:
                    nt = next_time()
                    if nt is None:
                        break
                    if nt > stop_time:
                        self._now = stop_time
                        break
                    step_batch()
        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "run() ended before the awaited event triggered"
                )
            if stop_event._ok:
                return stop_event.value
            stop_event.defuse()
            raise stop_event.value
        if stop_time is not None and self._now < stop_time:
            self._now = stop_time
        return None
