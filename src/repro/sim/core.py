"""The discrete-event simulator core.

A single :class:`Simulator` owns a monotonic integer-nanosecond clock and a
binary-heap event calendar.  Determinism: ties in time are broken by a
monotonically increasing sequence number, so two runs with the same seeds
produce identical schedules.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterable, Optional

from .events import AllOf, AnyOf, Event, SimulationError, Timeout
from .process import Process, ProcessGenerator

__all__ = ["Simulator", "UnhandledProcessError"]


class UnhandledProcessError(SimulationError):
    """A process died with an exception nobody was waiting on."""

    def __init__(self, event: Event):
        cause = event.value
        super().__init__(f"unhandled failure in simulation: {cause!r}")
        self.event = event
        self.__cause__ = cause


class Simulator:
    """Event loop with integer-nanosecond virtual time."""

    def __init__(self) -> None:
        self._now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, int(delay), value)

    def process(self, gen: ProcessGenerator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, tuple(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, tuple(events))

    # -- scheduling ---------------------------------------------------------
    def _enqueue(self, delay: int, event: Event) -> None:
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), event))

    def _report_orphan_failure(self, event: Event) -> None:
        # A failure absorbed by an already-triggered condition; schedule a
        # crash so silent data loss cannot occur.
        raise UnhandledProcessError(event)

    # -- execution ------------------------------------------------------------
    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or ``None`` if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event calendar")
        when, _, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - invariant guard
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            raise UnhandledProcessError(event)

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the calendar drains), an integer
        time (run up to and including that instant), or an :class:`Event`
        (run until it is processed and return its value).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[int] = None
        if isinstance(until, Event):
            stop_event = until
            # run() re-raises the stop event's failure itself; keep step()
            # from treating it as an orphaned error.
            if not stop_event.processed:
                stop_event.callbacks.append(
                    lambda ev: None if ev._ok else ev.defuse()
                )
        elif until is not None:
            stop_time = int(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )
        while self._heap:
            if stop_event is not None and stop_event.processed:
                break
            if stop_time is not None and self._heap[0][0] > stop_time:
                self._now = stop_time
                break
            self.step()
        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "run() ended before the awaited event triggered"
                )
            if stop_event._ok:
                return stop_event.value
            stop_event.defuse()
            raise stop_event.value
        if stop_time is not None and self._now < stop_time:
            self._now = stop_time
        return None
