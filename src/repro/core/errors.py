"""The HydraDB client error taxonomy.

Every exception a public :class:`~repro.core.client.HydraClient` operation
(or the :class:`~repro.core.api.HydraCluster` facade) can raise derives
from :class:`HydraError`, so applications write one ``except HydraError``
and get a stable contract across transports, pipelining modes, and
failovers.  The taxonomy (see docs/PROTOCOLS.md for the full retry /
deadline state machine):

``HydraError``
    Base class; never raised directly.

``RequestTimeout``
    One message-path attempt got no response within
    ``client.op_timeout_ns`` (dead or overloaded shard suspected).  With
    retries enabled (``client.op_deadline_us > 0``, the default) public
    operations absorb these internally and replay; callers only see the
    subclass :class:`ShardUnavailable` once the whole deadline budget is
    gone.  With ``op_deadline_us == 0`` (single-attempt mode) it is
    raised directly, preserving the pre-retry API.

``ShardUnavailable``
    The per-request deadline budget (``client.op_deadline_us``) was
    exhausted without any live route serving the key — every retry timed
    out, errored at the QP level, or found the NIC dark, and no SWAT
    promotion arrived in time.  Subclasses :class:`RequestTimeout` so
    pre-existing ``except RequestTimeout`` handlers keep working.

``RecoveryInProgress``
    :class:`ShardUnavailable` with a diagnosis: the deadline lapsed while
    the key's shard was mid-recovery — a fresh primary replaying the
    durable log after a correlated primary+secondary crash.  The shard is
    coming back (unlike a plain ShardUnavailable, where nothing may be);
    callers that can afford to wait should retry after the routing
    generation bumps.

``BadStatus``
    The shard answered, but with a status the operation cannot express in
    its return value (e.g. ``Status.ERROR`` from a GET).  Carries the
    offending :class:`~repro.protocol.Status` as ``.status``.  NOT_FOUND
    is *not* an error: GETs return ``None`` and mutations return the
    status.

``Backpressure``
    The operation was refused for *load* reasons, not failure: the
    system is shedding work it could not serve in time.  Carries a
    ``retry_after_ns`` hint — the earliest instant a retry can be
    admitted.  The retry engine honors the hint (sleeps it out under
    the deadline budget); callers only see it when the hint exceeds
    the remaining budget, so a throttled op always surfaces promptly
    rather than silently stalling.

``TenantThrottled``
    :class:`Backpressure` from per-tenant traffic engineering: the
    tenant's token-bucket admission rate (``qos.rate_ops``) was
    exceeded client-side, or the shard shed the request server-side
    (``Status.THROTTLED``, ``qos.server_shed_slots``).  Carries the
    offending ``.tenant`` name alongside ``.retry_after_ns``.

``SlotOverflow``
    A request frame exceeds the connection's message-slot size; raise
    ``hydra.conn_buf_bytes`` or lower ``hydra.msg_slots_per_conn``.
    Also a :class:`ValueError` for backward compatibility.

``LifecycleError``
    Component misuse: double ``start()``, operations on a cluster that
    was never started, etc.  Also a :class:`RuntimeError` for backward
    compatibility.
"""

from __future__ import annotations

from ..protocol import Status

__all__ = [
    "HydraError",
    "RequestTimeout",
    "ShardUnavailable",
    "RecoveryInProgress",
    "BadStatus",
    "Backpressure",
    "TenantThrottled",
    "SlotOverflow",
    "LifecycleError",
]


class HydraError(Exception):
    """Base class for every client-visible HydraDB error."""


class RequestTimeout(HydraError):
    """No response within one operation timeout (dead shard suspected)."""


class ShardUnavailable(RequestTimeout):
    """The retry deadline budget lapsed without a live route for the key."""


class RecoveryInProgress(ShardUnavailable):
    """The deadline lapsed while the key's shard was replaying its log."""


class BadStatus(HydraError):
    """The shard replied with a status the operation cannot return."""

    def __init__(self, status: Status, detail: str = ""):
        self.status = status
        suffix = f": {detail}" if detail else ""
        super().__init__(f"unexpected status {status.name}{suffix}")


class Backpressure(HydraError):
    """The operation was load-shed; retry no earlier than the hint."""

    def __init__(self, detail: str = "", retry_after_ns: int = 0):
        self.retry_after_ns = retry_after_ns
        msg = detail or "backpressure"
        if retry_after_ns > 0:
            msg = f"{msg} (retry after {retry_after_ns}ns)"
        super().__init__(msg)


class TenantThrottled(Backpressure):
    """Per-tenant admission control refused the operation."""

    def __init__(self, detail: str = "", retry_after_ns: int = 0,
                 tenant: str = "default"):
        self.tenant = tenant
        super().__init__(detail or f"tenant {tenant!r} throttled",
                         retry_after_ns)


class SlotOverflow(HydraError, ValueError):
    """A request frame does not fit the connection's message slot."""


class LifecycleError(HydraError, RuntimeError):
    """A component was started twice, stopped twice, or used unstarted."""
