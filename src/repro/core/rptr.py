"""Client-side remote-pointer cache (§4.2.2, §4.2.4).

Maps keys to :class:`CachedPointer` capabilities.  A lookup is only usable
while the lease has comfortably more life than one RDMA Read takes; entries
closer to expiry are treated as misses, which routes the GET through the
message path — implicitly renewing the lease and refreshing the pointer
(the paper additionally sends periodic renew messages; the effect is the
same: popular keys keep valid pointers).

One cache instance may be *shared* by all clients on a machine through the
lock-free map (§4.2.4), which both warms faster and converts what would be
N invalid reads after an update into one.  Counters feed Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..index import LockFreeMap
from ..rdma import RemotePointer

__all__ = ["CachedPointer", "RptrCache"]

#: An entry must outlive ``now`` by at least this much to be used (covers
#: the RDMA Read round trip with margin).
LEASE_SAFETY_NS = 10_000


@dataclass(frozen=True)
class CachedPointer:
    """A cached remote pointer with its lease expiry and item version."""

    rptr: RemotePointer
    lease_expiry_ns: int
    version: int


class RptrCache:
    """A (possibly shared) remote-pointer cache with hit accounting."""

    def __init__(self, capacity: int, mode: str = "lockfree"):
        self._map = LockFreeMap(capacity, mode=mode)
        #: RDMA Reads that returned a live, matching item.
        self.successful_hits = 0
        #: RDMA Reads that returned a dead/garbage item (outdated pointer).
        self.invalid_hits = 0
        #: Lookups skipped because the lease was (nearly) expired.
        self.expired = 0
        #: Lookups with no entry at all.
        self.misses = 0
        #: Batched fast-path accounting (the get_many read fan-out):
        #: number of batch lookups, keys they examined, and usable
        #: pointers they returned.  Every returned pointer is posted as
        #: exactly one RDMA Read, so ``successful_hits + invalid_hits``
        #: reconciles with ``batch_hits`` whenever the fan-out is the only
        #: fast-path user (single-key GETs go through batches of one).
        self.batches = 0
        self.batch_keys = 0
        self.batch_hits = 0

    # -- sharing ---------------------------------------------------------
    def add_sharer(self) -> None:
        """Register another co-located client using this cache."""
        self._map.sharers += 1

    @property
    def sharers(self) -> int:
        return self._map.sharers

    def op_cost_ns(self) -> int:
        """CPU cost of one cache operation (lock-free vs locked model)."""
        return self._map.op_cost_ns()

    def batch_op_cost_ns(self, n: int) -> int:
        """CPU cost of one batched lookup sweep over ``n`` keys.

        The fixed per-operation overhead — the epoch announce/retire
        fences of the lock-free map, or the acquire/release (plus
        contention) of the locked ablation — is paid once per sweep;
        each additional key costs only the probe itself, modeled at half
        a standalone op.  A batch of one degenerates to ``op_cost_ns``.
        """
        if n <= 1:
            return self.op_cost_ns() * max(0, n)
        return self.op_cost_ns() + (n - 1) * (self.op_cost_ns() // 2)

    # -- cache ops ---------------------------------------------------------
    def lookup(self, key: bytes, now: int) -> Optional[CachedPointer]:
        """A usable entry for ``key``, or None (counts the miss kind)."""
        entry: Optional[CachedPointer] = self._map.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.lease_expiry_ns < now + LEASE_SAFETY_NS:
            # Too close to expiry to trust: drop and renew via message GET.
            self._map.remove(key)
            self.expired += 1
            return None
        return entry

    def lookup_batch(self, keys: list[bytes],
                     now: int) -> list[Optional[CachedPointer]]:
        """Usable entries for a whole batch of keys (None per miss).

        Per-key miss kinds are counted exactly as :meth:`lookup` does;
        the batch counters additionally record how many pointers each
        fan-out attempt had to work with (Fig. 11 analysis).
        """
        self.batches += 1
        self.batch_keys += len(keys)
        entries = [self.lookup(key, now) for key in keys]
        self.batch_hits += sum(1 for e in entries if e is not None)
        return entries

    def store(self, key: bytes, entry: CachedPointer) -> None:
        """Install/refresh the pointer for ``key``."""
        self._map.put(key, entry)

    def invalidate(self, key: bytes) -> None:
        """Drop ``key`` (out-of-place update made the pointer stale)."""
        self._map.remove(key)

    def record_successful(self) -> None:
        """Count a live, matching RDMA-Read result."""
        self.successful_hits += 1

    def record_invalid(self, key: bytes) -> None:
        """Count a dead/garbage read and drop the entry."""
        self.invalid_hits += 1
        self.invalidate(key)

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: bytes) -> bool:
        return key in self._map

    def stats(self) -> dict[str, int]:
        """Counter snapshot (feeds Fig. 11)."""
        return {
            "successful_hits": self.successful_hits,
            "invalid_hits": self.invalid_hits,
            "expired": self.expired,
            "misses": self.misses,
            "entries": len(self._map),
            "evictions": self._map.evictions,
            "batches": self.batches,
            "batch_keys": self.batch_keys,
            "batch_hits": self.batch_hits,
        }
