"""Pipelined (decoupled I/O / compute) shard — the §6.2.1 ablation.

The design the paper argues *against* when RDMA is available (Fig. 5a):
dedicated I/O dispatcher threads detect requests and hand them over a
queue to worker threads that execute them.  Per request this pays a
hand-off (enqueue + wake-up + cacheline bounce) and, because two workers
now share one partition, a lock around the store.  It consumes
``io_threads + worker_threads`` cores per instance — 4x the single-
threaded design in the paper's configuration — yet delivers strictly
worse latency and throughput, which Fig. 10's "Pipeline + RDMA Write"
series quantifies.
"""

from __future__ import annotations

from typing import Optional

from ..config import SimConfig
from ..hardware import Core, Machine
from ..protocol import Request, Response, Status
from ..protocol.messages import _REQ
from ..sim import Interrupt, MetricSet, RwLock, Simulator, Store
from .errors import LifecycleError
from .shard import (_MAX_OP, _OP_BY_CODE, _WRITE_HI, _WRITE_LO, Connection,
                    Shard, WRITE_OPS)
from .store import ShardStore

__all__ = ["PipelinedShard"]


class PipelinedShard(Shard):
    """Shard with decoupled request detection and handling."""

    def __init__(self, sim: Simulator, config: SimConfig, shard_id: str,
                 machine: Machine, core: Core,
                 metrics: Optional[MetricSet] = None,
                 table_kind: str = "compact", numa_mode: str = "local",
                 scribble_on_reclaim: bool = False,
                 store: Optional[ShardStore] = None):
        super().__init__(sim, config, shard_id, machine, core,
                         metrics=metrics, table_kind=table_kind,
                         numa_mode=numa_mode,
                         scribble_on_reclaim=scribble_on_reclaim, store=store)
        h = self.hydra
        #: The base-class core is I/O dispatcher 0; allocate the rest in
        #: the same NUMA domain (the paper pins whole instances per domain).
        self.io_cores: list[Core] = [core]
        for i in range(1, h.pipeline_io_threads):
            self.io_cores.append(machine.allocate_core(
                f"{shard_id}.io{i}", numa_domain=core.numa_domain))
        self.worker_cores: list[Core] = [
            machine.allocate_core(f"{shard_id}.w{i}",
                                  numa_domain=core.numa_domain)
            for i in range(h.pipeline_worker_threads)
        ]
        self._queue = Store(sim)
        self._store_lock = RwLock(sim)
        self._procs: list = []
        #: Per-I/O-thread connection partitions, re-derived only when the
        #: connection set actually changes (``_conn_gen``) instead of
        #: rebuilt every sweep.
        self._conn_cache: dict[int, list[Connection]] = {}
        self._conn_cache_gen = -1
        #: Flat workers respond through the sweep-batch buffer only.
        self._flat_pipe = (self._flat and self.hydra.rdma_write_messaging
                           and self.hydra.resp_doorbell_batch > 0)

    @property
    def cores_used(self) -> int:
        return len(self.io_cores) + len(self.worker_cores)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self.alive:
            raise LifecycleError(f"{self.shard_id} already running")
        self.alive = True
        for tid, io_core in enumerate(self.io_cores):
            self._procs.append(self.sim.process(
                self._io_loop(tid, io_core), name=f"{self.shard_id}.io{tid}"))
        for wid, w_core in enumerate(self.worker_cores):
            self._procs.append(self.sim.process(
                self._worker_loop(w_core), name=f"{self.shard_id}.w{wid}"))
        self._proc = self._procs[0]
        if self.store.reclaimer._proc is None:
            self.store.reclaimer.start()

    def kill(self) -> None:
        self.alive = False
        self.store.reclaimer.stop()
        for p in self._procs:
            if p.is_alive:
                p.interrupt("killed")
        if self.durable is not None:
            self.durable.crash()
        # Requests handed off but never picked up by a worker die with the
        # process; count them so availability experiments can see how much
        # in-flight work a failover drops on the floor.
        dropped = len(self._queue.items)
        if dropped:
            self._queue.items.clear()
            self.metrics.counter("shard.dropped_handoffs").add(dropped)
        self._teardown_conns()

    # -- I/O dispatchers ------------------------------------------------------
    def _my_conns(self, tid: int) -> list[Connection]:
        """This I/O thread's connection partition, cached until the
        connection set changes (``_conn_gen`` bumps on connect /
        disconnect).  The sweeps used to rebuild every partition from
        scratch on every pass."""
        if self._conn_cache_gen != self._conn_gen:
            self._conn_cache.clear()
            self._conn_cache_gen = self._conn_gen
        conns = self._conn_cache.get(tid)
        if conns is None:
            n = len(self.io_cores)
            conns = self._conn_cache[tid] = [
                c for c in self.conns if c.conn_id % n == tid]
        return conns

    def _io_loop(self, tid: int, core: Core):
        h = self.hydra
        idle_sweeps = 0
        try:
            while self.alive:
                conns = self._my_conns(tid)
                if not conns:
                    yield self.doorbell.wait()
                    continue
                # The partition is gen-fresh: dropped connections are
                # already pruned, so skip the membership re-filter.
                picked = self._select_conns(owned=conns, owned_fresh=True)
                if picked:
                    self.metrics.counter("shard.sweeps").add()
                    yield core.execute(self._sweep_cost(picked))
                else:
                    yield core.execute(self.cpu.poll_probe_ns)
                processed = 0
                for conn in picked:
                    ready, extra_ns = self._poll_conn(conn)
                    if extra_ns:
                        yield core.execute(extra_ns)
                    for slot, payload in ready:
                        # Hand off to a worker: queueing + cacheline bounce.
                        yield core.execute(h.pipeline_handoff_ns)
                        self._queue.put((conn, slot, payload))
                        processed += 1
                if processed:
                    idle_sweeps = 0
                    continue
                if any(c.conn_id in self._ready for c in conns):
                    continue  # a doorbell fired mid-sweep on our partition
                idle_sweeps += 1
                if idle_sweeps < self.cpu.idle_polls_before_sleep:
                    continue
                yield from self._idle_wait(core)
                idle_sweeps = 0
        except Interrupt:
            self.alive = False

    # -- workers ---------------------------------------------------------
    def _worker_body(self, conn, slot: int, req: Request, batch,
                     core: Core):
        """Handle one decoded request end to end (admission, lock,
        execute, replicate, respond, flush check) — the scalar worker
        body, shared with the flat worker's named-tenant fallback."""
        h = self.hydra
        if req.tenant and batch is not None:
            shed = yield from self._tenant_admit(conn, slot, req,
                                                 batch, core)
            if shed:
                if (not self._queue.items or self._batch_full(batch)
                        or self._batch_aged(batch)):
                    yield from self._finish_sweep(batch)
                return
        # Workers share the partition: GETs take the lock shared,
        # mutations exclusive, and mutations bounce the partition's
        # cachelines between the worker cores.
        is_write = req.op in WRITE_OPS
        if is_write:
            yield self._store_lock.write_acquire()
            penalty = h.pipeline_write_penalty
        else:
            yield self._store_lock.read_acquire()
            penalty = h.pipeline_read_penalty
        yield core.execute(h.pipeline_lock_ns)
        result = self._execute(req)
        cost = (self.cpu.parse_ns + int(result.cost_ns * penalty)
                + self.cpu.build_response_ns)
        if not self.hydra.rdma_write_messaging:
            cost += self.cpu.sendrecv_server_extra_ns
        yield core.execute(cost)
        if (self.replicator is not None and is_write
                and result.status is Status.OK):
            rep_cost, wait_ev = self.replicator.replicate(
                req.op, req.key, req.value, result.version)
            yield core.execute(rep_cost)
            if wait_ev is not None:
                if batch is not None:
                    batch.rep_waits.append(wait_ev)
                else:
                    yield wait_ev
        if (self.durable is not None and is_write
                and result.status is Status.OK):
            dur_cost, flush_ev = self.durable.append(
                req.op, req.key, req.value, result.version)
            yield core.execute(dur_cost)
            if flush_ev is not None:
                if batch is not None:
                    batch.rep_waits.append(flush_ev)
                else:
                    yield flush_ev
        if is_write:
            self._store_lock.write_release()
        else:
            self._store_lock.read_release()
        resp = Response(
            op=req.op, status=result.status, req_id=req.req_id,
            value=result.value,
            rkey=(self.store.region.rkey
                  if result.status is Status.OK and result.offset >= 0
                  else 0),
            roffset=max(result.offset, 0),
            rlen=result.extent,
            lease_expiry_ns=result.lease_expiry_ns,
            version=result.version,
        )
        self._respond(conn, resp, slot, batch)
        if batch is not None and (not self._queue.items
                                  or self._batch_full(batch)
                                  or self._batch_aged(batch)):
            yield from self._finish_sweep(batch)

    def _worker_flat(self, core: Core, batch):
        """Flat twin of the worker loop: headers unpacked in place, store
        dispatched on the raw opcode, responses packed straight to wire
        bytes.  Every lock/execute/replicate/flush yield mirrors
        :meth:`_worker_body` 1:1 (named tenants fall back to it — the
        admission path needs the decoded identity), so the schedule
        digest matches the scalar oracle.  Note the worker loops keep no
        per-op counters on either path."""
        h = self.hydra
        store = self.store
        queue = self._queue
        lock = self._store_lock
        replicator = self.replicator
        durable = self.durable
        unpack = _REQ.unpack_from
        base = _REQ.size
        lock_ns = h.pipeline_lock_ns
        w_pen = h.pipeline_write_penalty
        r_pen = h.pipeline_read_penalty
        parse_build = self.cpu.parse_ns + self.cpu.build_response_ns
        ok = Status.OK
        try:
            while self.alive:
                conn, slot, payload = yield queue.get()
                self._c_requests.add()
                bad = len(payload) < base
                if not bad:
                    op, tlen, klen, vlen, rid = unpack(payload, 0)
                    bad = (len(payload) != base + klen + vlen + tlen
                           or not 1 <= op <= _MAX_OP)
                if bad:
                    self._c_bad_requests.add()
                    continue
                if tlen:
                    yield from self._worker_body(
                        conn, slot, Request.decode(payload), batch, core)
                    continue
                key = payload[base:base + klen]
                value = payload[base + klen:base + klen + vlen]
                is_write = _WRITE_LO <= op <= _WRITE_HI
                if is_write:
                    yield lock.write_acquire()
                    penalty = w_pen
                else:
                    yield lock.read_acquire()
                    penalty = r_pen
                yield core.execute(lock_ns)
                if op == 1:
                    result = store.get(key)
                elif op <= 4:
                    result = store.upsert(key, value, _OP_BY_CODE[op])
                elif op == 5:
                    result = store.remove(key)
                else:
                    result = store.lease_renew(key)
                yield core.execute(parse_build
                                   + int(result.cost_ns * penalty))
                if (replicator is not None and is_write
                        and result.status is ok):
                    rep_cost, wait_ev = replicator.replicate(
                        _OP_BY_CODE[op], key, value, result.version)
                    yield core.execute(rep_cost)
                    if wait_ev is not None:
                        batch.rep_waits.append(wait_ev)
                if durable is not None and is_write and result.status is ok:
                    dur_cost, flush_ev = durable.append(
                        _OP_BY_CODE[op], key, value, result.version)
                    yield core.execute(dur_cost)
                    if flush_ev is not None:
                        batch.rep_waits.append(flush_ev)
                if is_write:
                    lock.write_release()
                else:
                    lock.read_release()
                self._respond_flat(conn, slot, op, rid, result, store,
                                   batch)
                if (not queue.items or self._batch_full(batch)
                        or self._batch_aged(batch)):
                    yield from self._finish_sweep(batch)
        except Interrupt:
            self.alive = False

    def _worker_loop(self, core: Core):
        # Long-lived response batch: flushed when the hand-off queue
        # drains or at the resp_doorbell_batch cap, whichever is sooner.
        batch = self._new_batch()
        if self._flat_pipe:
            yield from self._worker_flat(core, batch)
            return
        try:
            while self.alive:
                conn, slot, payload = yield self._queue.get()
                self.metrics.counter("shard.requests").add()
                try:
                    req = Request.decode(payload)
                except (ValueError, KeyError):
                    self.metrics.counter("shard.bad_requests").add()
                    continue
                yield from self._worker_body(conn, slot, req, batch, core)
        except Interrupt:
            self.alive = False
