"""Pipelined (decoupled I/O / compute) shard — the §6.2.1 ablation.

The design the paper argues *against* when RDMA is available (Fig. 5a):
dedicated I/O dispatcher threads detect requests and hand them over a
queue to worker threads that execute them.  Per request this pays a
hand-off (enqueue + wake-up + cacheline bounce) and, because two workers
now share one partition, a lock around the store.  It consumes
``io_threads + worker_threads`` cores per instance — 4x the single-
threaded design in the paper's configuration — yet delivers strictly
worse latency and throughput, which Fig. 10's "Pipeline + RDMA Write"
series quantifies.
"""

from __future__ import annotations

from typing import Optional

from ..config import SimConfig
from ..hardware import Core, Machine
from ..protocol import Request, Response, Status
from ..sim import Interrupt, MetricSet, RwLock, Simulator, Store
from .errors import LifecycleError
from .shard import Connection, Shard, WRITE_OPS
from .store import ShardStore

__all__ = ["PipelinedShard"]


class PipelinedShard(Shard):
    """Shard with decoupled request detection and handling."""

    def __init__(self, sim: Simulator, config: SimConfig, shard_id: str,
                 machine: Machine, core: Core,
                 metrics: Optional[MetricSet] = None,
                 table_kind: str = "compact", numa_mode: str = "local",
                 scribble_on_reclaim: bool = False,
                 store: Optional[ShardStore] = None):
        super().__init__(sim, config, shard_id, machine, core,
                         metrics=metrics, table_kind=table_kind,
                         numa_mode=numa_mode,
                         scribble_on_reclaim=scribble_on_reclaim, store=store)
        h = self.hydra
        #: The base-class core is I/O dispatcher 0; allocate the rest in
        #: the same NUMA domain (the paper pins whole instances per domain).
        self.io_cores: list[Core] = [core]
        for i in range(1, h.pipeline_io_threads):
            self.io_cores.append(machine.allocate_core(
                f"{shard_id}.io{i}", numa_domain=core.numa_domain))
        self.worker_cores: list[Core] = [
            machine.allocate_core(f"{shard_id}.w{i}",
                                  numa_domain=core.numa_domain)
            for i in range(h.pipeline_worker_threads)
        ]
        self._queue = Store(sim)
        self._store_lock = RwLock(sim)
        self._procs: list = []

    @property
    def cores_used(self) -> int:
        return len(self.io_cores) + len(self.worker_cores)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self.alive:
            raise LifecycleError(f"{self.shard_id} already running")
        self.alive = True
        for tid, io_core in enumerate(self.io_cores):
            self._procs.append(self.sim.process(
                self._io_loop(tid, io_core), name=f"{self.shard_id}.io{tid}"))
        for wid, w_core in enumerate(self.worker_cores):
            self._procs.append(self.sim.process(
                self._worker_loop(w_core), name=f"{self.shard_id}.w{wid}"))
        self._proc = self._procs[0]
        if self.store.reclaimer._proc is None:
            self.store.reclaimer.start()

    def kill(self) -> None:
        self.alive = False
        self.store.reclaimer.stop()
        for p in self._procs:
            if p.is_alive:
                p.interrupt("killed")
        # Requests handed off but never picked up by a worker die with the
        # process; count them so availability experiments can see how much
        # in-flight work a failover drops on the floor.
        dropped = len(self._queue.items)
        if dropped:
            self._queue.items.clear()
            self.metrics.counter("shard.dropped_handoffs").add(dropped)
        self._teardown_conns()

    # -- I/O dispatchers ------------------------------------------------------
    def _my_conns(self, tid: int) -> list[Connection]:
        n = len(self.io_cores)
        return [c for c in self.conns if c.conn_id % n == tid]

    def _io_loop(self, tid: int, core: Core):
        h = self.hydra
        idle_sweeps = 0
        try:
            while self.alive:
                conns = self._my_conns(tid)
                if not conns:
                    yield self.doorbell.wait()
                    continue
                picked = self._select_conns(owned=conns)
                if picked:
                    self.metrics.counter("shard.sweeps").add()
                    yield core.execute(self._sweep_cost(picked))
                else:
                    yield core.execute(self.cpu.poll_probe_ns)
                processed = 0
                for conn in picked:
                    ready, extra_ns = self._poll_conn(conn)
                    if extra_ns:
                        yield core.execute(extra_ns)
                    for slot, payload in ready:
                        # Hand off to a worker: queueing + cacheline bounce.
                        yield core.execute(h.pipeline_handoff_ns)
                        self._queue.put((conn, slot, payload))
                        processed += 1
                if processed:
                    idle_sweeps = 0
                    continue
                if any(c.conn_id in self._ready for c in conns):
                    continue  # a doorbell fired mid-sweep on our partition
                idle_sweeps += 1
                if idle_sweeps < self.cpu.idle_polls_before_sleep:
                    continue
                yield from self._idle_wait(core)
                idle_sweeps = 0
        except Interrupt:
            self.alive = False

    # -- workers ---------------------------------------------------------
    def _worker_loop(self, core: Core):
        h = self.hydra
        # Long-lived response batch: flushed when the hand-off queue
        # drains or at the resp_doorbell_batch cap, whichever is sooner.
        batch = self._new_batch()
        try:
            while self.alive:
                conn, slot, payload = yield self._queue.get()
                self.metrics.counter("shard.requests").add()
                try:
                    req = Request.decode(payload)
                except (ValueError, KeyError):
                    self.metrics.counter("shard.bad_requests").add()
                    continue
                if req.tenant and batch is not None:
                    shed = yield from self._tenant_admit(conn, slot, req,
                                                         batch, core)
                    if shed:
                        if (not self._queue.items or self._batch_full(batch)
                                or self._batch_aged(batch)):
                            yield from self._finish_sweep(batch)
                        continue
                # Workers share the partition: GETs take the lock shared,
                # mutations exclusive, and mutations bounce the partition's
                # cachelines between the worker cores.
                is_write = req.op in WRITE_OPS
                if is_write:
                    yield self._store_lock.write_acquire()
                    penalty = h.pipeline_write_penalty
                else:
                    yield self._store_lock.read_acquire()
                    penalty = h.pipeline_read_penalty
                yield core.execute(h.pipeline_lock_ns)
                result = self._execute(req)
                cost = (self.cpu.parse_ns + int(result.cost_ns * penalty)
                        + self.cpu.build_response_ns)
                if not self.hydra.rdma_write_messaging:
                    cost += self.cpu.sendrecv_server_extra_ns
                yield core.execute(cost)
                if (self.replicator is not None and is_write
                        and result.status is Status.OK):
                    rep_cost, wait_ev = self.replicator.replicate(
                        req.op, req.key, req.value, result.version)
                    yield core.execute(rep_cost)
                    if wait_ev is not None:
                        if batch is not None:
                            batch.rep_waits.append(wait_ev)
                        else:
                            yield wait_ev
                if is_write:
                    self._store_lock.write_release()
                else:
                    self._store_lock.read_release()
                resp = Response(
                    op=req.op, status=result.status, req_id=req.req_id,
                    value=result.value,
                    rkey=(self.store.region.rkey
                          if result.status is Status.OK and result.offset >= 0
                          else 0),
                    roffset=max(result.offset, 0),
                    rlen=result.extent,
                    lease_expiry_ns=result.lease_expiry_ns,
                    version=result.version,
                )
                self._respond(conn, resp, slot, batch)
                if batch is not None and (not self._queue.items
                                          or self._batch_full(batch)
                                          or self._batch_aged(batch)):
                    yield from self._finish_sweep(batch)
        except Interrupt:
            self.alive = False
