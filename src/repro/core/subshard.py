"""Sub-sharded shard instance — the §6.3 proposal, implemented.

The scale-up experiment (Fig. 12c,d) shows HydraDB hitting a wall once
``shards x clients`` RDMA connections overflow the NIC's QP state cache.
The paper proposes sub-sharding as the mitigation: *"allow a single shard
instance to use multiple cores for independent sub-shards while the main
process maintains all the connections"*.

This class implements it: one instance owns all client connections (so
the QP count stays ``clients``, not ``clients x cores``) and a dispatcher
thread routes each request by key hash to one of ``n_subshards``
independent single-threaded executors.  Unlike the pipelined ablation,
sub-shards share *nothing* — each exclusively owns its own
:class:`~repro.core.store.ShardStore` — so the lock-free execution model
is preserved; the only added costs are the dispatch hand-off and a short
send-queue lock when executors post responses on shared QPs.

The ablation bench ``ablation_subsharding`` compares this against plain
multi-shard scale-up past the QP wall.
"""

from __future__ import annotations

from typing import Optional

from ..config import SimConfig
from ..hardware import Core, Machine
from ..index.hashing import hash64
from ..protocol import Op, Request, Response, Status
from ..protocol.messages import _REQ
from ..sim import Interrupt, MetricSet, Simulator, Store
from .errors import LifecycleError
from .shard import (_MAX_OP, _OP_BY_CODE, _WRITE_HI, _WRITE_LO, Shard,
                    WRITE_OPS)
from .store import ShardStore

__all__ = ["SubShardedShard"]

#: Serializing response posts from multiple executor cores onto one QP.
SEND_LOCK_NS = 60
#: Dispatcher hand-off (cheaper than the pipelined path: no shared store,
#: the request routes straight to its owning core's queue).
DISPATCH_NS = 250


class SubShardedShard(Shard):
    """One connection endpoint, ``n_subshards`` independent executors."""

    def __init__(self, sim: Simulator, config: SimConfig, shard_id: str,
                 machine: Machine, core: Core, n_subshards: int,
                 metrics: Optional[MetricSet] = None,
                 table_kind: str = "compact", numa_mode: str = "local",
                 scribble_on_reclaim: bool = False):
        if n_subshards < 1:
            raise ValueError("need at least one sub-shard")
        # No index export: one connection fronts many sub-tables here, so
        # a single traversable bucket region cannot be advertised.
        super().__init__(sim, config, shard_id, machine, core,
                         metrics=metrics, table_kind=table_kind,
                         numa_mode=numa_mode,
                         scribble_on_reclaim=scribble_on_reclaim,
                         export_index=False)
        # The base-class store becomes sub-shard 0; the rest get their own
        # stores and cores within the same NUMA domain where possible.
        self.substores: list[ShardStore] = [self.store]
        self.subcores: list[Core] = []
        self._queues: list[Store] = [Store(sim) for _ in range(n_subshards)]
        for k in range(1, n_subshards):
            self.substores.append(ShardStore(
                sim, config, self.nic, core.numa_domain,
                f"{shard_id}.sub{k}", table_kind=table_kind,
                numa_mode=numa_mode,
                scribble_on_reclaim=scribble_on_reclaim,
                export_index=False))
        for k in range(n_subshards):
            self.subcores.append(machine.allocate_core(
                f"{shard_id}.sub{k}"))
        self.n_subshards = n_subshards
        self._procs: list = []
        #: Flat hand-off (hydra.flat_hot_paths): dispatcher and executors
        #: must agree on the queue item shape, so the mode is fixed here.
        #: Requires response batching — the flat executor responds through
        #: the sweep-batch buffer only.
        self._flat_sub = (self._flat and self.hydra.rdma_write_messaging
                          and self.hydra.resp_doorbell_batch > 0)

    @property
    def cores_used(self) -> int:
        return 1 + self.n_subshards

    def _substore_for(self, key: bytes) -> int:
        # Decorrelated from the cluster ring (which uses the low bits).
        return (hash64(key) >> 32) % self.n_subshards

    def store_for_key(self, key: bytes) -> ShardStore:
        return self.substores[self._substore_for(key)]

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self.alive:
            raise LifecycleError(f"{self.shard_id} already running")
        if self.replicator is not None:
            raise LifecycleError(
                "sub-sharded instances do not support replication hooks")
        self.alive = True
        self._procs = [self.sim.process(self._dispatch_loop(),
                                        name=f"{self.shard_id}.dispatch")]
        for k in range(self.n_subshards):
            self._procs.append(self.sim.process(
                self._executor_loop(k), name=f"{self.shard_id}.sub{k}"))
        self._proc = self._procs[0]
        for store in self.substores:
            if store.reclaimer._proc is None:
                store.reclaimer.start()

    def kill(self) -> None:
        self.alive = False
        for store in self.substores:
            store.reclaimer.stop()
        for p in self._procs:
            if p.is_alive:
                p.interrupt("killed")
        if self.durable is not None:
            self.durable.crash()
        self._teardown_conns()

    # -- dispatcher (owns every connection) --------------------------------
    def _dispatch_loop(self):
        idle_sweeps = 0
        try:
            while self.alive:
                if not self.conns:
                    yield self.doorbell.wait()
                    continue
                picked = self._select_conns()
                if picked:
                    self.metrics.counter("shard.sweeps").add()
                    yield self.core.execute(self._sweep_cost(picked))
                else:
                    yield self.core.execute(self.cpu.poll_probe_ns)
                processed = 0
                for conn in picked:
                    ready, extra_ns = self._poll_conn(conn)
                    if extra_ns:
                        yield self.core.execute(extra_ns)
                    if self._flat_sub:
                        processed += yield from self._dispatch_flat(
                            conn, ready)
                        continue
                    for slot, payload in ready:
                        self.metrics.counter("shard.requests").add()
                        try:
                            req = Request.decode(payload)
                        except (ValueError, KeyError):
                            self.metrics.counter("shard.bad_requests").add()
                            continue
                        self.metrics.counter(f"shard.op.{req.op.name}").add()
                        yield self.core.execute(
                            self.cpu.parse_ns + DISPATCH_NS)
                        self._queues[self._substore_for(req.key)].put(
                            (conn, slot, req))
                        processed += 1
                if processed:
                    idle_sweeps = 0
                    continue
                if self._ready:
                    continue
                idle_sweeps += 1
                if idle_sweeps < self.cpu.idle_polls_before_sleep:
                    continue
                # Honors cpu.sleep_backoff like the base shard loop (the
                # dispatcher used to sleep unconditionally, skewing the
                # busy-poll ablation's CPU numbers).
                yield from self._idle_wait(self.core)
                idle_sweeps = 0
        except Interrupt:
            self.alive = False

    def _dispatch_flat(self, conn, ready):
        """Flat-array hand-off: unpack each header in place and enqueue a
        raw ``(conn, slot, op, key, value, req_id)`` tuple — no Request
        objects.  Sub-shard executors ignore tenant identity (the scalar
        path runs no admission here either), so named-tenant requests
        ride the same fast path.  Yields exactly where the scalar
        dispatcher does, so the schedule digest is unchanged."""
        unpack = _REQ.unpack_from
        base = _REQ.size
        execute = self.core.execute
        handoff = self.cpu.parse_ns + DISPATCH_NS
        queues = self._queues
        processed = 0
        for slot, payload in ready:
            self._c_requests.add()
            bad = len(payload) < base
            if not bad:
                op, tlen, klen, vlen, rid = unpack(payload, 0)
                bad = (len(payload) != base + klen + vlen + tlen
                       or not 1 <= op <= _MAX_OP)
            if bad:
                self._c_bad_requests.add()
                continue
            self._c_op[op].add()
            key = payload[base:base + klen]
            yield execute(handoff)
            queues[self._substore_for(key)].put(
                (conn, slot, op, key,
                 payload[base + klen:base + klen + vlen], rid))
            processed += 1
        return processed

    # -- executors (exclusive sub-partition owners) ------------------------
    def _execute_on(self, store: ShardStore, req: Request):
        if req.op is Op.GET:
            return store.get(req.key)
        if req.op in (Op.PUT, Op.INSERT, Op.UPDATE):
            return store.upsert(req.key, req.value, req.op)
        if req.op is Op.DELETE:
            return store.remove(req.key)
        if req.op is Op.LEASE_RENEW:
            return store.lease_renew(req.key)
        from .store import StoreResult
        return StoreResult(status=Status.ERROR, cost_ns=self.cpu.parse_ns)

    def _executor_flat(self, k: int, store: ShardStore, core, batch):
        """Flat twin of :meth:`_executor_loop`: dispatches on the raw
        opcode and packs responses straight to wire bytes.  Same yields,
        same flush points — bit-identical schedule."""
        queue = self._queues[k]
        lock_build = self.cpu.build_response_ns + SEND_LOCK_NS
        try:
            while self.alive:
                conn, slot, op, key, value, rid = yield queue.get()
                if op == 1:
                    result = store.get(key)
                elif op <= 4:
                    result = store.upsert(key, value, _OP_BY_CODE[op])
                elif op == 5:
                    result = store.remove(key)
                else:
                    result = store.lease_renew(key)
                yield core.execute(result.cost_ns + lock_build)
                if (self.durable is not None and result.status is Status.OK
                        and _WRITE_LO <= op <= _WRITE_HI):
                    dur_cost, flush_ev = self.durable.append(
                        _OP_BY_CODE[op], key, value, result.version)
                    yield core.execute(dur_cost)
                    if flush_ev is not None:
                        batch.rep_waits.append(flush_ev)
                self._respond_flat(conn, slot, op, rid, result, store,
                                   batch)
                if (not queue.items or self._batch_full(batch)
                        or self._batch_aged(batch)):
                    yield from self._finish_sweep(batch)
        except Interrupt:
            self.alive = False

    def _executor_loop(self, k: int):
        store = self.substores[k]
        core = self.subcores[k]
        # Long-lived response batch: flushed when this executor's queue
        # drains or at the resp_doorbell_batch cap, whichever is sooner.
        batch = self._new_batch()
        if self._flat_sub:
            yield from self._executor_flat(k, store, core, batch)
            return
        try:
            while self.alive:
                conn, slot, req = yield self._queues[k].get()
                result = self._execute_on(store, req)
                yield core.execute(result.cost_ns
                                   + self.cpu.build_response_ns
                                   + SEND_LOCK_NS)
                if (self.durable is not None and req.op in WRITE_OPS
                        and result.status is Status.OK):
                    dur_cost, flush_ev = self.durable.append(
                        req.op, req.key, req.value, result.version)
                    yield core.execute(dur_cost)
                    if flush_ev is not None:
                        if batch is not None:
                            batch.rep_waits.append(flush_ev)
                        else:
                            yield flush_ev
                resp = Response(
                    op=req.op, status=result.status, req_id=req.req_id,
                    value=result.value,
                    rkey=(store.region.rkey
                          if result.status is Status.OK
                          and result.offset >= 0 else 0),
                    roffset=max(result.offset, 0),
                    rlen=result.extent,
                    lease_expiry_ns=result.lease_expiry_ns,
                    version=result.version,
                )
                self._respond(conn, resp, slot, batch)
                if batch is not None and (not self._queues[k].items
                                          or self._batch_full(batch)
                                          or self._batch_aged(batch)):
                    yield from self._finish_sweep(batch)
        except Interrupt:
            self.alive = False

    # -- introspection (the facade sums sub-stores) --------------------------
    def total_items(self) -> int:
        return sum(len(s) for s in self.substores)

    def dump_all(self) -> dict[bytes, bytes]:
        out: dict[bytes, bytes] = {}
        for s in self.substores:
            out.update(s.dump())
        return out
