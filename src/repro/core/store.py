"""Shard-local storage engine: arena + compact table + leases + reclaim.

This is the state a shard owns exclusively (§4.1.1): no locks anywhere, by
construction.  Every operation returns a :class:`StoreResult` carrying a
``cost_ns`` figure computed from the CPU/NUMA cost model; the caller (the
shard's single thread, or the secondary's merge thread) charges it to its
core.  Splitting state from the event loop lets primaries and secondaries
share the exact same engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimConfig
from ..index import ChainedHashTable, CompactHashTable, hash64
from ..index.export import BucketExport, IndexHandshake
from ..kvmem import (
    HEADER_BYTES,
    LeaseReclaimer,
    OutOfMemory,
    SlabAllocator,
    item_size,
    kill_item,
    write_item,
)
from ..kvmem.layout import cachelines
from ..protocol import Op, Status
from ..rdma import MemoryRegion, Nic
from ..sim import Simulator
from .lease import LeaseManager

__all__ = ["ShardStore", "StoreResult"]


@dataclass
class StoreResult:
    status: Status
    value: bytes = b""
    offset: int = -1
    extent: int = 0
    version: int = 0
    lease_expiry_ns: int = 0
    cost_ns: int = 0
    #: Offset retired by this op (update/delete), for replication capture.
    retired_offset: int = -1


class ShardStore:
    """Exclusive single-owner key-value state for one shard."""

    def __init__(self, sim: Simulator, config: SimConfig, nic: Nic,
                 numa_domain: int, name: str,
                 table_kind: str = "compact",
                 numa_mode: str = "local",
                 scribble_on_reclaim: bool = False,
                 export_index: bool = True):
        self.sim = sim
        self.config = config
        self.cpu = config.cpu
        self.name = name
        self.numa_domain = numa_domain
        if numa_mode not in ("local", "remote", "interleaved"):
            raise ValueError(f"unknown numa_mode {numa_mode!r}")
        self.numa_mode = numa_mode
        self.region = MemoryRegion(config.memory.arena_bytes,
                                   numa_domain=numa_domain,
                                   name=f"{name}.arena")
        nic.register(self.region)
        self.alloc = SlabAllocator(self.region, config.memory.size_classes)
        table_cls = {"compact": CompactHashTable,
                     "chained": ChainedHashTable}.get(table_kind)
        if table_cls is None:
            raise ValueError(f"unknown table_kind {table_kind!r}")
        self.table = table_cls(config.hydra.buckets_per_shard, self.key_at)
        self.leases = LeaseManager(sim, config.hydra)
        # Client-readable index mirror (traversal path): only the compact
        # table has the fixed 64 B bucket geometry the export encodes.
        self.export: BucketExport | None = None
        if (export_index and config.traversal.enabled
                and table_cls is CompactHashTable):
            class_index = {c: i for i, c in enumerate(self.alloc.classes)}
            self.export = BucketExport(
                config.hydra.buckets_per_shard,
                config.traversal.export_overflow,
                lambda off: class_index[self.alloc.extent_class(off)],
                numa_domain=numa_domain, name=name,
            )
            nic.register(self.export.region)
            self.table.attach_export(self.export)
        self.reclaimer = LeaseReclaimer(
            sim, self.alloc, config.memory.reclaim_period_ns,
            scribble=scribble_on_reclaim,
            horizon_ns=(config.traversal.read_horizon_ns
                        if self.export is not None else 0),
        )

    # -- arena access helpers ------------------------------------------------
    def key_at(self, offset: int) -> bytes:
        klen = self.region.read_u32(offset) >> 16
        return self.region.read(offset + HEADER_BYTES, klen)

    def _header(self, offset: int) -> tuple[int, int, int]:
        """(klen, vlen, version) at an arena offset."""
        word = self.region.read_u32(offset)
        klen = word >> 16
        vlen = self.region.read_u32(offset + 4)
        version = self.region.read_u64(offset + 8)
        return klen, vlen, version

    # -- cost model ----------------------------------------------------------
    def _line_ns(self, lines: int) -> int:
        if self.numa_mode == "local":
            return self.cpu.cacheline_ns(lines, remote=False)
        if self.numa_mode == "remote":
            return self.cpu.cacheline_ns(lines, remote=True)
        # interleaved: average across the machine's 4 controllers.
        per = (self.cpu.cacheline_local_ns
               + 3 * self.cpu.cacheline_remote_ns) / 4
        return int(lines * per)

    def _index_cost(self, key: bytes) -> int:
        """Cost of the table op that just ran (lines + key compares)."""
        t = self.table
        return (self._line_ns(t.last_lines)
                + t.last_keycmps * (self.cpu.keycmp_word_ns * max(1, len(key) // 8)
                                    + self._line_ns(cachelines(len(key)))))

    # -- operations --------------------------------------------------------
    def get(self, key: bytes) -> StoreResult:
        h = hash64(key)
        cost = self.cpu.hash_key_ns
        offset = self.table.lookup(key, h)
        cost += self._index_cost(key)
        if offset is None:
            return StoreResult(status=Status.NOT_FOUND, cost_ns=cost)
        klen, vlen, version = self._header(offset)
        extent = item_size(klen, vlen)
        value = self.region.read(offset + HEADER_BYTES + klen, vlen)
        # Header + key lines are latency-bound fetches; the value itself
        # streams at memcpy rate (charging per-line there would double
        # count and penalize multi-MB items).
        cost += (self._line_ns(cachelines(HEADER_BYTES + klen))
                 + self.cpu.memcpy_ns(vlen))
        expiry = self.leases.on_get(offset)
        return StoreResult(status=Status.OK, value=value, offset=offset,
                           extent=extent, version=version,
                           lease_expiry_ns=expiry, cost_ns=cost)

    def upsert(self, key: bytes, value: bytes, op: Op,
               forced_version: int = 0) -> StoreResult:
        """INSERT / UPDATE / PUT with out-of-place allocation."""
        h = hash64(key)
        cost = self.cpu.hash_key_ns
        old_offset = self.table.lookup(key, h)
        cost += self._index_cost(key)
        if op is Op.INSERT and old_offset is not None:
            return StoreResult(status=Status.EXISTS, cost_ns=cost)
        if op is Op.UPDATE and old_offset is None:
            return StoreResult(status=Status.NOT_FOUND, cost_ns=cost)
        if forced_version:
            version = forced_version
        elif old_offset is not None:
            version = self._header(old_offset)[2] + 1
        else:
            version = 1
        extent = item_size(len(key), len(value))
        try:
            new_offset = self.alloc.alloc(extent)
        except OutOfMemory:
            return StoreResult(status=Status.ERROR, cost_ns=cost)
        write_item(self.region, new_offset, key, value, version)
        cost += (self.cpu.alloc_ns + self.cpu.memcpy_ns(extent)
                 + self.cpu.update_extra_ns)
        fw0 = self.export.frames_written if self.export is not None else 0
        self.table.put(key, h, new_offset)
        cost += self._line_ns(self.table.last_lines)
        if self.export is not None:
            # Each re-exported frame is one cacheline store.
            cost += self._line_ns(self.export.frames_written - fw0)
        retired = -1
        if old_offset is not None:
            old_klen, old_vlen, _ = self._header(old_offset)
            kill_item(self.region, old_offset, old_klen, old_vlen)
            cost += self._line_ns(1)  # the guardian flip
            frozen = self.leases.freeze(old_offset)
            self.reclaimer.retire(old_offset, frozen)
            retired = old_offset
        expiry = self.leases.on_insert(new_offset)
        return StoreResult(status=Status.OK, offset=new_offset, extent=extent,
                           version=version, lease_expiry_ns=expiry,
                           cost_ns=cost, retired_offset=retired)

    def remove(self, key: bytes) -> StoreResult:
        h = hash64(key)
        cost = self.cpu.hash_key_ns
        fw0 = self.export.frames_written if self.export is not None else 0
        offset = self.table.remove(key, h)
        cost += self._index_cost(key)
        if self.export is not None:
            cost += self._line_ns(self.export.frames_written - fw0)
        if offset is None:
            return StoreResult(status=Status.NOT_FOUND, cost_ns=cost)
        klen, vlen, version = self._header(offset)
        kill_item(self.region, offset, klen, vlen)
        cost += self._line_ns(1)
        frozen = self.leases.freeze(offset)
        self.reclaimer.retire(offset, frozen)
        return StoreResult(status=Status.OK, version=version, cost_ns=cost,
                           retired_offset=offset)

    def lease_renew(self, key: bytes) -> StoreResult:
        h = hash64(key)
        cost = self.cpu.hash_key_ns
        offset = self.table.lookup(key, h)
        cost += self._index_cost(key)
        if offset is None:
            return StoreResult(status=Status.NOT_FOUND, cost_ns=cost)
        klen, vlen, version = self._header(offset)
        expiry = self.leases.renew(offset)
        return StoreResult(status=Status.OK, offset=offset,
                           extent=item_size(klen, vlen), version=version,
                           lease_expiry_ns=expiry, cost_ns=cost)

    def apply(self, op: Op, key: bytes, value: bytes,
              version: int = 0) -> StoreResult:
        """Apply a replicated record (secondary merge path)."""
        if op in (Op.PUT, Op.INSERT, Op.UPDATE):
            return self.upsert(key, value, Op.PUT, forced_version=version)
        if op is Op.DELETE:
            return self.remove(key)
        raise ValueError(f"non-replicable op {op!r}")

    def index_handshake(self) -> IndexHandshake | None:
        """Traversal advertisement for new connections (None = no export)."""
        if self.export is None:
            return None
        hs = self.export.handshake(self.region, self.alloc.classes)
        return hs

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.table)

    def dump(self) -> dict[bytes, bytes]:
        """Full contents (migration / verification); not cost-accounted."""
        out: dict[bytes, bytes] = {}
        for _sig, offset in self.table.items():
            klen, vlen, _ = self._header(offset)
            key = self.region.read(offset + HEADER_BYTES, klen)
            out[key] = self.region.read(offset + HEADER_BYTES + klen, vlen)
        return out
