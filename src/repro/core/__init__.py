"""HydraDB core: shards, clients, consistent hashing, leases, the cluster."""

from .api import HydraCluster, RoutingTable
from .client import ClientTransport, HydraClient, StaticRouter
from .errors import (Backpressure, BadStatus, HydraError, LifecycleError,
                     RecoveryInProgress, RequestTimeout, ShardUnavailable,
                     SlotOverflow, TenantThrottled)
from .lease import LeaseManager, LeaseState
from .ring import HashRing
from .rptr import CachedPointer, RptrCache
from .server import HydraServer
from .shard import Connection, Shard, WRITE_OPS
from .subshard import SubShardedShard
from .store import ShardStore, StoreResult

__all__ = [
    "HydraCluster",
    "RoutingTable",
    "HydraClient",
    "ClientTransport",
    "StaticRouter",
    "HydraError",
    "RequestTimeout",
    "ShardUnavailable",
    "RecoveryInProgress",
    "BadStatus",
    "SlotOverflow",
    "LifecycleError",
    "Backpressure",
    "TenantThrottled",
    "HydraServer",
    "Shard",
    "SubShardedShard",
    "Connection",
    "WRITE_OPS",
    "ShardStore",
    "StoreResult",
    "HashRing",
    "LeaseManager",
    "LeaseState",
    "RptrCache",
    "CachedPointer",
]
