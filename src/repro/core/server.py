"""Server node: NUMA-aware shard placement on one machine (§4.1.2).

A :class:`HydraServer` hosts ``n_shards`` shard processes, each pinned to a
core and confined to that core's NUMA domain (arena, hash table, request
buffers all local).  Shards are spread round-robin across domains so the
machine's aggregate memory bandwidth is used, as the paper prescribes,
rather than interleaving a single shard's memory.
"""

from __future__ import annotations

from typing import Optional

from ..config import SimConfig
from ..hardware import Machine
from ..sim import MetricSet, Simulator
from .shard import Shard

__all__ = ["HydraServer"]


class HydraServer:
    """All HydraDB state on one machine."""

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 server_id: str, n_shards: int,
                 metrics: Optional[MetricSet] = None,
                 table_kind: str = "compact", numa_mode: str = "local",
                 scribble_on_reclaim: bool = False):
        if machine.nic is None:
            raise ValueError("machine must be attached to the fabric first")
        if config.hydra.transport == "tcp" and (
                config.hydra.pipelined_shards or config.hydra.subshards > 0):
            raise ValueError(
                "the TCP transport supports plain shards only "
                "(pipelined/sub-sharded variants are RDMA-mode ablations)")
        self.sim = sim
        self.config = config
        self.machine = machine
        self.server_id = server_id
        self.metrics = metrics or MetricSet(sim)
        self.shards: list[Shard] = []
        n_domains = machine.numa.n_domains
        if config.hydra.pipelined_shards:
            from .pipelined import PipelinedShard
            shard_cls = PipelinedShard
        else:
            shard_cls = Shard
        for i in range(n_shards):
            shard_id = f"{server_id}.{i}"
            domain = i % n_domains
            core = machine.allocate_core(shard_id, numa_domain=domain)
            if config.hydra.subshards > 0:
                from .subshard import SubShardedShard
                self.shards.append(SubShardedShard(
                    sim, config, shard_id, machine, core,
                    n_subshards=config.hydra.subshards,
                    metrics=self.metrics, table_kind=table_kind,
                    numa_mode=numa_mode,
                    scribble_on_reclaim=scribble_on_reclaim,
                ))
                continue
            self.shards.append(shard_cls(
                sim, config, shard_id, machine, core, metrics=self.metrics,
                table_kind=table_kind, numa_mode=numa_mode,
                scribble_on_reclaim=scribble_on_reclaim,
            ))

    def start(self) -> None:
        for shard in self.shards:
            shard.start()

    def kill(self) -> None:
        """Machine-level failure: all shards die and the NIC goes dark."""
        for shard in self.shards:
            if shard.alive:
                shard.kill()
        self.machine.nic.fail()

    def shard(self, index: int) -> Shard:
        return self.shards[index]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<HydraServer {self.server_id} shards={len(self.shards)}>"
