"""Consistent hashing (§4, [Karger et al. STOC'97]).

Clients locate the shard owning a key from the 64-bit hashcode of the key,
with virtual nodes smoothing the load.  Membership changes (node join,
failover promotion) move only the neighbouring arcs — the monotonicity the
SWAT reconfiguration path relies on.
"""

from __future__ import annotations

import bisect
from typing import Hashable, Iterable, Optional

from ..index.hashing import hash64

__all__ = ["HashRing"]


class HashRing:
    """A consistent-hash ring over opaque shard identities."""

    def __init__(self, vnodes: int = 64):
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._points: list[int] = []          # sorted vnode hashes
        self._owners: dict[int, Hashable] = {}  # vnode hash -> shard id
        self._members: set[Hashable] = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, shard_id: Hashable) -> bool:
        return shard_id in self._members

    @property
    def members(self) -> frozenset:
        return frozenset(self._members)

    def _vnode_hashes(self, shard_id: Hashable) -> Iterable[int]:
        for i in range(self.vnodes):
            yield hash64(f"{shard_id!r}#vn{i}".encode())

    def add(self, shard_id: Hashable) -> None:
        if shard_id in self._members:
            raise ValueError(f"{shard_id!r} already in ring")
        self._members.add(shard_id)
        for h in self._vnode_hashes(shard_id):
            if h in self._owners:
                # Astronomically unlikely 64-bit collision; skip the vnode
                # rather than corrupt the existing owner.
                continue
            bisect.insort(self._points, h)
            self._owners[h] = shard_id

    def remove(self, shard_id: Hashable) -> None:
        if shard_id not in self._members:
            raise ValueError(f"{shard_id!r} not in ring")
        self._members.discard(shard_id)
        for h in self._vnode_hashes(shard_id):
            if self._owners.get(h) == shard_id:
                del self._owners[h]
                idx = bisect.bisect_left(self._points, h)
                del self._points[idx]

    def owner(self, hashcode: int) -> Hashable:
        """Shard owning a 64-bit hashcode (clockwise successor vnode)."""
        if not self._points:
            raise LookupError("ring is empty")
        idx = bisect.bisect_right(self._points, hashcode)
        if idx == len(self._points):
            idx = 0
        return self._owners[self._points[idx]]

    def owner_of_key(self, key: bytes) -> Hashable:
        return self.owner(hash64(key))

    def successor(self, shard_id: Hashable) -> Optional[Hashable]:
        """Some other member (the first different owner clockwise of the
        shard's first vnode) — used as a migration target hint."""
        if shard_id not in self._members or len(self._members) < 2:
            return None
        start = next(iter(self._vnode_hashes(shard_id)))
        idx = bisect.bisect_right(self._points, start)
        for step in range(len(self._points)):
            owner = self._owners[self._points[(idx + step) % len(self._points)]]
            if owner != shard_id:
                return owner
        return None
