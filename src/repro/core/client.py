"""The HydraDB client library (§4.2).

Clients are generator coroutines: every operation is used as
``value = yield from client.get(key)`` inside a simulation process.

GET fast path: if the remote-pointer cache holds a fresh-leased pointer,
the client issues a single one-sided RDMA Read, validates the fetched bytes
(magic, key match, guardian word), and never touches the server CPU.  A
dead/garbage result counts as an *invalid hit*: the entry is dropped and
the GET falls back to the message path, which also returns a fresh pointer
and lease.

Message path: the request is indicator-framed and RDMA-Written into the
shard's per-connection request buffer; the client then polls its response
buffer (Send/Recv mode posts a receive and polls the CQ instead).
"""

from __future__ import annotations

from itertools import count
from typing import Optional, TYPE_CHECKING

from ..config import SimConfig
from ..hardware import Machine
from ..kvmem import parse_item
from ..protocol import (Op, Request, Response, Status, clear, consume,
                         frame, frame_len, response_wire_len)
from ..rdma import Nic, QpError
from ..sim import MetricSet, Simulator
from .rptr import CachedPointer, RptrCache
from .shard import Connection, Shard

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["HydraClient", "RequestTimeout", "StaticRouter"]

_client_ids = count(1)


class RequestTimeout(Exception):
    """No response within the operation timeout (dead shard suspected)."""


class StaticRouter:
    """Trivial router for single/few-shard setups and unit tests."""

    def __init__(self, shards: list[Shard]):
        if not shards:
            raise ValueError("need at least one shard")
        self._shards = list(shards)

    def route(self, key: bytes) -> Shard:
        """The shard owning ``key``."""
        if len(self._shards) == 1:
            return self._shards[0]
        from ..index.hashing import hash64
        return self._shards[hash64(key) % len(self._shards)]

    def shards(self) -> list[Shard]:
        """All shards this router can reach."""
        return list(self._shards)


class HydraClient:
    """One client endpoint (the paper's 'client library' instance)."""

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 router, metrics: Optional[MetricSet] = None,
                 rptr_cache: Optional[RptrCache] = None,
                 client_id: Optional[str] = None):
        self.sim = sim
        self.config = config
        self.hydra = config.hydra
        self.cpu = config.cpu
        self.machine = machine
        self.nic: Nic = machine.nic
        self.router = router
        self.metrics = metrics or MetricSet(sim)
        self.client_id = client_id or f"client{next(_client_ids)}"
        if not self.hydra.rptr_cache_enabled or self.hydra.transport != "rdma":
            # No one-sided reads over TCP: the pointer cache is moot.
            self.cache: Optional[RptrCache] = None
        elif rptr_cache is not None:
            self.cache = rptr_cache
        else:
            self.cache = RptrCache(self.hydra.rptr_cache_entries)
        #: Keyed by Shard object identity: after a failover promotion the
        #: router returns a *new* Shard for the same shard id, and a fresh
        #: connection is created transparently on the next operation.
        self.conns: dict[Shard, Connection] = {}
        self._tcp_conns: dict[Shard, object] = {}
        self._req_ids = count(1)

    # -- connections ---------------------------------------------------------
    def connection_to(self, shard: Shard) -> Connection:
        """The (lazily created) RDMA connection to a shard."""
        conn = self.conns.get(shard)
        if conn is None:
            conn = shard.connect(self.nic)
            self.conns[shard] = conn
        return conn

    def connect_all(self) -> None:
        """Eagerly connect to every shard the router knows."""
        if self.hydra.transport != "rdma":
            return  # TCP connections are established lazily (handshakes
                    # need simulation time)
        for shard in self.router.shards():
            self.connection_to(shard)

    def drop_connection(self, shard: Shard) -> None:
        """Tear down the connection to one shard."""
        conn = self.conns.pop(shard, None)
        if conn is not None:
            conn.close()

    # -- public operations (generator API) ---------------------------------
    def get(self, key: bytes):
        """GET: RDMA-Read fast path, else message path. Returns bytes|None."""
        shard = self.router.route(key)
        if self.cache is not None:
            value = yield from self._try_rdma_read(shard, key)
            if value is not None:
                return value
        resp = yield from self._request(shard, Request(op=Op.GET, key=key))
        if resp.status is Status.NOT_FOUND:
            return None
        if resp.status is not Status.OK:
            raise RuntimeError(f"GET failed: {resp.status.name}")
        self._maybe_cache(key, resp)
        return resp.value

    def put(self, key: bytes, value: bytes):
        """Insert-or-update; returns the response Status."""
        return (yield from self._mutate(Op.PUT, key, value))

    def insert(self, key: bytes, value: bytes):
        """Insert; EXISTS if the key is already present."""
        return (yield from self._mutate(Op.INSERT, key, value))

    def update(self, key: bytes, value: bytes):
        """Update; NOT_FOUND if the key is absent."""
        return (yield from self._mutate(Op.UPDATE, key, value))

    def delete(self, key: bytes):
        """Delete; NOT_FOUND if the key is absent."""
        return (yield from self._mutate(Op.DELETE, key, b""))

    def lease_renew(self, key: bytes):
        """Explicitly extend the lease of a (popular) key."""
        shard = self.router.route(key)
        resp = yield from self._request(
            shard, Request(op=Op.LEASE_RENEW, key=key))
        if resp.status is Status.OK:
            self._maybe_cache(key, resp)
        return resp.status

    # -- internals ---------------------------------------------------------
    def _mutate(self, op: Op, key: bytes, value: bytes):
        shard = self.router.route(key)
        resp = yield from self._request(
            shard, Request(op=op, key=key, value=value))
        if self.cache is not None and resp.status is Status.OK:
            # Our own pointer is now stale (out-of-place update).  A shared
            # cache also spares co-located clients the invalid read.
            self.cache.invalidate(key)
        return resp.status

    def _try_rdma_read(self, shard: Shard, key: bytes):
        """One-sided GET attempt; returns the value or None on any miss."""
        cache = self.cache
        yield self.sim.timeout(cache.op_cost_ns())
        entry = cache.lookup(key, self.sim.now)
        if entry is None:
            return None
        conn = self.connection_to(shard)
        self.metrics.counter("client.rdma_reads").add()
        try:
            read_ev = conn.client_qp.post_read(entry.rptr)
        except QpError:
            # The pointer no longer matches this route (e.g. the shard was
            # promoted onto another machine after a failover): unusable.
            cache.record_invalid(key)
            return None
        wc = yield read_ev
        yield self.sim.timeout(self.cpu.parse_ns)
        if wc.ok:
            item = parse_item(wc.data)
            if item is not None and item.live and item.key == key:
                cache.record_successful()
                return item.value
        cache.record_invalid(key)
        return None

    def _maybe_cache(self, key: bytes, resp: Response) -> None:
        if self.cache is None or not resp.remote_pointer_valid:
            return
        from ..rdma import RemotePointer
        self.cache.store(key, CachedPointer(
            rptr=RemotePointer(resp.rkey, resp.roffset, resp.rlen),
            lease_expiry_ns=resp.lease_expiry_ns,
            version=resp.version,
        ))

    def _request(self, shard: Shard, req: Request):
        """Message path: send the request, await the framed response."""
        req = Request(op=req.op, key=req.key, value=req.value,
                      req_id=next(self._req_ids))
        self.metrics.counter("client.messages").add()
        data = req.encode()
        yield self.sim.timeout(self.cpu.parse_ns)  # marshalling
        if self.hydra.transport == "tcp":
            resp = yield from self._tcp_request(shard, req, data)
            return resp
        buf = self.hydra.conn_buf_bytes
        if frame_len(len(data)) > buf:
            raise ValueError(
                f"request of {len(data)}B exceeds the {buf}B connection "
                f"buffer; raise hydra.conn_buf_bytes for large items")
        conn = self.connection_to(shard)
        if self.hydra.rdma_write_messaging:
            conn.client_qp.post_write(conn.req_rptr, frame(data))
        else:
            conn.client_qp.post_recv()
            conn.client_qp.post_send(data)
        payload = yield from self._await_response(conn)
        resp = Response.decode(payload)
        if resp.req_id != req.req_id:
            raise RuntimeError(
                f"response/request id mismatch ({resp.req_id} != {req.req_id})"
            )
        return resp

    def _await_response(self, conn: Connection):
        deadline = self.sim.now + self.hydra.op_timeout_ns
        while True:
            if self.hydra.rdma_write_messaging:
                payload = consume(conn.resp_region, 0)
                if payload is not None:
                    clear(conn.resp_region, 0, len(payload))
                    yield self.sim.timeout(self.cpu.poll_probe_ns)
                    return payload
            else:
                cqe = conn.client_qp.recv_cq.poll_one()
                if cqe is not None and cqe.ok:
                    yield self.sim.timeout(self.cpu.cq_poll_ns)
                    return cqe.data
            remaining = deadline - self.sim.now
            if remaining <= 0:
                raise RequestTimeout(
                    f"{self.client_id}: no response from shard "
                    f"(conn {conn.conn_id})"
                )
            ev = yield self.sim.any_of([
                conn.client_doorbell.wait(),
                self.sim.timeout(remaining),
            ])
            del ev  # loop re-probes regardless of which event fired

    def _tcp_request(self, shard: Shard, req: Request, data: bytes):
        """Kernel-TCP request path (transport == "tcp")."""
        conn = self._tcp_conns.get(shard)
        if conn is None:
            if shard.tcp_port < 0:
                raise RuntimeError(f"{shard.shard_id} has no TCP listener "
                                   "(is the cluster started?)")
            conn = yield self.machine.tcp.connect(shard.machine.tcp,
                                                  shard.tcp_port)
            self._tcp_conns[shard] = conn
        yield conn.send(data, req.wire_len + 40)
        payload, _n = yield conn.recv()
        resp = Response.decode(payload)
        if resp.req_id != req.req_id:
            raise RuntimeError("response/request id mismatch over TCP")
        return resp
