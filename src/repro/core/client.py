"""The HydraDB client library (§4.2).

Clients are generator coroutines: every operation is used as
``value = yield from client.get(key)`` inside a simulation process.

GET fast path: if the remote-pointer cache holds a fresh-leased pointer,
the client issues a single one-sided RDMA Read, validates the fetched bytes
(magic, key match, guardian word), and never touches the server CPU.  A
dead/garbage result counts as an *invalid hit*: the entry is dropped and
the GET falls back to the message path, which also returns a fresh pointer
and lease.

Message path: the request is indicator-framed and RDMA-Written into a free
slot of the shard's per-connection request buffer; the client then polls
its response buffer (Send/Recv mode posts a receive and polls the CQ
instead).  The message path is *pipelined*: ``issue()`` returns a
:class:`PendingRequest` handle without blocking on the response, and
``wait()`` collects it later, so up to ``hydra.max_inflight_per_conn``
requests overlap per connection (and any number across connections).
``get_many``/``put_many`` fan a batch across slots and shards and gather
responses as they complete.  With the default window of 1 every operation
degenerates to the original stop-and-wait behavior.

The one-sided fast path is pipelined too: ``_read_fanout`` looks up every
remote pointer up front, posts the hit set as doorbell-coalesced RDMA-Read
batches (at most ``hydra.max_inflight_reads`` outstanding per connection)
and gathers completions as they arrive.  A key that cannot be served
one-sidedly — no usable pointer, QP error, dead item, key mismatch — is
*demoted* into a single pipelined message-path batch that overlaps with
the still-in-flight Reads; its message response re-primes the pointer
cache.  Single-key ``get`` rides the same engine with a batch of one.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from ..config import SimConfig
from ..hardware import Machine
from ..kvmem import parse_item
from ..protocol import (Op, Request, Response, Status, clear, consume,
                         frame, frame_len)
from ..rdma import Nic, QpError
from ..sim import MetricSet, Simulator
from .rptr import CachedPointer, RptrCache
from .shard import Connection, Shard

__all__ = ["HydraClient", "PendingRequest", "RequestTimeout", "StaticRouter"]

_client_ids = count(1)


class RequestTimeout(Exception):
    """No response within the operation timeout (dead shard suspected)."""


@dataclass(frozen=True)
class PendingRequest:
    """Handle for an issued, not-yet-collected message-path request."""

    req_id: int
    shard: Shard
    conn: Connection
    slot: int  # -1 in two-sided (Send/Recv) mode


@dataclass(frozen=True)
class _ReadItem:
    """One key of a read fan-out: its batch index, key, and owning shard."""

    idx: int
    key: bytes
    shard: Shard


@dataclass
class _ReadState:
    """In-flight one-sided-Read bookkeeping for one connection."""

    conn: Connection
    #: (item, cached pointer) pairs not yet posted.
    queue: list = field(default_factory=list)
    inflight: int = 0


@dataclass
class _ConnPipeline:
    """Client-side in-flight bookkeeping for one connection."""

    conn: Connection
    #: Request-buffer slots not currently carrying an outstanding request
    #: (RDMA-Write messaging only), kept sorted for determinism.
    free_slots: list[int] = field(default_factory=list)
    #: slot -> req_id for every slot carrying an outstanding request.
    slot_req: dict[int, int] = field(default_factory=dict)
    #: req_id -> slot for requests a wait() may still collect.
    inflight: dict[int, int] = field(default_factory=dict)
    #: Responses drained while waiting for a different request.
    completed: dict[int, Response] = field(default_factory=dict)


class StaticRouter:
    """Trivial router for single/few-shard setups and unit tests."""

    def __init__(self, shards: list[Shard]):
        if not shards:
            raise ValueError("need at least one shard")
        self._shards = list(shards)

    def route(self, key: bytes) -> Shard:
        """The shard owning ``key``."""
        if len(self._shards) == 1:
            return self._shards[0]
        from ..index.hashing import hash64
        return self._shards[hash64(key) % len(self._shards)]

    def shards(self) -> list[Shard]:
        """All shards this router can reach."""
        return list(self._shards)


class HydraClient:
    """One client endpoint (the paper's 'client library' instance)."""

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 router, metrics: Optional[MetricSet] = None,
                 rptr_cache: Optional[RptrCache] = None,
                 client_id: Optional[str] = None, numa_domain: int = 0):
        self.sim = sim
        self.config = config
        self.hydra = config.hydra
        self.cpu = config.cpu
        self.machine = machine
        #: NUMA domain this client's buffers live in on its machine.
        self.numa_domain = numa_domain
        self.nic: Nic = machine.nic
        self.router = router
        self.metrics = metrics or MetricSet(sim)
        self.client_id = client_id or f"client{next(_client_ids)}"
        if not self.hydra.rptr_cache_enabled or self.hydra.transport != "rdma":
            # No one-sided reads over TCP: the pointer cache is moot.
            self.cache: Optional[RptrCache] = None
        elif rptr_cache is not None:
            self.cache = rptr_cache
        else:
            self.cache = RptrCache(self.hydra.rptr_cache_entries)
        #: Keyed by Shard object identity: after a failover promotion the
        #: router returns a *new* Shard for the same shard id, and a fresh
        #: connection is created transparently on the next operation.
        self.conns: dict[Shard, Connection] = {}
        self._tcp_conns: dict[Shard, object] = {}
        #: Per-connection pipeline state, keyed by conn_id.
        self._pipes: dict[int, _ConnPipeline] = {}
        self._req_ids = count(1)

    # -- connections ---------------------------------------------------------
    def connection_to(self, shard: Shard) -> Connection:
        """The (lazily created) RDMA connection to a shard."""
        conn = self.conns.get(shard)
        if conn is None:
            conn = shard.connect(self.nic,
                                 client_numa_domain=self.numa_domain)
            self.conns[shard] = conn
        return conn

    def _pipe(self, conn: Connection) -> _ConnPipeline:
        pipe = self._pipes.get(conn.conn_id)
        if pipe is None:
            pipe = _ConnPipeline(conn,
                                 free_slots=list(range(conn.n_slots)))
            self._pipes[conn.conn_id] = pipe
        return pipe

    def connect_all(self) -> None:
        """Eagerly connect to every shard the router knows."""
        if self.hydra.transport != "rdma":
            return  # TCP connections are established lazily (handshakes
                    # need simulation time)
        for shard in self.router.shards():
            self.connection_to(shard)

    def drop_connection(self, shard: Shard) -> None:
        """Tear down the connection to one shard."""
        conn = self.conns.pop(shard, None)
        if conn is not None:
            self._pipes.pop(conn.conn_id, None)
            conn.close()

    # -- public operations (generator API) ---------------------------------
    def get(self, key: bytes):
        """GET: RDMA-Read fast path, else message path. Returns bytes|None."""
        shard = self.router.route(key)
        if self.cache is not None:
            hits, _demoted = yield from self._read_fanout(
                [_ReadItem(0, key, shard)])
            if 0 in hits:
                return hits[0]
        resp = yield from self._request(shard, Request(op=Op.GET, key=key))
        if resp.status is Status.NOT_FOUND:
            return None
        if resp.status is not Status.OK:
            raise RuntimeError(f"GET failed: {resp.status.name}")
        self._maybe_cache(key, resp)
        return resp.value

    def put(self, key: bytes, value: bytes):
        """Insert-or-update; returns the response Status."""
        return (yield from self._mutate(Op.PUT, key, value))

    def insert(self, key: bytes, value: bytes):
        """Insert; EXISTS if the key is already present."""
        return (yield from self._mutate(Op.INSERT, key, value))

    def update(self, key: bytes, value: bytes):
        """Update; NOT_FOUND if the key is absent."""
        return (yield from self._mutate(Op.UPDATE, key, value))

    def delete(self, key: bytes):
        """Delete; NOT_FOUND if the key is absent."""
        return (yield from self._mutate(Op.DELETE, key, b""))

    def lease_renew(self, key: bytes):
        """Explicitly extend the lease of a (popular) key."""
        shard = self.router.route(key)
        resp = yield from self._request(
            shard, Request(op=Op.LEASE_RENEW, key=key))
        if resp.status is Status.OK:
            self._maybe_cache(key, resp)
        return resp.status

    # -- internals ---------------------------------------------------------
    def _mutate(self, op: Op, key: bytes, value: bytes):
        shard = self.router.route(key)
        resp = yield from self._request(
            shard, Request(op=op, key=key, value=value))
        if self.cache is not None:
            # Any *completed* mutation drops the cached pointer — not just
            # Status.OK.  A DELETE/UPDATE that raced to NOT_FOUND means a
            # concurrent writer already retired the extent we point at;
            # keeping the entry would leave co-located sharers Reading a
            # dead item until the lease lapsed.  (Out-of-place updates make
            # our own pointer stale on OK, as before.)
            self.cache.invalidate(key)
        return resp.status

    # -- pipelined one-sided read engine ------------------------------------
    def _post_read_batch(self, cs: _ReadState):
        """Post the next doorbell-coalesced Read batch on one connection.

        Returns ``(posted, failed)``: ``posted`` pairs each item with its
        completion event; ``failed`` holds every queued item when the QP
        turns out to be unusable (torn down by a failover) — the caller
        demotes those to the message path.
        """
        n = min(max(1, self.hydra.max_inflight_reads) - cs.inflight,
                len(cs.queue))
        if n <= 0:
            return [], []
        batch, cs.queue = cs.queue[:n], cs.queue[n:]
        self.metrics.counter("client.rdma_reads").add(n)
        try:
            events = cs.conn.client_qp.post_read_batch(
                [entry.rptr for _item, entry in batch])
        except QpError:
            # Dead QP: nothing on this connection can be read one-sidedly.
            failed = [item for item, _entry in batch]
            failed.extend(item for item, _entry in cs.queue)
            cs.queue = []
            return [], failed
        cs.inflight += n
        return [(item, ev, cs)
                for (item, _entry), ev in zip(batch, events)], []

    def _read_fanout(self, items: list[_ReadItem], on_demote=None):
        """Pipelined one-sided GET fan-out (§4.2.2, batched).

        Looks up every remote pointer up front, posts the hit set as
        doorbell-coalesced RDMA-Read batches — at most
        ``hydra.max_inflight_reads`` outstanding per connection — and
        gathers completions as they arrive.  Keys that cannot be served
        one-sidedly (no usable pointer, QP error, dead/garbage item, key
        mismatch) are *demoted*: handed to ``on_demote`` the moment the
        miss is known, so a message-path request overlaps with the Reads
        still in flight, or collected when no callback is given.

        Returns ``(hits, demoted)``: ``hits`` maps item index -> value,
        ``demoted`` lists items the caller must route through messages
        (empty when ``on_demote`` consumed them).
        """
        cache = self.cache
        hits: dict[int, bytes] = {}
        demoted: list[_ReadItem] = []

        def demote(item: _ReadItem):
            if on_demote is None:
                demoted.append(item)
            else:
                yield from on_demote(item)

        yield self.sim.timeout(cache.batch_op_cost_ns(len(items)))
        entries = cache.lookup_batch([it.key for it in items], self.sim.now)
        states: dict[int, _ReadState] = {}
        misses: list[_ReadItem] = []
        for item, entry in zip(items, entries):
            if entry is None:
                misses.append(item)
                continue
            conn = self.connection_to(item.shard)
            cs = states.get(conn.conn_id)
            if cs is None:
                cs = states[conn.conn_id] = _ReadState(conn)
            cs.queue.append((item, entry))
        #: (item, event, conn state) completion gather list; reads are in
        #: flight from here on, so everything below overlaps with them.
        pending: list = []
        unusable: list[_ReadItem] = []
        for cs in states.values():
            posted, failed = self._post_read_batch(cs)
            pending.extend(posted)
            unusable.extend(failed)
        for item in misses:
            yield from demote(item)
        for item in unusable:
            cache.record_invalid(item.key)
            yield from demote(item)
        i = 0
        while i < len(pending):
            item, ev, cs = pending[i]
            i += 1
            wc = yield ev
            cs.inflight -= 1
            yield self.sim.timeout(self.cpu.parse_ns)
            parsed = parse_item(wc.data) if wc.ok else None
            if parsed is not None and parsed.live and parsed.key == item.key:
                cache.record_successful()
                hits[item.idx] = parsed.value
            else:
                # Outdated pointer (dead item after an out-of-place
                # update, reclaimed/garbage bytes, failed completion).
                cache.record_invalid(item.key)
                yield from demote(item)
            if cs.inflight == 0 and cs.queue:
                posted, failed = self._post_read_batch(cs)
                pending.extend(posted)
                for failed_item in failed:
                    cache.record_invalid(failed_item.key)
                    yield from demote(failed_item)
        return hits, demoted

    def _maybe_cache(self, key: bytes, resp: Response) -> None:
        if self.cache is None or not resp.remote_pointer_valid:
            return
        from ..rdma import RemotePointer
        self.cache.store(key, CachedPointer(
            rptr=RemotePointer(resp.rkey, resp.roffset, resp.rlen),
            lease_expiry_ns=resp.lease_expiry_ns,
            version=resp.version,
        ))

    # -- pipelined message path (issue / wait split) ------------------------
    def _window(self, conn: Connection) -> int:
        window = max(1, self.hydra.max_inflight_per_conn)
        if self.hydra.rdma_write_messaging:
            window = min(window, conn.n_slots)
        return window

    def issue(self, shard: Shard, req: Request):
        """Issue one message-path request; returns a :class:`PendingRequest`.

        Blocks (in simulated time) only while the connection's in-flight
        window is exhausted — draining completed responses as it waits —
        never on the issued request's own response.  Collect the response
        later with :meth:`wait`.
        """
        req = Request(op=req.op, key=req.key, value=req.value,
                      req_id=next(self._req_ids))
        self.metrics.counter("client.messages").add()
        data = req.encode()
        yield self.sim.timeout(self.cpu.parse_ns)  # marshalling
        conn = self.connection_to(shard)
        pipe = self._pipe(conn)
        window = self._window(conn)
        deadline = self.sim.now + self.hydra.op_timeout_ns
        while (len(pipe.inflight) >= window
               or (self.hydra.rdma_write_messaging and not pipe.free_slots)):
            drained = yield from self._drain(pipe)
            if drained:
                continue
            remaining = deadline - self.sim.now
            if remaining <= 0:
                raise RequestTimeout(
                    f"{self.client_id}: window full and shard silent "
                    f"(conn {conn.conn_id})")
            yield self.sim.any_of([conn.client_doorbell.wait(),
                                   self.sim.timeout(remaining)])
        if self.hydra.rdma_write_messaging:
            slot_bytes = conn.layout.slot_bytes
            if frame_len(len(data)) > slot_bytes:
                raise ValueError(
                    f"request of {len(data)}B exceeds the {slot_bytes}B "
                    f"message slot; raise hydra.conn_buf_bytes or lower "
                    f"hydra.msg_slots_per_conn for large items")
            slot = pipe.free_slots.pop(0)
            conn.client_qp.post_write(conn.req_slot_rptrs[slot], frame(data))
            pipe.slot_req[slot] = req.req_id
        else:
            conn.client_qp.post_recv()
            conn.client_qp.post_send(data)
            slot = -1
        pipe.inflight[req.req_id] = slot
        return PendingRequest(req_id=req.req_id, shard=shard, conn=conn,
                              slot=slot)

    def wait(self, pending: PendingRequest):
        """Collect the response for an issued request (blocks until it
        lands or the operation timeout expires)."""
        conn = pending.conn
        pipe = self._pipe(conn)
        deadline = self.sim.now + self.hydra.op_timeout_ns
        while True:
            resp = pipe.completed.pop(pending.req_id, None)
            if resp is not None:
                return resp
            drained = yield from self._drain(pipe)
            if drained:
                continue
            remaining = deadline - self.sim.now
            if remaining <= 0:
                # Abandon the request and reclaim its slot (the request —
                # or its response — is presumed lost with the shard).  A
                # late response carries a req_id nobody waits on any more,
                # so _land discards it as stale instead of raising.
                slot = pipe.inflight.pop(pending.req_id, None)
                if slot is not None and slot >= 0:
                    pipe.slot_req.pop(slot, None)
                    insort(pipe.free_slots, slot)
                raise RequestTimeout(
                    f"{self.client_id}: no response from shard "
                    f"(conn {conn.conn_id})")
            ev = yield self.sim.any_of([
                conn.client_doorbell.wait(),
                self.sim.timeout(remaining),
            ])
            del ev  # loop re-probes regardless of which event fired

    def _drain(self, pipe: _ConnPipeline):
        """Consume every landed response on one connection (non-blocking).

        Stale responses — req_ids nobody is waiting on any more, e.g. from
        a request that timed out earlier on this connection — are discarded
        and counted instead of poisoning the next call (they used to raise).
        Returns the number of responses landed.
        """
        conn = pipe.conn
        landed = 0
        if self.hydra.rdma_write_messaging:
            for slot in sorted(pipe.slot_req):
                off = conn.layout.offset(slot)
                payload = consume(conn.resp_region, off)
                if payload is None:
                    continue
                clear(conn.resp_region, off, len(payload))
                yield self.sim.timeout(self.cpu.poll_probe_ns)
                try:
                    resp = Response.decode(payload)
                except (ValueError, KeyError):
                    resp = None
                if resp is None or resp.req_id != pipe.slot_req[slot]:
                    # Garbage frame or a late response from a request that
                    # timed out before this slot was reused: discard it and
                    # keep the slot — its current request is still pending.
                    self.metrics.counter("client.stale_responses").add()
                    continue
                pipe.slot_req.pop(slot)
                insort(pipe.free_slots, slot)
                pipe.inflight.pop(resp.req_id, None)
                pipe.completed[resp.req_id] = resp
                landed += 1
        else:
            while True:
                cqe = conn.client_qp.recv_cq.poll_one()
                if cqe is None or not cqe.ok:
                    break
                yield self.sim.timeout(self.cpu.cq_poll_ns)
                try:
                    resp = Response.decode(cqe.data)
                except (ValueError, KeyError):
                    resp = None
                if resp is None or pipe.inflight.pop(resp.req_id,
                                                     None) is None:
                    self.metrics.counter("client.stale_responses").add()
                    continue
                pipe.completed[resp.req_id] = resp
                landed += 1
        return landed

    def _request(self, shard: Shard, req: Request):
        """Message path: send the request, await the framed response."""
        if self.hydra.transport == "tcp":
            resp = yield from self._tcp_request(shard, req)
            return resp
        pending = yield from self.issue(shard, req)
        resp = yield from self.wait(pending)
        return resp

    # -- multi-key operations -----------------------------------------------
    def get_many(self, keys: list[bytes]):
        """Hybrid pipelined multi-GET; returns values aligned with ``keys``.

        Every remote pointer is looked up in the cache up front; the hit
        set is posted as doorbell-coalesced RDMA-Read batches while every
        miss — and every Read demoted by validation — joins one pipelined
        message-path batch that overlaps with the still-in-flight Reads.
        Successful message responses re-prime the pointer cache.  A non-OK
        response or a timeout is reported only after every outstanding
        request has been drained, so no in-flight slot is abandoned.
        """
        results: list[Optional[bytes]] = [None] * len(keys)
        if self.hydra.transport == "tcp":
            for i, key in enumerate(keys):
                results[i] = yield from self.get(key)
            return results
        items = [_ReadItem(i, key, self.router.route(key))
                 for i, key in enumerate(keys)]
        msg_pendings: list[tuple[_ReadItem, PendingRequest]] = []

        def send_message(item: _ReadItem):
            pending = yield from self.issue(
                item.shard, Request(op=Op.GET, key=item.key))
            msg_pendings.append((item, pending))

        failure: Optional[BaseException] = None
        try:
            if self.cache is None:
                for item in items:
                    yield from send_message(item)
            else:
                hits, _demoted = yield from self._read_fanout(
                    items, on_demote=send_message)
                for idx, value in hits.items():
                    results[idx] = value
        except RequestTimeout as exc:
            # Issue-phase timeout (window full against a silent shard):
            # stop fanning out, but still drain what is already in flight.
            failure = exc
        for item, pending in msg_pendings:
            try:
                resp = yield from self.wait(pending)
            except RequestTimeout as exc:
                failure = failure or exc
                continue
            if resp.status is Status.OK:
                self._maybe_cache(item.key, resp)
                results[item.idx] = resp.value
            elif resp.status is not Status.NOT_FOUND and failure is None:
                failure = RuntimeError(f"GET failed: {resp.status.name}")
        if failure is not None:
            raise failure
        return results

    def put_many(self, pairs: list[tuple[bytes, bytes]]):
        """Pipelined multi-PUT; returns a Status per ``(key, value)``.

        Like :meth:`get_many`, a timeout is re-raised only after every
        already-issued request has been drained — abandoning the remaining
        pendings would leak their in-flight slots.
        """
        statuses: list[Status] = [Status.ERROR] * len(pairs)
        if self.hydra.transport == "tcp":
            for i, (key, value) in enumerate(pairs):
                statuses[i] = yield from self.put(key, value)
            return statuses
        pendings: list[Optional[PendingRequest]] = [None] * len(pairs)
        failure: Optional[BaseException] = None
        for i, (key, value) in enumerate(pairs):
            shard = self.router.route(key)
            try:
                pendings[i] = yield from self.issue(
                    shard, Request(op=Op.PUT, key=key, value=value))
            except RequestTimeout as exc:
                failure = exc
                break
        for i, pending in enumerate(pendings):
            if pending is None:
                continue
            try:
                resp = yield from self.wait(pending)
            except RequestTimeout as exc:
                failure = failure or exc
                continue
            if self.cache is not None:
                # Any completed mutation invalidates, as in _mutate.
                self.cache.invalidate(pairs[i][0])
            statuses[i] = resp.status
        if failure is not None:
            raise failure
        return statuses

    def _tcp_request(self, shard: Shard, req: Request):
        """Kernel-TCP request path (transport == "tcp")."""
        req = Request(op=req.op, key=req.key, value=req.value,
                      req_id=next(self._req_ids))
        self.metrics.counter("client.messages").add()
        data = req.encode()
        yield self.sim.timeout(self.cpu.parse_ns)  # marshalling
        conn = self._tcp_conns.get(shard)
        if conn is None:
            if shard.tcp_port < 0:
                raise RuntimeError(f"{shard.shard_id} has no TCP listener "
                                   "(is the cluster started?)")
            conn = yield self.machine.tcp.connect(shard.machine.tcp,
                                                  shard.tcp_port)
            self._tcp_conns[shard] = conn
        yield conn.send(data, req.wire_len + 40)
        while True:
            payload, _n = yield conn.recv()
            resp = Response.decode(payload)
            if resp.req_id == req.req_id:
                return resp
            # A stale response from a previously timed-out request on this
            # socket: discard and keep reading instead of raising.
            self.metrics.counter("client.stale_responses").add()
