"""The HydraDB client library (§4.2).

Clients are generator coroutines: every operation is used as
``value = yield from client.get(key)`` inside a simulation process.

GET fast path: if the remote-pointer cache holds a fresh-leased pointer,
the client issues a single one-sided RDMA Read, validates the fetched bytes
(magic, key match, guardian word), and never touches the server CPU.  A
dead/garbage result counts as an *invalid hit*: the entry is dropped and
the GET falls back to the message path, which also returns a fresh pointer
and lease.

Message path: the request is indicator-framed and RDMA-Written into a free
slot of the shard's per-connection request buffer; the client then polls
its response buffer (Send/Recv mode posts a receive and polls the CQ
instead).  The message path is *pipelined*: ``issue()`` returns a
:class:`PendingRequest` handle without blocking on the response, and
``wait()`` collects it later, so up to ``client.max_inflight_per_conn``
requests overlap per connection (and any number across connections).
``get_many``/``put_many`` fan a batch across slots and shards and gather
responses as they complete.  With the default window of 1 every operation
degenerates to the original stop-and-wait behavior.

The one-sided fast path is pipelined too: ``_read_fanout`` looks up every
remote pointer up front, posts the hit set as doorbell-coalesced RDMA-Read
batches (at most ``client.max_inflight_reads`` outstanding per connection)
and gathers completions as they arrive.  A key that cannot be served
one-sidedly — no usable pointer, QP error, dead item, key mismatch — is
*demoted* into a single pipelined message-path batch that overlaps with
the still-in-flight Reads; its message response re-primes the pointer
cache.  Single-key ``get`` rides the same engine with a batch of one.

Multi-tenancy (traffic engineering): handles from
``HydraCluster.client(tenant=..., qos=QosConfig(...))`` share one
:class:`ClientTransport` per machine — the same physical connections —
and compete for its message slots and read windows.  Admission is
token-bucket-gated per tenant (``qos.rate_ops``), slot grants are
deficit-round-robin-arbitrated across tenants (``qos.fair_queueing``),
and with ``qos.autotune`` an AIMD controller replaces the static
``client.max_inflight_*`` windows, tuning each connection's in-flight
depth from observed RTT.  Overload surfaces as typed
:class:`~repro.core.errors.TenantThrottled` errors whose
``retry_after_ns`` hints the retry engine honors — never a silent stall.

Failure handling (§5): every public operation runs under a per-request
deadline budget (``client.op_deadline_us``).  When one message-path
attempt times out (``client.op_timeout_ns``) or dies at the QP/NIC layer,
the
client tears down the stale connection, drops the key's remote-pointer
cache entry, re-resolves the key through the (versioned) routing table —
blocking on the router's ``route_change`` gate so a SWAT promotion is
picked up the instant it is republished — and replays the request against
whatever shard now owns the key, with capped exponential backoff between
attempts.  Only when the whole budget lapses does the caller see a
:class:`~repro.core.errors.ShardUnavailable`.  Setting
``op_deadline_us=0`` (or ``deadline_us=0`` per client) restores the
pre-retry single-attempt contract.  See docs/PROTOCOLS.md for the full
state machine and the idempotency rules (INSERT is never replayed).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from ..config import QosConfig, SimConfig
from ..hardware import Machine
from ..index.export import BUCKET_EXPORT_BYTES, IndexHandshake, parse_bucket
from ..index.hashing import bucket_index, hash64, signature16
from ..kvmem import item_size, parse_item, parse_item_prefix
from ..protocol import (Op, Request, Response, Status, clear, consume,
                         frame, frame_len, occ_announce)
from ..protocol.messages import _REQ
from ..qos import AimdController, SlotArbiter
from ..rdma import Nic, NicDown, QpError, RemotePointer
from ..rdma.tcp import TcpError
from ..sim import MetricSet, Simulator
from .errors import (BadStatus, RecoveryInProgress, RequestTimeout,
                     ShardUnavailable, SlotOverflow, TenantThrottled)
from .rptr import CachedPointer, LEASE_SAFETY_NS, RptrCache
from .shard import Connection, Shard

__all__ = ["ClientTransport", "HydraClient", "PendingRequest",
           "RequestTimeout", "StaticRouter"]

_client_ids = count(1)

#: Transport-level failures a retrying client absorbs and replays.  A
#: :class:`BadStatus` is *not* in this set — the shard answered, so the
#: operation completed and replaying it would double-apply.
_RETRYABLE = (RequestTimeout, QpError, NicDown)


@dataclass(frozen=True)
class PendingRequest:
    """Handle for an issued, not-yet-collected message-path request."""

    req_id: int
    shard: Shard
    conn: Connection
    slot: int  # -1 in two-sided (Send/Recv) mode


@dataclass(frozen=True)
class _ReadItem:
    """One key of a read fan-out: its batch index, key, and owning shard."""

    idx: int
    key: bytes
    shard: Shard


@dataclass
class _Traversal:
    """State of one key's client-side index traversal (§4.2.2 extended).

    A cold key — no cached pointer — resolves with one-sided Reads alone:
    bucket frame Read, signature match, item Read, guardian validation.
    ``frames`` records every (frame index, seqlock version) visited this
    attempt; a multi-bucket NOT_FOUND is only concluded after re-reading
    the *head* frame and seeing its version unchanged (every chain
    mutation bumps the head, so an unmoved head proves the walk saw one
    consistent chain).  Any sign the chain moved under us — dead item,
    garbage bytes, moved head — is a *race*: the walk restarts from the
    head, at most ``traversal.max_retries`` times before the key
    demotes to the message path.
    """

    item: _ReadItem
    index: IndexHandshake
    sig: int
    head_frame: int
    #: (frame_idx, version) per bucket frame visited this attempt.
    frames: list = field(default_factory=list)
    #: Unread signature-matching (class_idx, offset) slots of the current
    #: bucket, probed in slot order.
    candidates: list = field(default_factory=list)
    #: Link of the current bucket (export frame index, None = chain end).
    next_link: Optional[int] = None
    retries: int = 0


@dataclass
class _ReadOp:
    """One posted (or queued) one-sided Read and how to interpret it.

    ``kind``: ``"item"`` = cached-pointer item Read (hot path),
    ``"bucket"`` = traversal bucket-frame Read, ``"titem"`` = traversal
    item Read, ``"confirm"`` = head-frame re-read validating a
    multi-bucket NOT_FOUND.
    """

    kind: str
    item: _ReadItem
    rptr: RemotePointer
    trav: Optional[_Traversal] = None
    #: Arena offset a ``titem`` Read targets (for cache re-priming).
    offset: int = -1


@dataclass
class _ReadState:
    """In-flight one-sided-Read bookkeeping for one connection."""

    conn: Connection
    #: :class:`_ReadOp` entries not yet posted.
    queue: list = field(default_factory=list)
    inflight: int = 0
    #: Post instant of the outstanding batch (read-window AIMD sampling).
    post_ns: int = 0


@dataclass
class _ConnPipeline:
    """Client-side in-flight bookkeeping for one connection."""

    conn: Connection
    #: Request-buffer slots not currently carrying an outstanding request
    #: (RDMA-Write messaging only), kept sorted for determinism.
    free_slots: list[int] = field(default_factory=list)
    #: slot -> req_id for every slot carrying an outstanding request.
    slot_req: dict[int, int] = field(default_factory=dict)
    #: req_id -> slot for requests a wait() may still collect.
    inflight: dict[int, int] = field(default_factory=dict)
    #: Responses drained while waiting for a different request.
    completed: dict[int, Response] = field(default_factory=dict)
    #: Slots whose announce is proven consumed by the shard
    #: (``hydra.occ_announce_mask``): excluded from subsequent occupancy
    #: words so long windows stop re-announcing drained slots.
    confirmed: set = field(default_factory=set)
    #: req_id -> issue instant for AIMD RTT sampling (``qos.autotune``
    #: only; stays empty otherwise).
    issued_ns: dict[int, int] = field(default_factory=dict)
    #: Lazily created DRR slot arbiter (``qos.fair_queueing`` only).
    arbiter: Optional[SlotArbiter] = None
    #: req_id -> tenant for arbiter occupancy accounting
    #: (``qos.fair_queueing`` only; stays empty otherwise).
    req_tenant: dict[int, str] = field(default_factory=dict)
    #: Monotone per-pipe post counter and slot -> post sequence.  Under
    #: fair queueing a request can be assigned its req_id, then wait
    #: arbitrarily long for a slot grant while later req_ids post first,
    #: so req_id order no longer matches QP post order — the announce-
    #: confirmation inference in :meth:`HydraClient._drain` must compare
    #: post sequence instead.
    post_seq: int = 0
    slot_seq: dict[int, int] = field(default_factory=dict)


class StaticRouter:
    """Trivial router for single/few-shard setups and unit tests."""

    #: Static routes never change; retrying clients read these and skip
    #: the route-change wakeup (see ``HydraCluster`` for the live pair).
    generation = 0
    route_change = None

    def __init__(self, shards: list[Shard]):
        if not shards:
            raise ValueError("need at least one shard")
        self._shards = list(shards)

    def route(self, key: bytes) -> Shard:
        """The shard owning ``key``."""
        if len(self._shards) == 1:
            return self._shards[0]
        from ..index.hashing import hash64
        return self._shards[hash64(key) % len(self._shards)]

    def shards(self) -> list[Shard]:
        """All shards this router can reach."""
        return list(self._shards)


class ClientTransport:
    """Connection state shared by every tenant handle on one machine.

    Tenant-scoped handles from ``HydraCluster.client(tenant=...)`` share
    the machine's physical connections — that is what makes fair
    queueing meaningful: competing tenants contend for the *same*
    per-connection message slots and one-sided read windows, arbitrated
    by each pipeline's :class:`~repro.qos.SlotArbiter`.  A standalone
    :class:`HydraClient` creates a private transport, preserving the
    single-tenant behavior bit-for-bit.
    """

    __slots__ = ("conns", "tcp_conns", "pipes", "req_ids", "ctls",
                 "read_ctls", "read_use", "weights")

    def __init__(self):
        self.conns: dict[Shard, Connection] = {}
        self.tcp_conns: dict[Shard, object] = {}
        self.pipes: dict[int, _ConnPipeline] = {}
        self.req_ids = count(1)
        #: conn_id -> AIMD controller for the message-path window.
        self.ctls: dict[int, AimdController] = {}
        #: conn_id -> AIMD controller for the one-sided read window.
        self.read_ctls: dict[int, AimdController] = {}
        #: conn_id -> {tenant: outstanding one-sided reads} for
        #: weight-proportional read-window sharing.
        self.read_use: dict[int, dict[str, int]] = {}
        #: tenant -> DRR weight, registered at handle creation.
        self.weights: dict[str, float] = {}


class HydraClient:
    """One client endpoint (the paper's 'client library' instance).

    Result/raise contract for the public generator API (stable across
    transports and pipelining modes):

    * ``get``/``get_many`` return the value bytes, or ``None`` per absent
      key — NOT_FOUND is a *result*, never an exception.
    * mutations (``put``/``insert``/``update``/``delete``/``put_many``/
      ``lease_renew``) return the response :class:`~repro.protocol.Status`
      uniformly (OK/NOT_FOUND/EXISTS); they raise only for failures.
    * every raise derives from :class:`~repro.core.errors.HydraError`:
      :class:`ShardUnavailable` when the retry deadline lapses with no
      live route (or :class:`RequestTimeout` per attempt in
      single-attempt mode), :class:`BadStatus` when the shard answers
      with a status the operation cannot express.
    """

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 router, metrics: Optional[MetricSet] = None,
                 rptr_cache: Optional[RptrCache] = None,
                 client_id: Optional[str] = None, numa_domain: int = 0,
                 deadline_us: Optional[int] = None, tenant: str = "default",
                 qos: Optional[QosConfig] = None,
                 shared: Optional[ClientTransport] = None,
                 bucket=None):
        self.sim = sim
        self.config = config
        self.hydra = config.hydra
        self.client_cfg = config.client
        self.trav_cfg = config.traversal
        self.cpu = config.cpu
        self.machine = machine
        #: NUMA domain this client's buffers live in on its machine.
        self.numa_domain = numa_domain
        self.nic: Nic = machine.nic
        self.router = router
        self.metrics = metrics or MetricSet(sim)
        self.client_id = client_id or f"client{next(_client_ids)}"
        #: Per-request retry budget in µs; 0 = single-attempt (legacy) mode.
        self.deadline_us = (self.client_cfg.op_deadline_us
                            if deadline_us is None else deadline_us)
        #: Tenant identity and traffic-engineering policy.  ``qos=None``
        #: (the default handle) takes the exact pre-QoS code paths.
        self.tenant = tenant
        self.qos = qos
        self._wire_tenant = tenant.encode() if tenant != "default" else b""
        self._fair = qos is not None and qos.fair_queueing
        self._autotune = qos is not None and qos.autotune
        #: Shared per-tenant admission bucket (``qos.rate_ops``), owned by
        #: the cluster so every handle of one tenant drains one budget.
        self._bucket = bucket
        self.tmetrics = (self.metrics.scoped(f"client.tenant.{tenant}")
                         if qos is not None else None)
        #: Per-round shed bookkeeping for the multi-key replay engine.
        self._round_sheds = 0
        self._round_shed_hint = 0
        if (not self.client_cfg.rptr_cache_enabled
                or self.hydra.transport != "rdma"):
            # No one-sided reads over TCP: the pointer cache is moot.
            self.cache: Optional[RptrCache] = None
        elif rptr_cache is not None:
            self.cache = rptr_cache
        else:
            self.cache = RptrCache(self.client_cfg.rptr_cache_entries)
        #: Connection state, possibly shared with sibling tenant handles
        #: on this machine.  ``conns`` is keyed by Shard object identity:
        #: after a failover promotion the router returns a *new* Shard for
        #: the same shard id, and a fresh connection is created
        #: transparently on the next operation.
        if shared is None:
            shared = ClientTransport()
        self._shared = shared
        self.conns = shared.conns
        self._tcp_conns = shared.tcp_conns
        self._pipes = shared.pipes
        self._req_ids = shared.req_ids
        self._ctls = shared.ctls
        self._read_ctls = shared.read_ctls
        self._read_use = shared.read_use
        shared.weights[tenant] = qos.weight if qos is not None else 1.0
        # -- flat hot path (hydra.flat_hot_paths) --------------------------
        # Precomputed counter handles (``MetricSet.counter`` is get-or-
        # create, so these are the same objects the per-call lookups
        # returned — totals are identical either way) and reusable drain
        # scratch lists.  The gather loops burn these per op otherwise:
        # every response re-resolved its counter through an f-string key.
        self._flat = (self.hydra.flat_hot_paths
                      and self.hydra.transport == "rdma")
        m = self.metrics
        self._c_messages = m.counter("client.messages")
        self._c_stale = m.counter("client.stale_responses")
        self._c_retries = m.counter("client.retries")
        self._c_failovers = m.counter("client.failovers")
        #: Lease entries trusted under the skewed local clock that the
        #: true clock would have expired — each one is a window where a
        #: one-sided read could return a dead item.  Zero whenever
        #: ``client.lease_skew_guard_ns`` covers the machine's skew.
        self._c_skew_hazards = m.counter("client.lease_skew_hazards")
        self._c_rdma_reads = m.counter("client.rdma_reads")
        self._c_demotions = m.counter("client.demotions")
        self._c_bucket_reads = m.counter("client.bucket_reads")
        self._c_races = m.counter("client.traversal_races")
        if self.tmetrics is not None:
            tm = self.tmetrics
            self._tc_ops = tm.counter("ops")
            self._tc_throttled = tm.counter("throttled")
            self._tc_server_shed = tm.counter("server_shed")
            self._tc_slot_grants = tm.counter("slot_grants")
            self._tc_slot_wait = tm.tally("slot_wait_ns")
        #: Pool of drain-order scratch lists (one per *concurrent* drain:
        #: fan-outs run many issue/wait processes on one handle, each of
        #: which may be parked mid-drain at a simulated poll yield).
        self._drain_scratch: list[list[int]] = []

    # -- connections ---------------------------------------------------------
    def connection_to(self, shard: Shard) -> Connection:
        """The (lazily created) RDMA connection to a shard.

        A cached connection whose QP is no longer usable — torn down by
        the peer, or either NIC dead — is dropped and re-established
        up front, so a post-failover operation reconnects immediately
        instead of black-holing a post and burning a whole timeout.
        """
        conn = self.conns.get(shard)
        if conn is not None and not conn.client_qp.usable:
            self.drop_connection(shard)
            conn = None
        if conn is None:
            conn = shard.connect(self.nic,
                                 client_numa_domain=self.numa_domain)
            self.conns[shard] = conn
        return conn

    def _pipe(self, conn: Connection) -> _ConnPipeline:
        pipe = self._pipes.get(conn.conn_id)
        if pipe is None:
            pipe = _ConnPipeline(conn,
                                 free_slots=list(range(conn.n_slots)))
            self._pipes[conn.conn_id] = pipe
        return pipe

    def connect_all(self) -> None:
        """Eagerly connect to every shard the router knows."""
        if self.hydra.transport != "rdma":
            return  # TCP connections are established lazily (handshakes
                    # need simulation time)
        for shard in self.router.shards():
            self.connection_to(shard)

    def drop_connection(self, shard: Shard) -> None:
        """Tear down every connection to one shard.

        Evicts the pipeline entry along with the connection, so a
        reconnect after a failover starts from a clean slot map instead
        of inheriting in-flight bookkeeping that belonged to the dead
        link, and tells the shard so its poll loop stops sweeping the
        dead connection's slots.
        """
        conn = self.conns.pop(shard, None)
        if conn is not None:
            self._pipes.pop(conn.conn_id, None)
            shard.disconnect(conn)
        tconn = self._tcp_conns.pop(shard, None)
        if tconn is not None:
            tconn.close()

    # -- public operations (generator API) ---------------------------------
    def get(self, key: bytes):
        """GET: RDMA-Read fast path, else message path.

        Returns the value bytes, or ``None`` when the key is absent.
        Replayed across failovers under the deadline budget (GETs are
        idempotent); raises :class:`ShardUnavailable` when the budget
        lapses, :class:`BadStatus` on an error status.
        """
        def attempt(shard: Shard, timeout_ns: int):
            if self.cache is not None:
                hits, _demoted = yield from self._read_fanout(
                    [_ReadItem(0, key, shard)])
                if 0 in hits:
                    return hits[0]
            resp = yield from self._request(
                shard, Request(op=Op.GET, key=key), timeout_ns)
            if resp.status is Status.NOT_FOUND:
                return None
            if resp.status is not Status.OK:
                raise BadStatus(resp.status, f"GET {key!r}")
            self._maybe_cache(key, resp)
            return resp.value
        return (yield from self._retrying(key, attempt, "GET"))

    def put(self, key: bytes, value: bytes):
        """Insert-or-update; returns the response Status (always OK).

        Idempotent — replayed across failovers under the deadline budget.
        """
        return (yield from self._mutate(Op.PUT, key, value))

    def insert(self, key: bytes, value: bytes):
        """Insert; returns EXISTS if the key is already present.

        *Not* replayed: a lost response leaves it unknowable whether the
        insert applied, and a blind replay would report EXISTS for our
        own write.  A transport failure surfaces as
        :class:`ShardUnavailable` immediately (the insert may or may not
        have been applied).
        """
        return (yield from self._mutate(Op.INSERT, key, value))

    def update(self, key: bytes, value: bytes):
        """Update; returns NOT_FOUND if the key is absent.  Replayed."""
        return (yield from self._mutate(Op.UPDATE, key, value))

    def delete(self, key: bytes):
        """Delete; returns NOT_FOUND if the key is absent.

        Replayed (at-least-once): a replay whose first attempt's response
        was lost can report NOT_FOUND for a delete this client itself
        performed.
        """
        return (yield from self._mutate(Op.DELETE, key, b""))

    def lease_renew(self, key: bytes):
        """Explicitly extend the lease of a (popular) key; returns Status."""
        def attempt(shard: Shard, timeout_ns: int):
            resp = yield from self._request(
                shard, Request(op=Op.LEASE_RENEW, key=key), timeout_ns)
            if resp.status is Status.OK:
                self._maybe_cache(key, resp)
            return resp.status
        return (yield from self._retrying(key, attempt, "LEASE_RENEW"))

    # -- retry engine -------------------------------------------------------
    def _budget_ns(self) -> int:
        return self.deadline_us * 1_000

    def _backoff(self, wait_ns: int):
        """Sleep out one backoff step — or less, if a route change lands.

        Routers that publish failovers (``HydraCluster``) expose a
        ``route_change`` gate; blocking on it alongside the timer turns
        the worst-case blackout from *promotion + residual backoff* into
        just *promotion*.
        """
        gate = getattr(self.router, "route_change", None)
        if gate is None:
            yield self.sim.timeout(wait_ns)
        else:
            yield self.sim.any_of([gate.wait(), self.sim.timeout(wait_ns)])

    def _retrying(self, key: bytes, attempt, opname: str,
                  replayable: bool = True):
        """Run one single-key ``attempt(shard, timeout_ns)`` to completion.

        The request is re-routed and replayed on transport failures
        (timeout / QP error / dead NIC) until it succeeds or the deadline
        budget lapses; each failure tears down the shard's connection and
        drops the key's cached pointer so the replay starts clean.  With
        a zero budget the first failure is re-raised unchanged
        (single-attempt mode).  Non-replayable ops fail over to
        :class:`ShardUnavailable` on the first transport failure.
        """
        budget = self._budget_ns()
        deadline = self.sim.now + budget if budget > 0 else None
        backoff_ns = max(1, self.client_cfg.retry_backoff_min_us) * 1_000
        backoff_cap_ns = max(1, self.client_cfg.retry_backoff_max_us) * 1_000
        first_failure_ns: Optional[int] = None
        failed_shard: Optional[Shard] = None
        while True:
            if self._bucket is not None:
                yield from self._admit(deadline, opname)
            shard = self.router.route(key)
            timeout_ns = self.client_cfg.op_timeout_ns
            if deadline is not None:
                timeout_ns = min(timeout_ns, deadline - self.sim.now)
            try:
                result = yield from attempt(shard, timeout_ns)
            except TenantThrottled as exc:
                # Server-side shed: honor the retry hint under the budget
                # (no connection teardown — the shard is alive, just
                # refusing this tenant more slots this sweep).
                if deadline is None:
                    raise
                wait_ns = max(1, exc.retry_after_ns)
                if wait_ns >= deadline - self.sim.now:
                    raise
                yield self.sim.timeout(wait_ns)
                continue
            except _RETRYABLE as exc:
                if deadline is None:
                    raise  # single-attempt mode: legacy contract
                self._c_retries.add()
                if first_failure_ns is None:
                    first_failure_ns = self.sim.now
                    failed_shard = shard
                self.drop_connection(shard)
                if self.cache is not None:
                    self.cache.invalidate(key)
                if not replayable:
                    raise ShardUnavailable(
                        f"{self.client_id}: {opname} {key!r} aborted after "
                        f"transport failure (not replayable; it may or may "
                        f"not have been applied)") from exc
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    probe = getattr(self.router, "key_recovering", None)
                    if probe is not None and probe(key):
                        # Diagnosed outage: the shard is mid durable-log
                        # replay and will come back with a route bump.
                        raise RecoveryInProgress(
                            f"{self.client_id}: {opname} {key!r} deadline "
                            f"({self.deadline_us}us) lapsed while the "
                            f"shard replays its durable log") from exc
                    raise ShardUnavailable(
                        f"{self.client_id}: {opname} {key!r} deadline "
                        f"({self.deadline_us}us) lapsed with no live "
                        f"route") from exc
                yield from self._backoff(min(backoff_ns, remaining))
                backoff_ns = min(backoff_ns * 2, backoff_cap_ns)
                continue
            if first_failure_ns is not None and shard is not failed_shard:
                self._c_failovers.add()
                self.metrics.tally("client.failover_latency_ns").observe(
                    self.sim.now - first_failure_ns)
            if self.tmetrics is not None:
                self._tc_ops.add()
            return result

    def _admit(self, deadline: Optional[int], opname: str = "", n: int = 1):
        """Token-bucket admission (``qos.rate_ops``).

        Waits out the bucket refill under the deadline budget; when the
        budget cannot cover the wait (or there is no budget to sleep
        under) the op fails *promptly* with :class:`TenantThrottled`
        carrying the ``retry_after_ns`` hint — never a silent stall.

        Batches larger than the bucket depth are admitted in
        burst-sized chunks, so a multi-op call always makes progress
        instead of asking for more tokens than can ever accrue at once.
        """
        chunk = max(1, int(self._bucket.burst))
        while n > 0:
            take_n = min(n, chunk)
            wait_ns = self._bucket.take(self.sim.now, take_n)
            if wait_ns == 0:
                n -= take_n
                continue
            if self.tmetrics is not None:
                self._tc_throttled.add()
            if deadline is None or wait_ns >= deadline - self.sim.now:
                raise TenantThrottled(
                    f"{self.client_id}: {opname} admission refused for "
                    f"tenant {self.tenant!r}",
                    retry_after_ns=wait_ns, tenant=self.tenant)
            yield self.sim.timeout(wait_ns)

    # -- internals ---------------------------------------------------------
    def _mutate(self, op: Op, key: bytes, value: bytes):
        def attempt(shard: Shard, timeout_ns: int):
            resp = yield from self._request(
                shard, Request(op=op, key=key, value=value), timeout_ns)
            if self.cache is not None:
                # Any *completed* mutation drops the cached pointer — not
                # just Status.OK.  A DELETE/UPDATE that raced to NOT_FOUND
                # means a concurrent writer already retired the extent we
                # point at; keeping the entry would leave co-located
                # sharers Reading a dead item until the lease lapsed.
                # (Out-of-place updates make our own pointer stale on OK,
                # as before.)
                self.cache.invalidate(key)
            return resp.status
        return (yield from self._retrying(
            key, attempt, op.name, replayable=op is not Op.INSERT))

    # -- pipelined one-sided read engine ------------------------------------
    def _read_window(self, conn: Connection) -> int:
        """Total one-sided read window for one connection (AIMD-governed
        when ``qos.autotune``, else the static ``client`` knob)."""
        if self._autotune:
            ctl = self._read_ctls.get(conn.conn_id)
            if ctl is None:
                ctl = self._read_ctls[conn.conn_id] = (
                    AimdController.from_config(
                        self.qos,
                        initial=max(1, self.client_cfg.max_inflight_reads)))
            return ctl.window
        return max(1, self.client_cfg.max_inflight_reads)

    def _post_read_batch(self, cs: _ReadState):
        """Post the next doorbell-coalesced Read batch on one connection.

        Returns ``(posted, failed)``: ``posted`` holds at most one
        ``(ops, batch_event, cs)`` triple — the whole chain completes
        through **one** event whose value lists the completions in post
        order; ``failed`` holds every queued item when the QP turns out
        to be unusable (torn down by a failover) — the caller demotes
        those to the message path.

        Tenant handles (``qos`` set) share the window weight-
        proportionally across the tenants with reads outstanding on this
        connection, so an aggressor's fan-outs cannot monopolize the
        read window any more than the message slots.
        """
        total = self._read_window(cs.conn)
        if self.qos is None:
            limit, mine = total, cs.inflight
        else:
            use = self._read_use.setdefault(cs.conn.conn_id, {})
            weights = self._shared.weights
            active = {t for t, u in use.items() if u > 0}
            active.add(self.tenant)
            w_sum = sum(weights.get(t, 1.0) for t in active)
            limit = max(1, int(total * weights.get(self.tenant, 1.0)
                               / w_sum))
            mine = use.get(self.tenant, 0)
        n = min(limit - mine, len(cs.queue))
        if n <= 0 and cs.inflight == 0 and cs.queue:
            # Anti-strand: whatever the share math says, a chain with
            # nothing in flight must make progress.
            n = 1
        if n <= 0:
            return [], []
        batch, cs.queue = cs.queue[:n], cs.queue[n:]
        self._c_rdma_reads.add(n)
        try:
            batch_ev = cs.conn.client_qp.post_read_batch(
                [op.rptr for op in batch])
        except QpError:
            # Dead QP: nothing on this connection can be read one-sidedly.
            failed = batch + cs.queue
            cs.queue = []
            return [], failed
        cs.inflight += n
        if self.qos is not None:
            use = self._read_use.setdefault(cs.conn.conn_id, {})
            use[self.tenant] = use.get(self.tenant, 0) + n
        cs.post_ns = self.sim.now
        return [(batch, batch_ev, cs)], []

    def _read_fanout(self, items: list[_ReadItem], on_demote=None):
        """Pipelined one-sided GET fan-out (§4.2.2, batched).

        Looks up every remote pointer up front, posts the hit set as
        doorbell-coalesced RDMA-Read batches — at most
        ``client.max_inflight_reads`` outstanding per connection — and
        gathers completions as they arrive.  Keys that cannot be served
        one-sidedly (no usable pointer, QP error, dead/garbage item, key
        mismatch) are *demoted*: handed to ``on_demote`` the moment the
        miss is known, so a message-path request overlaps with the Reads
        still in flight, or collected when no callback is given.

        Returns ``(hits, demoted)``: ``hits`` maps item index -> value,
        ``demoted`` lists items the caller must route through messages
        (empty when ``on_demote`` consumed them).
        """
        cache = self.cache
        hits: dict[int, Optional[bytes]] = {}
        demoted: list[_ReadItem] = []

        def demote(item: _ReadItem):
            self._c_demotions.add()
            if on_demote is None:
                demoted.append(item)
            else:
                yield from on_demote(item)

        def fail_op(op: _ReadOp):
            """A Read that could not be served (dead QP / bad completion
            outside the traversal protocol): demote its key."""
            if op.kind == "item":
                cache.record_invalid(op.item.key)
            yield from demote(op.item)

        # -- traversal plumbing (cold keys, one-sided index walk) ---------
        def enqueue_bucket(trav: _Traversal, cs: _ReadState,
                          frame_idx: int, confirm: bool = False) -> None:
            self._c_bucket_reads.add()
            rptr = RemotePointer(trav.index.export_rkey,
                                 frame_idx * BUCKET_EXPORT_BYTES,
                                 BUCKET_EXPORT_BYTES)
            cs.queue.append(_ReadOp("confirm" if confirm else "bucket",
                                    trav.item, rptr, trav))

        def enqueue_item_read(trav: _Traversal, cs: _ReadState) -> None:
            cls_idx, offset = trav.candidates.pop(0)
            rptr = RemotePointer(trav.index.arena_rkey, offset,
                                 trav.index.size_classes[cls_idx])
            cs.queue.append(_ReadOp("titem", trav.item, rptr, trav,
                                    offset=offset))

        def start_traversal(item: _ReadItem, cs: _ReadState) -> None:
            index = cs.conn.index
            h = hash64(item.key)
            trav = _Traversal(item=item, index=index, sig=signature16(h),
                              head_frame=bucket_index(h, index.n_buckets))
            enqueue_bucket(trav, cs, trav.head_frame)

        def race(trav: _Traversal, cs: _ReadState):
            """The chain moved under the walk: restart, bounded."""
            trav.retries += 1
            self._c_races.add()
            if trav.retries > self.trav_cfg.max_retries:
                yield from demote(trav.item)
                return
            trav.frames.clear()
            trav.candidates.clear()
            trav.next_link = None
            enqueue_bucket(trav, cs, trav.head_frame)

        def advance(trav: _Traversal, cs: _ReadState) -> None:
            """Current bucket's candidates exhausted: follow the link or
            conclude NOT_FOUND."""
            if trav.next_link is not None:
                enqueue_bucket(trav, cs, trav.next_link)
                return
            if len(trav.frames) == 1:
                # One atomic 64 B snapshot held the whole chain: the key
                # was provably absent at the Read's DMA instant.
                hits[trav.item.idx] = None
                return
            # Multi-bucket walk: only believable if the head frame never
            # moved (every chain mutation bumps the head's version).
            enqueue_bucket(trav, cs, trav.frames[0][0], confirm=True)

        def handle_bucket(op: _ReadOp, wc, cs: _ReadState):
            trav = op.trav
            if not wc.ok:
                yield from race(trav, cs)
                return
            try:
                bucket = parse_bucket(wc.data)
            except ValueError:
                yield from race(trav, cs)
                return
            if op.kind == "confirm":
                if bucket.version == trav.frames[0][1]:
                    hits[trav.item.idx] = None  # confirmed NOT_FOUND
                else:
                    yield from race(trav, cs)
                return
            if bucket.demote:
                # Chain not fully exportable: the server said don't trust
                # one-sided conclusions here.
                yield from demote(trav.item)
                return
            frame_idx = op.rptr.offset // BUCKET_EXPORT_BYTES
            if (any(f == frame_idx for f, _v in trav.frames)
                    or len(trav.frames) >= 64):
                # Link cycle / absurd depth: stale frames mixed across
                # instants — a race by definition.
                yield from race(trav, cs)
                return
            trav.frames.append((frame_idx, bucket.version))
            trav.candidates = [(cls, off) for _i, sig, cls, off
                               in bucket.slots if sig == trav.sig]
            if any(cls >= len(trav.index.size_classes)
                   for cls, _off in trav.candidates):
                # A size-class index the handshake never advertised:
                # stale/foreign frame bytes — treat as a race.
                yield from race(trav, cs)
                return
            trav.next_link = bucket.link
            if trav.candidates:
                enqueue_item_read(trav, cs)
            else:
                advance(trav, cs)

        def handle_titem(op: _ReadOp, wc, cs: _ReadState):
            trav = op.trav
            parsed = parse_item_prefix(wc.data) if wc.ok else None
            if parsed is not None:
                if parsed.key == op.item.key:
                    # A DEAD guardian is fine *here* (unlike the cached-
                    # pointer path): the bucket snapshot proved this was
                    # the key's current extent at the bucket Read's DMA
                    # instant, so its retirement happened after that — and
                    # reclaim defers a full read horizon past retirement,
                    # so the bytes are intact and the value linearizes to
                    # the bucket-read instant.  Without this, every GET
                    # racing an update would retry and hot keys would
                    # demote, re-serializing on the server we just
                    # offloaded.  Only a live hit may prime the cache.
                    hits[op.item.idx] = parsed.value
                    if parsed.live:
                        self._prime_from_traversal(op.item.key, op.offset,
                                                   parsed, trav.index)
                    return
                # 16-bit signature collision: a *different* key answered.
                # Not a race — keep probing candidates.
                if trav.candidates:
                    enqueue_item_read(trav, cs)
                else:
                    advance(trav, cs)
                return
            # Garbage bytes: the frame we walked was stale (failed Read,
            # or an offset whose meaning changed under us).
            yield from race(trav, cs)

        yield self.sim.timeout(cache.batch_op_cost_ns(len(items)))
        # Lease checks run on the *machine's* clock (possibly skewed),
        # advanced by the configured guard: a client whose clock runs
        # behind true time would otherwise trust a pointer past its real
        # lease horizon and one-sided-read a dead item.
        lease_now = (self.sim.now
                     + getattr(self.machine, "clock_skew_ns", 0)
                     + self.client_cfg.lease_skew_guard_ns)
        entries = cache.lookup_batch([it.key for it in items], lease_now)
        states: dict[int, _ReadState] = {}

        def state_for(conn: Connection) -> _ReadState:
            cs = states.get(conn.conn_id)
            if cs is None:
                cs = states[conn.conn_id] = _ReadState(conn)
            return cs

        misses: list[_ReadItem] = []
        cold: list[tuple[_ReadItem, Connection]] = []
        for item, entry in zip(items, entries):
            if entry is not None:
                if entry.lease_expiry_ns < self.sim.now + LEASE_SAFETY_NS:
                    # Trusted under the skewed clock, expired on the true
                    # one: a potential dead-item read the guard missed.
                    self._c_skew_hazards.add()
                cs = state_for(self.connection_to(item.shard))
                cs.queue.append(_ReadOp("item", item, entry.rptr))
                continue
            conn = self.connection_to(item.shard)
            if self.trav_cfg.enabled and conn.index is not None:
                cold.append((item, conn))
            else:
                misses.append(item)
        if len(cold) >= max(1, self.trav_cfg.min_fanout):
            # Enough cold keys that their bucket Reads pipeline through
            # one doorbell: resolve them one-sidedly, zero server CPU.
            for item, conn in cold:
                start_traversal(item, state_for(conn))
        else:
            misses.extend(item for item, _conn in cold)
        #: (ops, batch event, conn state) gather list — one entry per
        #: posted chain; reads are in flight from here on, so everything
        #: below overlaps with them.
        pending: list = []
        unusable: list[_ReadOp] = []
        for cs in states.values():
            posted, failed = self._post_read_batch(cs)
            pending.extend(posted)
            unusable.extend(failed)
        for item in misses:
            yield from demote(item)
        for op in unusable:
            yield from fail_op(op)
        i = 0
        while i < len(pending):
            ops, ev, cs = pending[i]
            i += 1
            wcs = yield ev
            cs.inflight -= len(ops)
            if self.qos is not None:
                use = self._read_use.get(cs.conn.conn_id)
                if use is not None and self.tenant in use:
                    use[self.tenant] = max(0, use[self.tenant] - len(ops))
            if self._autotune and wcs:
                ctl = self._read_ctls.get(cs.conn.conn_id)
                if ctl is not None:
                    if all(wc.ok for wc in wcs):
                        ctl.on_ack(max(wc.ns for wc in wcs) - cs.post_ns)
                    else:
                        ctl.on_loss()
            # The CQ drained incrementally while the chain was in flight:
            # WQE i's CQE landed at wc.ns, so its parse overlapped the
            # tail of the chain.  Model that poll pipeline — each parse
            # starts at max(CQE arrival, previous parse end) — and pay
            # only the residual lag past the batch completion instead of
            # serialising every parse after the last CQE.
            parse_ns = self.cpu.parse_ns
            pipe = 0
            for op, wc in zip(ops, wcs):
                pipe = max(pipe, wc.ns) + parse_ns
                if op.kind == "item":
                    parsed = parse_item(wc.data) if wc.ok else None
                    if (parsed is not None and parsed.live
                            and parsed.key == op.item.key):
                        cache.record_successful()
                        hits[op.item.idx] = parsed.value
                    else:
                        # Outdated pointer (dead item after an out-of-place
                        # update, reclaimed/garbage bytes, failed completion).
                        cache.record_invalid(op.item.key)
                        yield from demote(op.item)
                elif op.kind == "titem":
                    yield from handle_titem(op, wc, cs)
                else:  # "bucket" / "confirm"
                    yield from handle_bucket(op, wc, cs)
            if self._flat:
                # Every parse above copies out of wc.data; the chain's
                # pooled CQEs can go back to the freelist.  (An exception
                # mid-gather leaks them to the GC — correct, unrecycled.)
                release = self.nic.wc_pool.release
                for wc in wcs:
                    if wc._live:
                        release(wc)
            lag = pipe - self.sim.now
            if lag > 0:
                yield self.sim.timeout(lag)
            if cs.inflight == 0 and cs.queue:
                posted, failed = self._post_read_batch(cs)
                pending.extend(posted)
                for fop in failed:
                    yield from fail_op(fop)
        return hits, demoted

    def _maybe_cache(self, key: bytes, resp: Response) -> None:
        if self.cache is None or not resp.remote_pointer_valid:
            return
        self.cache.store(key, CachedPointer(
            rptr=RemotePointer(resp.rkey, resp.roffset, resp.rlen),
            lease_expiry_ns=resp.lease_expiry_ns,
            version=resp.version,
        ))

    def _prime_from_traversal(self, key: bytes, offset: int, parsed,
                              index: IndexHandshake) -> None:
        """Re-prime the pointer cache from a traversal hit.

        The entry carries a *synthetic* expiry of half the read horizon:
        the server holds no lease for this pointer, but it defers every
        reclaim ``traversal_read_horizon_ns`` past retirement, so within
        this window the extent can be dead or poisoned — both caught by
        guardian/parse validation — yet never *reused*, which is the only
        hazard validation cannot catch by itself.
        """
        if self.cache is None:
            return
        extent = item_size(len(parsed.key), len(parsed.value))
        self.cache.store(key, CachedPointer(
            rptr=RemotePointer(index.arena_rkey, offset, extent),
            lease_expiry_ns=(self.sim.now
                             + self.trav_cfg.read_horizon_ns // 2),
            version=parsed.version,
        ))

    # -- pipelined message path (issue / wait split) ------------------------
    def _window(self, conn: Connection) -> int:
        """Message-path in-flight window for one connection (AIMD-governed
        when ``qos.autotune``, else the static ``client`` knob)."""
        if self._autotune:
            ctl = self._ctls.get(conn.conn_id)
            if ctl is None:
                ctl = self._ctls[conn.conn_id] = AimdController.from_config(
                    self.qos,
                    initial=max(1, self.client_cfg.max_inflight_per_conn))
            window = ctl.window
        else:
            window = max(1, self.client_cfg.max_inflight_per_conn)
        if self.hydra.rdma_write_messaging:
            window = min(window, conn.n_slots)
        return window

    def _slot_capacity(self, pipe: _ConnPipeline, conn: Connection) -> int:
        """Grantable slot capacity right now (window minus in-flight,
        bounded by actually-free request slots)."""
        cap = self._window(conn) - len(pipe.inflight)
        if self.hydra.rdma_write_messaging:
            cap = min(cap, len(pipe.free_slots))
        return cap

    def _acquire_slot(self, pipe: _ConnPipeline, conn: Connection,
                      deadline: int):
        """DRR-arbitrated slot acquisition (``qos.fair_queueing``).

        Submits a ticket to the pipeline's arbiter and blocks until it is
        granted in deficit-round-robin order across tenants.  Every
        waiter pumps the arbiter when it wakes, so grants happen in DRR
        order no matter whose process observes the freed capacity first.
        There is no simulated yield between the grant and the slot take
        back in :meth:`issue`, so a grant is a safe reservation.
        """
        arb = pipe.arbiter
        if arb is None:
            arb = pipe.arbiter = SlotArbiter(
                self.sim, self.qos.drr_quantum if self.qos else 1.0)
        ticket = arb.submit(self.tenant,
                            self.qos.weight if self.qos else 1.0)
        t0 = self.sim.now
        while True:
            arb.pump(self._slot_capacity(pipe, conn),
                     total=self._window(conn))
            if ticket.granted:
                arb.consume(ticket)
                if self.tmetrics is not None:
                    self._tc_slot_grants.add()
                    self._tc_slot_wait.observe(
                        self.sim.now - t0)
                return
            drained = yield from self._drain(pipe)
            if drained:
                continue
            remaining = deadline - self.sim.now
            if remaining <= 0:
                arb.cancel(ticket)
                if arb.waiting():
                    # A cancelled grant frees capacity other tenants may
                    # already be asleep waiting for.
                    arb.pump(self._slot_capacity(pipe, conn),
                             total=self._window(conn))
                raise RequestTimeout(
                    f"{self.client_id}: window full and shard silent "
                    f"(conn {conn.conn_id})")
            yield self.sim.any_of([ticket.gate.wait(),
                                   conn.client_doorbell.wait(),
                                   self.sim.timeout(remaining)])

    def issue(self, shard: Shard, req: Request,
              timeout_ns: Optional[int] = None):
        """Issue one message-path request; returns a :class:`PendingRequest`.

        Blocks (in simulated time) only while the connection's in-flight
        window is exhausted — draining completed responses as it waits —
        never on the issued request's own response.  Collect the response
        later with :meth:`wait`.  ``timeout_ns`` caps the window wait
        (defaults to ``client.op_timeout_ns``); the retry engine passes
        the remaining deadline budget here.
        """
        req_id = next(self._req_ids)
        self._c_messages.add()
        if self._flat:
            # Pack the wire frame directly from the caller's request —
            # the scalar oracle builds an intermediate re-keyed Request
            # dataclass per op purely to call .encode() on it.
            key, value, tenant = req.key, req.value, self._wire_tenant
            data = (_REQ.pack(req.op, len(tenant), len(key), len(value),
                              req_id)
                    + key + value + tenant)
        else:
            req = Request(op=req.op, key=req.key, value=req.value,
                          req_id=req_id, tenant=self._wire_tenant)
            data = req.encode()
        yield self.sim.timeout(self.cpu.parse_ns)  # marshalling
        conn = self.connection_to(shard)
        pipe = self._pipe(conn)
        if timeout_ns is None:
            timeout_ns = self.client_cfg.op_timeout_ns
        deadline = self.sim.now + timeout_ns
        if self._fair:
            yield from self._acquire_slot(pipe, conn, deadline)
        else:
            while (len(pipe.inflight) >= self._window(conn)
                   or (self.hydra.rdma_write_messaging
                       and not pipe.free_slots)):
                drained = yield from self._drain(pipe)
                if drained:
                    continue
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    raise RequestTimeout(
                        f"{self.client_id}: window full and shard silent "
                        f"(conn {conn.conn_id})")
                yield self.sim.any_of([conn.client_doorbell.wait(),
                                       self.sim.timeout(remaining)])
        if self.hydra.rdma_write_messaging:
            slot_bytes = conn.layout.slot_bytes
            if frame_len(len(data)) > slot_bytes:
                raise SlotOverflow(
                    f"request of {len(data)}B exceeds the {slot_bytes}B "
                    f"message slot; raise hydra.conn_buf_bytes or lower "
                    f"hydra.msg_slots_per_conn for large items")
            slot = pipe.free_slots.pop(0)
            pipe.slot_req[slot] = req_id
            pipe.post_seq += 1
            pipe.slot_seq[slot] = pipe.post_seq
            if conn.layout.occupancy:
                # The occupancy word rides the frame's doorbell, posted
                # second so RC lands the frame before its announce bit.
                # The word REPLACES the remote value, so it must carry a
                # bit for every in-flight slot whose announce might still
                # be unconsumed; a bit for an already-consumed slot merely
                # costs the shard one spurious probe, never a lost
                # message.  With the announce mask on, slots proven
                # consumed (see _drain) are excluded, so long windows stop
                # re-announcing drained slots.
                if self.hydra.occ_announce_mask and pipe.confirmed:
                    announce = [s for s in pipe.slot_req
                                if s not in pipe.confirmed]
                else:
                    announce = pipe.slot_req
                batch_ev = conn.client_qp.post_write_batch([
                    (conn.req_slot_rptrs[slot], frame(data)),
                    (conn.req_occ_rptr,
                     occ_announce(announce, conn.layout.n_slots)),
                ])
                if self._flat:
                    # Fire-and-forget post: recycle its pooled CQEs the
                    # instant the batch completes (nobody reads them).
                    batch_ev.callbacks.append(self._recycle_wcs)
            else:
                conn.client_qp.post_write(conn.req_slot_rptrs[slot],
                                          frame(data))
        else:
            conn.client_qp.post_recv()
            conn.client_qp.post_send(data)
            slot = -1
        pipe.inflight[req_id] = slot
        if self._fair:
            pipe.req_tenant[req_id] = self.tenant
        if self._autotune:
            pipe.issued_ns[req_id] = self.sim.now
        return PendingRequest(req_id=req_id, shard=shard, conn=conn,
                              slot=slot)

    def wait(self, pending: PendingRequest,
             timeout_ns: Optional[int] = None):
        """Collect the response for an issued request (blocks until it
        lands or the timeout — default ``client.op_timeout_ns`` — expires).

        A ``Status.THROTTLED`` response (server-side shed) surfaces as
        :class:`TenantThrottled` carrying the shard's retry hint; the
        retry engine sleeps it out under the deadline budget.
        """
        conn = pending.conn
        pipe = self._pipe(conn)
        if timeout_ns is None:
            timeout_ns = self.client_cfg.op_timeout_ns
        deadline = self.sim.now + timeout_ns
        while True:
            resp = pipe.completed.pop(pending.req_id, None)
            if resp is not None:
                if resp.status is Status.THROTTLED:
                    if self.tmetrics is not None:
                        self._tc_server_shed.add()
                    raise TenantThrottled(
                        f"{self.client_id}: shard shed {resp.op.name} for "
                        f"tenant {self.tenant!r}",
                        retry_after_ns=resp.retry_after_ns,
                        tenant=self.tenant)
                return resp
            drained = yield from self._drain(pipe)
            if drained:
                continue
            remaining = deadline - self.sim.now
            if remaining <= 0:
                # Abandon the request and reclaim its slot (the request —
                # or its response — is presumed lost with the shard).  A
                # late response carries a req_id nobody waits on any more,
                # so _land discards it as stale instead of raising.
                slot = pipe.inflight.pop(pending.req_id, None)
                if slot is not None and slot >= 0:
                    pipe.slot_req.pop(slot, None)
                    pipe.slot_seq.pop(slot, None)
                    pipe.confirmed.discard(slot)
                    insort(pipe.free_slots, slot)
                self._release_slot(pipe, pending.req_id)
                if pipe.issued_ns.pop(pending.req_id, None) is not None:
                    ctl = self._ctls.get(conn.conn_id)
                    if ctl is not None:
                        ctl.on_loss()
                raise RequestTimeout(
                    f"{self.client_id}: no response from shard "
                    f"(conn {conn.conn_id})")
            ev = yield self.sim.any_of([
                conn.client_doorbell.wait(),
                self.sim.timeout(remaining),
            ])
            del ev  # loop re-probes regardless of which event fired

    def _recycle_wcs(self, ev) -> None:
        """Batch-event callback: return pooled CQEs nobody will read
        (fire-and-forget announce posts) to this NIC's freelist."""
        release = self.nic.wc_pool.release
        for wc in ev.value:
            if wc._live:
                release(wc)

    def _drain(self, pipe: _ConnPipeline):
        """Consume every landed response on one connection (non-blocking).

        Stale responses — req_ids nobody is waiting on any more, e.g. from
        a request that timed out earlier on this connection — are discarded
        and counted instead of poisoning the next call (they used to raise).
        Returns the number of responses landed.
        """
        conn = pipe.conn
        landed = 0
        if self._flat and self.hydra.rdma_write_messaging:
            # Reuse a pooled scratch list for the slot-order snapshot
            # instead of allocating one per poll.  Pooled (not a single
            # per-client buffer) because fan-outs park many issue/wait
            # processes mid-drain at the poll-probe yields below — each
            # concurrent drain needs its own snapshot, exactly as the
            # scalar sorted() copy provided.
            scratch = self._drain_scratch
            slots = scratch.pop() if scratch else []
            slots.extend(pipe.slot_req)
            slots.sort()
            try:
                landed = yield from self._drain_slots(pipe, conn, slots)
            finally:
                slots.clear()
                scratch.append(slots)
            return landed
        if self.hydra.rdma_write_messaging:
            landed = yield from self._drain_slots(pipe, conn,
                                                  sorted(pipe.slot_req))
        else:
            while True:
                cqe = conn.client_qp.recv_cq.poll_one()
                if cqe is None or not cqe.ok:
                    break
                yield self.sim.timeout(self.cpu.cq_poll_ns)
                try:
                    resp = Response.decode(cqe.data)
                except (ValueError, KeyError):
                    resp = None
                if resp is None or pipe.inflight.pop(resp.req_id,
                                                     None) is None:
                    self._c_stale.add()
                    continue
                self._release_slot(pipe, resp.req_id)
                pipe.completed[resp.req_id] = resp
                landed += 1
                if pipe.issued_ns:
                    self._feed_rtt(conn, pipe, resp.req_id)
        return landed

    def _drain_slots(self, pipe: _ConnPipeline, conn: Connection, slots):
        """One-sided drain body: probe each snapshot slot's response
        frame (shared by the scalar and flat paths — only the snapshot
        list's allocation differs)."""
        landed = 0
        for slot in slots:
            off = conn.layout.offset(slot)
            payload = consume(conn.resp_region, off)
            if payload is None:
                continue
            clear(conn.resp_region, off, len(payload))
            yield self.sim.timeout(self.cpu.poll_probe_ns)
            try:
                resp = Response.decode(payload)
            except (ValueError, KeyError):
                resp = None
            if resp is None or resp.req_id != pipe.slot_req[slot]:
                # Garbage frame or a late response from a request that
                # timed out before this slot was reused: discard it and
                # keep the slot — its current request is still pending.
                self._c_stale.add()
                continue
            pipe.slot_req.pop(slot)
            seq_r = pipe.slot_seq.pop(slot, 0)
            pipe.confirmed.discard(slot)
            insort(pipe.free_slots, slot)
            pipe.inflight.pop(resp.req_id, None)
            self._release_slot(pipe, resp.req_id)
            pipe.completed[resp.req_id] = resp
            landed += 1
            if pipe.issued_ns:
                self._feed_rtt(conn, pipe, resp.req_id)
            if self.hydra.occ_announce_mask:
                # A response for req r proves the shard's occupancy
                # snapshot that carried r also carried every
                # earlier-POSTED still-in-flight slot (each occ write
                # is the OR of all unconfirmed in-flight slots, and RC
                # delivers in post order) — so those announces are
                # consumed and need not be re-announced.  "Earlier"
                # must mean post order: under fair queueing a low
                # req_id can wait out a slot grant and post *after*
                # higher req_ids, and confirming it off req_id order
                # would suppress an announce the shard never saw —
                # the request would hang until its op timeout.  On
                # arbiter-free pipes post order and req_id order are
                # the same thing; the legacy comparison is kept there
                # so the default-path schedule stays bit-identical.
                if pipe.arbiter is not None:
                    for other_slot in pipe.slot_req:
                        if pipe.slot_seq.get(other_slot, 0) < seq_r:
                            pipe.confirmed.add(other_slot)
                else:
                    for other_slot, other_req in pipe.slot_req.items():
                        if other_req < resp.req_id:
                            pipe.confirmed.add(other_slot)
        return landed

    def _release_slot(self, pipe: _ConnPipeline, req_id: int) -> None:
        """Return a landed/abandoned request's slot to its tenant's
        occupancy budget in the pipeline's arbiter (fair-queueing
        bookkeeping only; a no-op on the default path).

        The release itself pumps the arbiter: occupancy caps may have
        just lifted (the releasing tenant can go idle here, shrinking
        the active set), and the tenants it unblocks may have already
        drained every pending response — with no future doorbell to
        wake them, the grant must happen now, not at their timeout.
        """
        tenant = pipe.req_tenant.pop(req_id, None)
        if tenant is not None and pipe.arbiter is not None:
            pipe.arbiter.release(tenant)
            if pipe.arbiter.waiting():
                pipe.arbiter.pump(self._slot_capacity(pipe, pipe.conn),
                                  total=self._window(pipe.conn))

    def _feed_rtt(self, conn: Connection, pipe: _ConnPipeline,
                  req_id: int) -> None:
        """Feed one landed response's RTT to the connection's AIMD
        controller (``qos.autotune``; the issue instant is recorded by
        whichever tenant handle autotunes, the sample lands in the
        shared per-connection controller)."""
        t0 = pipe.issued_ns.pop(req_id, None)
        if t0 is None:
            return
        ctl = self._ctls.get(conn.conn_id)
        if ctl is not None:
            ctl.on_ack(self.sim.now - t0)

    def _request(self, shard: Shard, req: Request,
                 timeout_ns: Optional[int] = None):
        """Message path: send the request, await the framed response."""
        if self.hydra.transport == "tcp":
            resp = yield from self._tcp_request(shard, req)
            return resp
        pending = yield from self.issue(shard, req, timeout_ns)
        resp = yield from self.wait(pending, timeout_ns)
        return resp

    # -- multi-key operations -----------------------------------------------
    def get_many(self, keys: list[bytes]):
        """Hybrid pipelined multi-GET; returns values aligned with ``keys``.

        Every remote pointer is looked up in the cache up front; the hit
        set is posted as doorbell-coalesced RDMA-Read batches while every
        miss — and every Read demoted by validation — joins one pipelined
        message-path batch that overlaps with the still-in-flight Reads.
        Successful message responses re-prime the pointer cache.

        Results align with ``keys``: value bytes per hit, ``None`` per
        absent key — the same NOT_FOUND-is-a-result contract as
        :meth:`get`, so a mixed batch never raises mid-population.  Keys
        that fail at the transport level are re-routed and replayed in
        further rounds under the shared deadline budget;
        :class:`ShardUnavailable` is raised only when the budget lapses
        with keys still unserved, and only after every in-flight request
        of the final round has been drained (no leaked slots).  In
        single-attempt mode (zero budget) the first round's timeout is
        re-raised as before.
        """
        results: list[Optional[bytes]] = [None] * len(keys)
        if self.hydra.transport == "tcp":
            for i, key in enumerate(keys):
                results[i] = yield from self.get(key)
            return results
        items = [_ReadItem(i, key, self.router.route(key))
                 for i, key in enumerate(keys)]
        yield from self._retrying_rounds(
            items, lambda batch, timeout_ns:
                self._get_round(batch, results, timeout_ns), "GET_MANY")
        return results

    def put_many(self, pairs: list[tuple[bytes, bytes]]):
        """Pipelined multi-PUT; returns a Status per ``(key, value)``.

        Statuses align with ``pairs``.  Like :meth:`get_many`, transport
        failures are replayed in re-routed rounds under the deadline
        budget (PUTs are idempotent), every issued request is drained
        before a round reports its failures, and the budget lapsing
        raises :class:`ShardUnavailable`.
        """
        statuses: list[Status] = [Status.ERROR] * len(pairs)
        if self.hydra.transport == "tcp":
            for i, (key, value) in enumerate(pairs):
                statuses[i] = yield from self.put(key, value)
            return statuses
        items = [_ReadItem(i, key, self.router.route(key))
                 for i, (key, _value) in enumerate(pairs)]
        yield from self._retrying_rounds(
            items, lambda batch, timeout_ns:
                self._put_round(batch, pairs, statuses, timeout_ns),
            "PUT_MANY")
        return statuses

    def _retrying_rounds(self, items: list[_ReadItem], round_fn,
                         opname: str):
        """Replay engine for multi-key ops.

        Runs ``round_fn(items, timeout_ns)`` — which must drain everything
        it issued and return the items that failed at the transport level
        — then tears down the failed shards' connections, waits out a
        backoff step (or a route change), re-routes the survivors, and
        goes again until nothing fails or the deadline budget lapses.
        """
        budget = self._budget_ns()
        deadline = self.sim.now + budget if budget > 0 else None
        backoff_ns = max(1, self.client_cfg.retry_backoff_min_us) * 1_000
        backoff_cap_ns = max(1, self.client_cfg.retry_backoff_max_us) * 1_000
        first_failure_ns: Optional[int] = None
        failed_shards: set[Shard] = set()
        while True:
            if self._bucket is not None:
                yield from self._admit(deadline, opname, n=len(items))
            timeout_ns = self.client_cfg.op_timeout_ns
            if deadline is not None:
                timeout_ns = max(1, min(timeout_ns, deadline - self.sim.now))
            self._round_sheds = 0
            self._round_shed_hint = 0
            failed = yield from round_fn(items, timeout_ns)
            if not failed:
                # A retried round that succeeded against a shard that never
                # failed on us is a completed failover (re-routed replay);
                # same-shard success is just a transient absorbed by retry.
                if first_failure_ns is not None and any(
                        item.shard not in failed_shards for item in items):
                    self._c_failovers.add()
                    self.metrics.tally("client.failover_latency_ns").observe(
                        self.sim.now - first_failure_ns)
                return
            if deadline is None:
                # Single-attempt mode must still be *typed*: a round whose
                # every failure was a server shed is throttling, not loss.
                if self._round_sheds == len(failed):
                    raise TenantThrottled(
                        f"{self.client_id}: {opname}: shard shed "
                        f"{len(failed)} of {len(items)} keys for tenant "
                        f"{self.tenant!r}",
                        retry_after_ns=self._round_shed_hint,
                        tenant=self.tenant)
                raise RequestTimeout(
                    f"{self.client_id}: {opname}: {len(failed)} of "
                    f"{len(items)} keys got no response")
            self._c_retries.add(len(failed))
            if first_failure_ns is None:
                first_failure_ns = self.sim.now
            # dict.fromkeys, not a set: teardown order must follow failure
            # order, not id()-hash order, or replay determinism breaks.
            for shard in dict.fromkeys(item.shard for item in failed):
                failed_shards.add(shard)
                self.drop_connection(shard)
            if self.cache is not None:
                for item in failed:
                    self.cache.invalidate(item.key)
            remaining = deadline - self.sim.now
            if remaining <= 0:
                raise ShardUnavailable(
                    f"{self.client_id}: {opname} deadline "
                    f"({self.deadline_us}us) lapsed with {len(failed)} of "
                    f"{len(items)} keys unserved")
            yield from self._backoff(min(backoff_ns, remaining))
            backoff_ns = min(backoff_ns * 2, backoff_cap_ns)
            items = [_ReadItem(it.idx, it.key, self.router.route(it.key))
                     for it in failed]

    def _get_round(self, items: list[_ReadItem],
                   results: list[Optional[bytes]], timeout_ns: int):
        """One multi-GET fan-out round; returns transport-failed items.

        Drains every request it issued before returning — abandoning
        pendings would leak their in-flight slots.  A shard that fails
        once is skipped for the round's remaining items (fail-fast), so
        one dead primary costs one timeout, not one per key.
        """
        msg_pendings: list[tuple[_ReadItem, PendingRequest]] = []
        failed: list[_ReadItem] = []
        dead_shards: set[Shard] = set()
        failure: Optional[BaseException] = None

        def send_message(item: _ReadItem):
            if item.shard in dead_shards:
                failed.append(item)
                return
            try:
                pending = yield from self.issue(
                    item.shard, Request(op=Op.GET, key=item.key), timeout_ns)
            except _RETRYABLE:
                dead_shards.add(item.shard)
                failed.append(item)
                return
            msg_pendings.append((item, pending))

        if self.cache is None:
            for item in items:
                yield from send_message(item)
        else:
            hits, _demoted = yield from self._read_fanout(
                items, on_demote=send_message)
            for idx, value in hits.items():
                results[idx] = value
        for item, pending in msg_pendings:
            try:
                resp = yield from self.wait(pending, timeout_ns)
            except TenantThrottled as exc:
                # Server shed one key of the batch: re-round it (the
                # round backoff covers the retry hint).
                self._round_sheds += 1
                self._round_shed_hint = max(self._round_shed_hint,
                                            exc.retry_after_ns)
                failed.append(item)
                continue
            except _RETRYABLE:
                dead_shards.add(item.shard)
                failed.append(item)
                continue
            if resp.status is Status.OK:
                self._maybe_cache(item.key, resp)
                results[item.idx] = resp.value
            elif resp.status is not Status.NOT_FOUND and failure is None:
                failure = BadStatus(resp.status, f"GET {item.key!r}")
        if failure is not None:
            raise failure
        return failed

    def _put_round(self, items: list[_ReadItem],
                   pairs: list[tuple[bytes, bytes]],
                   statuses: list[Status], timeout_ns: int):
        """One multi-PUT fan-out round; returns transport-failed items."""
        msg_pendings: list[tuple[_ReadItem, PendingRequest]] = []
        failed: list[_ReadItem] = []
        dead_shards: set[Shard] = set()
        for item in items:
            if item.shard in dead_shards:
                failed.append(item)
                continue
            try:
                pending = yield from self.issue(
                    item.shard, Request(op=Op.PUT, key=item.key,
                                        value=pairs[item.idx][1]), timeout_ns)
            except _RETRYABLE:
                dead_shards.add(item.shard)
                failed.append(item)
                continue
            msg_pendings.append((item, pending))
        for item, pending in msg_pendings:
            try:
                resp = yield from self.wait(pending, timeout_ns)
            except TenantThrottled as exc:
                self._round_sheds += 1
                self._round_shed_hint = max(self._round_shed_hint,
                                            exc.retry_after_ns)
                failed.append(item)
                continue
            except _RETRYABLE:
                dead_shards.add(item.shard)
                failed.append(item)
                continue
            if self.cache is not None:
                # Any completed mutation invalidates, as in _mutate.
                self.cache.invalidate(item.key)
            statuses[item.idx] = resp.status
        return failed

    def _tcp_request(self, shard: Shard, req: Request):
        """Kernel-TCP request path (transport == "tcp").

        One attempt bounded by ``client.op_timeout_ns``: resets, truncated
        messages, and silent loss all surface as :class:`RequestTimeout`
        (retryable) after the stale socket is torn down, never as a raw
        transport exception or an unbounded recv.
        """
        req = Request(op=req.op, key=req.key, value=req.value,
                      req_id=next(self._req_ids), tenant=self._wire_tenant)
        self._c_messages.add()
        data = req.encode()
        yield self.sim.timeout(self.cpu.parse_ns)  # marshalling
        conn = self._tcp_conns.get(shard)
        if conn is not None and not conn.open:
            self.drop_connection(shard)
            conn = None
        if conn is None:
            if shard.tcp_port < 0:
                raise ShardUnavailable(
                    f"{shard.shard_id} has no TCP listener "
                    "(is the cluster started?)")
            try:
                conn = yield self.machine.tcp.connect(shard.machine.tcp,
                                                      shard.tcp_port)
            except TcpError as exc:
                raise RequestTimeout(
                    f"{self.client_id}: TCP connect to {shard.shard_id} "
                    f"failed ({exc})") from exc
            self._tcp_conns[shard] = conn
        deadline = self.sim.now + self.client_cfg.op_timeout_ns
        try:
            yield conn.send(data, req.wire_len + 40)
        except TcpError as exc:
            self.drop_connection(shard)
            raise RequestTimeout(
                f"{self.client_id}: TCP send to {shard.shard_id} "
                f"failed ({exc})") from exc
        while True:
            remaining = deadline - self.sim.now
            if remaining <= 0 or not conn.open:
                self.drop_connection(shard)
                raise RequestTimeout(
                    f"{self.client_id}: no TCP response from "
                    f"{shard.shard_id}")
            recv_ev = conn.recv()
            yield self.sim.any_of([recv_ev, self.sim.timeout(remaining)])
            if not recv_ev.triggered:
                # Timed out: the response is lost (reset, short read on
                # the request, gray shard).  Abandon the socket — a late
                # response must not be matched to a future request.
                self.drop_connection(shard)
                raise RequestTimeout(
                    f"{self.client_id}: no TCP response from "
                    f"{shard.shard_id}")
            payload, _n = recv_ev.value
            try:
                resp = Response.decode(payload)
            except (ValueError, KeyError):
                # Truncated/garbled message (injected short read): drop
                # it and keep reading until the deadline.
                self._c_stale.add()
                continue
            if resp.req_id == req.req_id:
                return resp
            # A stale response from a previously timed-out request on this
            # socket: discard and keep reading instead of raising.
            self._c_stale.add()
