"""Public facade: build and drive a HydraDB cluster in one object.

Quickstart::

    from repro import HydraCluster

    cluster = HydraCluster(n_server_machines=1, shards_per_server=4,
                           n_client_machines=1)
    cluster.start()
    client = cluster.client()

    def app():
        yield from client.put(b"user:1", b"Ada")
        value = yield from client.get(b"user:1")
        assert value == b"Ada"

    cluster.run(app())

The cluster owns the simulator, fabric, machines, servers, the consistent-
hashing ring, and the routing table that maps ring entries to the shard
objects currently serving them (updated by SWAT on failover).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Generator, Optional

from ..config import QosConfig, SimConfig
from ..hardware import Machine
from ..qos import TokenBucket
from ..rdma import Fabric, TcpNetwork
from ..sim import Gate, MetricSet, Simulator
from .client import ClientTransport, HydraClient
from .errors import LifecycleError
from .ring import HashRing
from .rptr import RptrCache
from .server import HydraServer
from .shard import Shard

__all__ = ["HydraCluster", "RoutingTable"]


class RoutingTable:
    """shard-id -> live Shard object; the SWAT failover path swaps entries.

    The table is *versioned*: every swap of an already-routed entry bumps
    ``generation``, so clients can detect staleness with one integer
    compare instead of re-resolving every key.  When built with a
    simulator, ``route_change`` is a broadcast :class:`~repro.sim.Gate`
    fired on each swap — a retrying client blocks on it to pick up a SWAT
    promotion the instant the route is republished rather than sleeping
    out its whole backoff.
    """

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self._map: dict[str, Shard] = {}
        #: Bumped on every entry *swap* (not on initial installs).
        self.generation = 0
        #: Fires on every swap (None when built without a simulator).
        self.route_change: Optional[Gate] = (
            Gate(sim) if sim is not None else None)
        #: Shard ids currently mid full-crash recovery (durable-log
        #: replay): clients surface RecoveryInProgress for these rather
        #: than a generic ShardUnavailable when their deadline lapses.
        self._recovering: set[str] = set()

    def set(self, shard_id: str, shard: Shard) -> None:
        """Install/replace the shard serving ``shard_id``.

        Replacing a routed entry with a different shard object is a
        *swap* (SWAT promotion): the generation counter advances and the
        change gate fires.
        """
        prev = self._map.get(shard_id)
        self._map[shard_id] = shard
        if prev is not None and prev is not shard:
            self.generation += 1
            if self.route_change is not None:
                self.route_change.fire(shard_id)

    def resolve(self, shard_id: str) -> Shard:
        """The live shard currently serving ``shard_id``."""
        return self._map[shard_id]

    def shard_ids(self) -> list[str]:
        """Every routable shard id."""
        return list(self._map)

    def live_shards(self) -> list[Shard]:
        """Every currently routed shard object."""
        return list(self._map.values())

    # -- recovery markers ---------------------------------------------------
    def mark_recovering(self, shard_id: str) -> None:
        self._recovering.add(shard_id)

    def clear_recovering(self, shard_id: str) -> None:
        self._recovering.discard(shard_id)

    def is_recovering(self, shard_id: str) -> bool:
        """True while ``shard_id`` is being rebuilt from its durable log."""
        return shard_id in self._recovering


class HydraCluster:
    """A complete HydraDB deployment plus its client machines."""

    def __init__(self, config: Optional[SimConfig] = None,
                 n_server_machines: int = 1, shards_per_server: int = 4,
                 n_client_machines: int = 1,
                 table_kind: str = "compact", numa_mode: str = "local",
                 scribble_on_reclaim: bool = False,
                 cores_per_numa: int = 8,
                 sim: Optional[Simulator] = None):
        self.config = config or SimConfig()
        self.sim = sim or Simulator()
        self.metrics = MetricSet(self.sim)
        self.fabric = Fabric(self.sim, self.config, metrics=self.metrics)
        self.tcpnet = TcpNetwork(self.sim, self.config)
        self.server_machines: list[Machine] = []
        self.client_machines: list[Machine] = []
        self.servers: list[HydraServer] = []
        self.ring = HashRing()
        self.routing = RoutingTable(self.sim)
        self._machine_counter = 0
        #: Per-client-machine shared remote-pointer caches (§4.2.4).
        self._shared_caches: dict[int, RptrCache] = {}
        #: Per-machine shared connection transports for tenant-scoped
        #: handles (tenants on one machine share connections so fair
        #: queueing arbitrates real contention).
        self._transports: dict[int, ClientTransport] = {}
        #: Per-tenant admission buckets (``qos.rate_ops``), first handle
        #: wins — every handle of one tenant drains one budget.
        self._tenant_buckets: dict[str, Optional[TokenBucket]] = {}
        self._started = False
        for _ in range(n_server_machines):
            machine = self._new_machine(cores_per_numa)
            self.server_machines.append(machine)
            server = HydraServer(
                self.sim, self.config, machine,
                server_id=f"s{len(self.servers)}",
                n_shards=shards_per_server, metrics=self.metrics,
                table_kind=table_kind, numa_mode=numa_mode,
                scribble_on_reclaim=scribble_on_reclaim,
            )
            self.servers.append(server)
            for shard in server.shards:
                self.ring.add(shard.shard_id)
                self.routing.set(shard.shard_id, shard)
        for _ in range(n_client_machines):
            self.client_machines.append(self._new_machine(cores_per_numa))
        #: Replication state (populated when config.replication.replicas > 0):
        #: dedicated replica machines, per-primary replicators/secondaries.
        self.replica_machines: list[Machine] = []
        self.replicators: dict[str, object] = {}
        self.secondaries: dict[str, list] = {}
        if self.config.replication.replicas > 0:
            self._wire_replication(cores_per_numa)
        #: Durable tier (populated when config.durability.enabled): the
        #: cluster — not the shard — owns each shard's PM device, so its
        #: contents survive shard/server death for full-crash recovery.
        self._cores_per_numa = cores_per_numa
        self.durable_devices: dict[str, object] = {}
        self.durable_logs: dict[str, object] = {}
        if self.config.durability.enabled:
            self._wire_durability()

    def _wire_replication(self, cores_per_numa: int) -> None:
        from ..replication import LogReplicator, SecondaryShard

        replicas = self.config.replication.replicas
        for _ in range(replicas):
            self.replica_machines.append(self._new_machine(cores_per_numa))
        for server in self.servers:
            for shard in server.shards:
                replicator = LogReplicator(self.sim, self.config, shard,
                                           metrics=self.metrics)
                secs = []
                for k in range(replicas):
                    machine = self.replica_machines[k]
                    sec_id = f"{shard.shard_id}.r{k}"
                    core = machine.allocate_core(sec_id)
                    sec = SecondaryShard(self.sim, self.config, sec_id,
                                         machine, core, metrics=self.metrics)
                    replicator.add_secondary(sec)
                    secs.append(sec)
                self.replicators[shard.shard_id] = replicator
                self.secondaries[shard.shard_id] = secs

    def _wire_durability(self) -> None:
        from ..durable import DurableLog, PMDevice

        dur = self.config.durability
        for server in self.servers:
            for shard in server.shards:
                device = PMDevice(self.sim, dur.log_bytes,
                                  write_latency_ns=dur.pm_write_latency_ns,
                                  bandwidth_bpns=dur.pm_bandwidth_bpns,
                                  name=f"{shard.shard_id}.pm")
                dlog = DurableLog(self.sim, self.config, device,
                                  metrics=self.metrics,
                                  name=f"{shard.shard_id}.dlog")
                shard.durable = dlog
                self.durable_devices[shard.shard_id] = device
                self.durable_logs[shard.shard_id] = dlog

    def _new_machine(self, cores_per_numa: int) -> Machine:
        machine = Machine(self.sim, self._machine_counter, self.config,
                          cores_per_numa=cores_per_numa)
        self._machine_counter += 1
        self.fabric.attach(machine)
        self.tcpnet.attach(machine)
        return machine

    # -- router protocol (used by HydraClient) -----------------------------
    def route(self, key: bytes) -> Shard:
        """The shard owning ``key`` (ring lookup + routing table)."""
        from ..index.hashing import hash64
        return self.routing.resolve(self.ring.owner(hash64(key)))

    def shards(self) -> list[Shard]:
        """All live shards, in ring-member order."""
        return [self.routing.resolve(sid) for sid in self.ring.members]

    def key_recovering(self, key: bytes) -> bool:
        """True while the shard owning ``key`` is replaying its log."""
        from ..index.hashing import hash64
        return self.routing.is_recovering(self.ring.owner(hash64(key)))

    @property
    def generation(self) -> int:
        """Routing-table generation (bumped on every SWAT swap)."""
        return self.routing.generation

    @property
    def route_change(self):
        """Broadcast gate fired whenever a route is swapped."""
        return self.routing.route_change

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Launch every shard (and secondary) process."""
        if self._started:
            raise LifecycleError("cluster already started")
        self._started = True
        for server in self.servers:
            server.start()
        for secs in self.secondaries.values():
            for sec in secs:
                sec.start()
        for dlog in self.durable_logs.values():
            if not dlog.alive:
                dlog.start()

    def stop(self) -> None:
        """Cleanly halt every shard, secondary, and reclaimer process.

        Idempotent; unlike a failure injection (``server.kill()``) the
        NICs stay up, so a stopped cluster's simulator can keep running
        other processes.  Used by the context-manager protocol.
        """
        for server in self.servers:
            for shard in server.shards:
                if shard.alive:
                    shard.kill()
        for secs in self.secondaries.values():
            for sec in secs:
                sec.kill()
        self._started = False

    def __enter__(self) -> "HydraCluster":
        """``with HydraCluster(...) as cluster:`` starts the cluster."""
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Leaving the ``with`` block stops every cluster process."""
        self.stop()

    def run(self, *processes: Generator, until=None):
        """Spawn processes and run the simulation until they all finish."""
        procs = [self.sim.process(p) for p in processes]
        if until is not None:
            return self.sim.run(until=until)
        if len(procs) == 1:
            return self.sim.run(until=procs[0])
        return self.sim.run(until=self.sim.all_of(procs))

    # -- full-crash recovery ------------------------------------------------
    def recover_shard(self, shard_id: str):
        """Rebuild a shard from its durable log after a correlated crash.

        Generator (driven by a SWAT leader, or directly in tests);
        returns the fresh primary.  The sequence:

        1. mark the route *recovering* (clients raise RecoveryInProgress
           instead of plain ShardUnavailable while their deadlines lapse),
        2. scan the PM device — guardian-validate every frame, truncate a
           torn tail, stop (loudly) on mid-log corruption,
        3. replay the validated records into a fresh store in log order
           (force-applied versions make double replay idempotent),
        4. salvage any contiguous unmerged suffix from surviving
           secondary rings, ``promote_drain()``-style,
        5. restart the durable log on the same device past the validated
           tail, start the shard (its index re-exports as the store is
           already populated), and swap the route — the generation bump
           fires ``route_change`` so failover-aware clients replay
           through the recovered primary.
        """
        from ..durable import (DurableLog, LOG_BASE, read_watermark,
                               replay_into, scan_log)

        device = self.durable_devices[shard_id]
        old_log = self.durable_logs.get(shard_id)
        if old_log is not None:
            old_log.crash()  # idempotent if the shard's kill() already ran
        self.routing.mark_recovering(shard_id)
        t0 = self.sim.now
        m = self.metrics
        try:
            machine = self._new_machine(self._cores_per_numa)
            self.server_machines.append(machine)
            core = machine.allocate_core(shard_id)
            shard = Shard(self.sim, self.config, shard_id, machine, core,
                          metrics=m)
            scan = scan_log(device)
            valid_end = LOG_BASE + scan.valid_bytes
            if scan.torn_bytes:
                m.counter("durable.torn_truncated_bytes").add(
                    scan.torn_bytes)
                device.zero(valid_end, max(0, device.hiwater - valid_end))
            if scan.guardian_mismatches:
                m.counter("durable.guardian_mismatches").add(
                    scan.guardian_mismatches)
            replayed = yield from replay_into(self.sim, device, scan,
                                              shard.store, self.config)
            for sec in self.secondaries.get(shard_id, []):
                self._salvage_ring(sec, shard.store)
            _seq, epoch = read_watermark(device)
            dlog = DurableLog(self.sim, self.config, device, metrics=m,
                              name=f"{shard_id}.dlog",
                              start_seq=scan.next_seq, tail=valid_end,
                              wm_epoch=epoch)
            shard.durable = dlog
            self.durable_logs[shard_id] = dlog
            dlog.start()
            # The replication fan-out died with the correlated crash; the
            # durable log alone carries the shard until re-provisioning.
            self.replicators.pop(shard_id, None)
            self.secondaries[shard_id] = []
            shard.start()
            self.routing.set(shard_id, shard)
            m.counter("durable.recoveries").add()
            m.counter("durable.replayed").add(replayed)
            m.tally("durable.recovery_ns").observe(self.sim.now - t0)
            return shard
        finally:
            self.routing.clear_recovering(shard_id)

    def _salvage_ring(self, sec, store) -> int:
        """Drain a surviving secondary ring's unmerged suffix into a
        recovering store, ``promote_drain()``-style: contiguous records
        only, stopping at the first sequence gap.  A secondary stopped on
        a merge fault (``failing``) contributes nothing — its failed-seq
        records were never acknowledged and must not be resurrected.
        Suffix records that the log replay already covered are skipped by
        the version guard (PUTs) or degrade to no-op removes (DELETEs).
        """
        from ..protocol import Op
        from ..replication.log import LogRecord, RecordType

        applied = 0
        while not sec.failing:
            payload = sec.reader.poll()
            if payload is None:
                break
            record = LogRecord.decode(payload)
            if record.rtype is RecordType.ACK_REQUEST:
                continue
            if record.seq != sec.applied_seq + 1:
                break
            sec.applied_seq = record.seq
            if (record.op is not Op.DELETE
                    and record.version <= store.get(record.key).version):
                continue
            store.apply(record.op, record.key, record.value,
                        version=record.version)
            applied += 1
        if applied:
            self.metrics.counter("durable.salvaged").add(applied)
        return applied

    def enable_ha(self, n_swat: int = 3):
        """Attach the ZooKeeper + SWAT control plane (call before start())."""
        from ..coord import HaControl
        self.ha = HaControl(self, n_swat=n_swat)
        self.ha.start()
        return self.ha

    # -- clients ---------------------------------------------------------
    def client(self, machine_index: int = 0, connect: bool = True,
               deadline_us: Optional[int] = None, tenant: str = "default",
               qos: Optional[QosConfig] = None,
               share_transport: bool = False) -> HydraClient:
        """Create a client handle on the i-th client machine.

        ``deadline_us`` overrides ``client.op_deadline_us`` for this
        handle only (0 = single-attempt mode, no retries).

        ``tenant``/``qos`` scope the handle to a named tenant with a
        traffic-engineering policy: tenant handles on one machine share
        the machine's connections, with token-bucket admission
        (``qos.rate_ops``), DRR-fair slot queueing
        (``qos.fair_queueing``), and AIMD window autotuning
        (``qos.autotune``) per the policy.  A named tenant without an
        explicit ``qos`` inherits a copy of the cluster-wide
        ``config.qos``.  The default ``tenant="default"`` with no ``qos``
        is bit-for-bit the pre-tenant client.

        ``share_transport`` makes default-tenant handles on one machine
        share that machine's connections/QPs too (as the paper's client
        processes share their host NIC's QP state).  Large-scale benches
        use this: thousands of closed-loop clients would otherwise mean
        thousands of connections *per shard*.
        """
        machine = self.client_machines[machine_index]
        return self.client_on(machine, connect=connect,
                              deadline_us=deadline_us, tenant=tenant,
                              qos=qos, share_transport=share_transport)

    def client_on(self, machine: Machine, connect: bool = True,
                  deadline_us: Optional[int] = None,
                  tenant: str = "default",
                  qos: Optional[QosConfig] = None,
                  share_transport: bool = False) -> HydraClient:
        """Create a client on an arbitrary machine (co-location allowed)."""
        cache = None
        if (self.config.client.rptr_cache_enabled
                and self.config.client.rptr_sharing):
            cache = self._shared_caches.get(machine.machine_id)
            if cache is None:
                cache = RptrCache(self.config.client.rptr_cache_entries)
                self._shared_caches[machine.machine_id] = cache
            else:
                cache.add_sharer()
        if qos is None and tenant != "default":
            qos = replace(self.config.qos)
        shared = None
        bucket = None
        if qos is not None or share_transport:
            # Tenant handles on one machine share one transport: the same
            # physical connections, slots, and windows — the contention
            # the QoS layer arbitrates.  ``share_transport`` opts plain
            # handles into the same sharing (QP-state economy at scale).
            shared = self._transports.get(machine.machine_id)
            if shared is None:
                shared = self._transports[machine.machine_id] = (
                    ClientTransport())
        if qos is not None:
            bucket = self._bucket_for(tenant, qos)
        client = HydraClient(self.sim, self.config, machine, router=self,
                             metrics=self.metrics, rptr_cache=cache,
                             deadline_us=deadline_us, tenant=tenant,
                             qos=qos, shared=shared, bucket=bucket)
        if connect:
            client.connect_all()
        return client

    def _bucket_for(self, tenant: str,
                    qos: QosConfig) -> Optional[TokenBucket]:
        """The tenant's shared admission bucket (first policy wins; None
        when the tenant is unthrottled, ``qos.rate_ops <= 0``)."""
        if tenant in self._tenant_buckets:
            return self._tenant_buckets[tenant]
        bucket = (TokenBucket(qos.rate_ops, qos.burst, now_ns=self.sim.now)
                  if qos.rate_ops > 0 else None)
        self._tenant_buckets[tenant] = bucket
        return bucket

    def rptr_stats(self) -> dict[str, int]:
        """Aggregate remote-pointer cache counters across shared caches."""
        agg = {"successful_hits": 0, "invalid_hits": 0, "expired": 0,
               "misses": 0, "entries": 0, "evictions": 0,
               "batches": 0, "batch_keys": 0, "batch_hits": 0}
        for cache in self._shared_caches.values():
            for k, v in cache.stats().items():
                agg[k] = agg.get(k, 0) + v
        return agg
