"""Public facade: build and drive a HydraDB cluster in one object.

Quickstart::

    from repro import HydraCluster

    cluster = HydraCluster(n_server_machines=1, shards_per_server=4,
                           n_client_machines=1)
    cluster.start()
    client = cluster.client()

    def app():
        yield from client.put(b"user:1", b"Ada")
        value = yield from client.get(b"user:1")
        assert value == b"Ada"

    cluster.run(app())

The cluster owns the simulator, fabric, machines, servers, the consistent-
hashing ring, and the routing table that maps ring entries to the shard
objects currently serving them (updated by SWAT on failover).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Generator, Optional

from ..config import QosConfig, SimConfig
from ..hardware import Machine
from ..qos import TokenBucket
from ..rdma import Fabric, TcpNetwork
from ..sim import Gate, MetricSet, Simulator
from .client import ClientTransport, HydraClient
from .errors import LifecycleError
from .ring import HashRing
from .rptr import RptrCache
from .server import HydraServer
from .shard import Shard

__all__ = ["HydraCluster", "RoutingTable"]


class RoutingTable:
    """shard-id -> live Shard object; the SWAT failover path swaps entries.

    The table is *versioned*: every swap of an already-routed entry bumps
    ``generation``, so clients can detect staleness with one integer
    compare instead of re-resolving every key.  When built with a
    simulator, ``route_change`` is a broadcast :class:`~repro.sim.Gate`
    fired on each swap — a retrying client blocks on it to pick up a SWAT
    promotion the instant the route is republished rather than sleeping
    out its whole backoff.
    """

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self._map: dict[str, Shard] = {}
        #: Bumped on every entry *swap* (not on initial installs).
        self.generation = 0
        #: Fires on every swap (None when built without a simulator).
        self.route_change: Optional[Gate] = (
            Gate(sim) if sim is not None else None)

    def set(self, shard_id: str, shard: Shard) -> None:
        """Install/replace the shard serving ``shard_id``.

        Replacing a routed entry with a different shard object is a
        *swap* (SWAT promotion): the generation counter advances and the
        change gate fires.
        """
        prev = self._map.get(shard_id)
        self._map[shard_id] = shard
        if prev is not None and prev is not shard:
            self.generation += 1
            if self.route_change is not None:
                self.route_change.fire(shard_id)

    def resolve(self, shard_id: str) -> Shard:
        """The live shard currently serving ``shard_id``."""
        return self._map[shard_id]

    def shard_ids(self) -> list[str]:
        """Every routable shard id."""
        return list(self._map)

    def live_shards(self) -> list[Shard]:
        """Every currently routed shard object."""
        return list(self._map.values())


class HydraCluster:
    """A complete HydraDB deployment plus its client machines."""

    def __init__(self, config: Optional[SimConfig] = None,
                 n_server_machines: int = 1, shards_per_server: int = 4,
                 n_client_machines: int = 1,
                 table_kind: str = "compact", numa_mode: str = "local",
                 scribble_on_reclaim: bool = False,
                 cores_per_numa: int = 8,
                 sim: Optional[Simulator] = None):
        self.config = config or SimConfig()
        self.sim = sim or Simulator()
        self.metrics = MetricSet(self.sim)
        self.fabric = Fabric(self.sim, self.config, metrics=self.metrics)
        self.tcpnet = TcpNetwork(self.sim, self.config)
        self.server_machines: list[Machine] = []
        self.client_machines: list[Machine] = []
        self.servers: list[HydraServer] = []
        self.ring = HashRing()
        self.routing = RoutingTable(self.sim)
        self._machine_counter = 0
        #: Per-client-machine shared remote-pointer caches (§4.2.4).
        self._shared_caches: dict[int, RptrCache] = {}
        #: Per-machine shared connection transports for tenant-scoped
        #: handles (tenants on one machine share connections so fair
        #: queueing arbitrates real contention).
        self._transports: dict[int, ClientTransport] = {}
        #: Per-tenant admission buckets (``qos.rate_ops``), first handle
        #: wins — every handle of one tenant drains one budget.
        self._tenant_buckets: dict[str, Optional[TokenBucket]] = {}
        self._started = False
        for _ in range(n_server_machines):
            machine = self._new_machine(cores_per_numa)
            self.server_machines.append(machine)
            server = HydraServer(
                self.sim, self.config, machine,
                server_id=f"s{len(self.servers)}",
                n_shards=shards_per_server, metrics=self.metrics,
                table_kind=table_kind, numa_mode=numa_mode,
                scribble_on_reclaim=scribble_on_reclaim,
            )
            self.servers.append(server)
            for shard in server.shards:
                self.ring.add(shard.shard_id)
                self.routing.set(shard.shard_id, shard)
        for _ in range(n_client_machines):
            self.client_machines.append(self._new_machine(cores_per_numa))
        #: Replication state (populated when config.replication.replicas > 0):
        #: dedicated replica machines, per-primary replicators/secondaries.
        self.replica_machines: list[Machine] = []
        self.replicators: dict[str, object] = {}
        self.secondaries: dict[str, list] = {}
        if self.config.replication.replicas > 0:
            self._wire_replication(cores_per_numa)

    def _wire_replication(self, cores_per_numa: int) -> None:
        from ..replication import LogReplicator, SecondaryShard

        replicas = self.config.replication.replicas
        for _ in range(replicas):
            self.replica_machines.append(self._new_machine(cores_per_numa))
        for server in self.servers:
            for shard in server.shards:
                replicator = LogReplicator(self.sim, self.config, shard,
                                           metrics=self.metrics)
                secs = []
                for k in range(replicas):
                    machine = self.replica_machines[k]
                    sec_id = f"{shard.shard_id}.r{k}"
                    core = machine.allocate_core(sec_id)
                    sec = SecondaryShard(self.sim, self.config, sec_id,
                                         machine, core, metrics=self.metrics)
                    replicator.add_secondary(sec)
                    secs.append(sec)
                self.replicators[shard.shard_id] = replicator
                self.secondaries[shard.shard_id] = secs

    def _new_machine(self, cores_per_numa: int) -> Machine:
        machine = Machine(self.sim, self._machine_counter, self.config,
                          cores_per_numa=cores_per_numa)
        self._machine_counter += 1
        self.fabric.attach(machine)
        self.tcpnet.attach(machine)
        return machine

    # -- router protocol (used by HydraClient) -----------------------------
    def route(self, key: bytes) -> Shard:
        """The shard owning ``key`` (ring lookup + routing table)."""
        from ..index.hashing import hash64
        return self.routing.resolve(self.ring.owner(hash64(key)))

    def shards(self) -> list[Shard]:
        """All live shards, in ring-member order."""
        return [self.routing.resolve(sid) for sid in self.ring.members]

    @property
    def generation(self) -> int:
        """Routing-table generation (bumped on every SWAT swap)."""
        return self.routing.generation

    @property
    def route_change(self):
        """Broadcast gate fired whenever a route is swapped."""
        return self.routing.route_change

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Launch every shard (and secondary) process."""
        if self._started:
            raise LifecycleError("cluster already started")
        self._started = True
        for server in self.servers:
            server.start()
        for secs in self.secondaries.values():
            for sec in secs:
                sec.start()

    def stop(self) -> None:
        """Cleanly halt every shard, secondary, and reclaimer process.

        Idempotent; unlike a failure injection (``server.kill()``) the
        NICs stay up, so a stopped cluster's simulator can keep running
        other processes.  Used by the context-manager protocol.
        """
        for server in self.servers:
            for shard in server.shards:
                if shard.alive:
                    shard.kill()
        for secs in self.secondaries.values():
            for sec in secs:
                sec.kill()
        self._started = False

    def __enter__(self) -> "HydraCluster":
        """``with HydraCluster(...) as cluster:`` starts the cluster."""
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Leaving the ``with`` block stops every cluster process."""
        self.stop()

    def run(self, *processes: Generator, until=None):
        """Spawn processes and run the simulation until they all finish."""
        procs = [self.sim.process(p) for p in processes]
        if until is not None:
            return self.sim.run(until=until)
        if len(procs) == 1:
            return self.sim.run(until=procs[0])
        return self.sim.run(until=self.sim.all_of(procs))

    def enable_ha(self, n_swat: int = 3):
        """Attach the ZooKeeper + SWAT control plane (call before start())."""
        from ..coord import HaControl
        self.ha = HaControl(self, n_swat=n_swat)
        self.ha.start()
        return self.ha

    # -- clients ---------------------------------------------------------
    def client(self, machine_index: int = 0, connect: bool = True,
               deadline_us: Optional[int] = None, tenant: str = "default",
               qos: Optional[QosConfig] = None,
               share_transport: bool = False) -> HydraClient:
        """Create a client handle on the i-th client machine.

        ``deadline_us`` overrides ``client.op_deadline_us`` for this
        handle only (0 = single-attempt mode, no retries).

        ``tenant``/``qos`` scope the handle to a named tenant with a
        traffic-engineering policy: tenant handles on one machine share
        the machine's connections, with token-bucket admission
        (``qos.rate_ops``), DRR-fair slot queueing
        (``qos.fair_queueing``), and AIMD window autotuning
        (``qos.autotune``) per the policy.  A named tenant without an
        explicit ``qos`` inherits a copy of the cluster-wide
        ``config.qos``.  The default ``tenant="default"`` with no ``qos``
        is bit-for-bit the pre-tenant client.

        ``share_transport`` makes default-tenant handles on one machine
        share that machine's connections/QPs too (as the paper's client
        processes share their host NIC's QP state).  Large-scale benches
        use this: thousands of closed-loop clients would otherwise mean
        thousands of connections *per shard*.
        """
        machine = self.client_machines[machine_index]
        return self.client_on(machine, connect=connect,
                              deadline_us=deadline_us, tenant=tenant,
                              qos=qos, share_transport=share_transport)

    def client_on(self, machine: Machine, connect: bool = True,
                  deadline_us: Optional[int] = None,
                  tenant: str = "default",
                  qos: Optional[QosConfig] = None,
                  share_transport: bool = False) -> HydraClient:
        """Create a client on an arbitrary machine (co-location allowed)."""
        cache = None
        if (self.config.client.rptr_cache_enabled
                and self.config.client.rptr_sharing):
            cache = self._shared_caches.get(machine.machine_id)
            if cache is None:
                cache = RptrCache(self.config.client.rptr_cache_entries)
                self._shared_caches[machine.machine_id] = cache
            else:
                cache.add_sharer()
        if qos is None and tenant != "default":
            qos = replace(self.config.qos)
        shared = None
        bucket = None
        if qos is not None or share_transport:
            # Tenant handles on one machine share one transport: the same
            # physical connections, slots, and windows — the contention
            # the QoS layer arbitrates.  ``share_transport`` opts plain
            # handles into the same sharing (QP-state economy at scale).
            shared = self._transports.get(machine.machine_id)
            if shared is None:
                shared = self._transports[machine.machine_id] = (
                    ClientTransport())
        if qos is not None:
            bucket = self._bucket_for(tenant, qos)
        client = HydraClient(self.sim, self.config, machine, router=self,
                             metrics=self.metrics, rptr_cache=cache,
                             deadline_us=deadline_us, tenant=tenant,
                             qos=qos, shared=shared, bucket=bucket)
        if connect:
            client.connect_all()
        return client

    def _bucket_for(self, tenant: str,
                    qos: QosConfig) -> Optional[TokenBucket]:
        """The tenant's shared admission bucket (first policy wins; None
        when the tenant is unthrottled, ``qos.rate_ops <= 0``)."""
        if tenant in self._tenant_buckets:
            return self._tenant_buckets[tenant]
        bucket = (TokenBucket(qos.rate_ops, qos.burst, now_ns=self.sim.now)
                  if qos.rate_ops > 0 else None)
        self._tenant_buckets[tenant] = bucket
        return bucket

    def rptr_stats(self) -> dict[str, int]:
        """Aggregate remote-pointer cache counters across shared caches."""
        agg = {"successful_hits": 0, "invalid_hits": 0, "expired": 0,
               "misses": 0, "entries": 0, "evictions": 0,
               "batches": 0, "batch_keys": 0, "batch_hits": 0}
        for cache in self._shared_caches.values():
            for k, v in cache.stats().items():
                agg[k] = agg.get(k, 0) + v
        return agg
