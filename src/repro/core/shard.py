"""The shard: HydraDB's single-threaded server-side execution unit (§4.1.1).

One shard = one pinned core + one exclusively-owned :class:`ShardStore`.
The thread does *everything*: it sweeps its per-connection request buffers
(or receive CQs in the Send/Recv ablation mode), executes the operation
against the store, replicates mutations, and RDMA-Writes the response —
no hand-offs, no locks, no context switches.

Polling model: requests are detected by sustained polling with the
indicator format.  After ``idle_polls_before_sleep`` empty sweeps the
thread enters high-resolution sleep (§4.2.1); in the simulator the sleep
phase blocks on a doorbell and charges half a sleep quantum of detection
latency on wake-up, so the latency/CPU trade-off of the real design is
preserved without simulating dead sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from ..config import SimConfig
from ..hardware import Core, Machine
from ..protocol import (
    Op,
    Request,
    Response,
    SlotLayout,
    Status,
    clear,
    consume,
    frame,
    frame_len,
)
from ..rdma import MemoryRegion, Nic, QpError, QueuePair, RemotePointer
from ..sim import Gate, MetricSet, Interrupt, Simulator, Store
from .errors import LifecycleError
from .store import ShardStore, StoreResult

__all__ = ["Shard", "Connection", "WRITE_OPS"]

WRITE_OPS = frozenset({Op.PUT, Op.INSERT, Op.UPDATE, Op.DELETE})
_conn_ids = count(1)


@dataclass
class Connection:
    """One client<->shard link: QP pair + the two slotted message buffers."""

    conn_id: int
    shard_qp: QueuePair
    client_qp: QueuePair
    #: Request buffer: lives on the server, written by the client.
    req_region: MemoryRegion
    req_rptr: RemotePointer
    #: Response buffer: lives on the client, written by the shard.
    resp_region: MemoryRegion
    resp_rptr: RemotePointer
    #: Client-side doorbell (fires on response-buffer writes / CQ pushes).
    client_doorbell: Gate = field(repr=False, default=None)  # type: ignore[assignment]
    #: Slot partition shared by both buffers (slot i of the request buffer
    #: pairs with slot i of the response buffer).
    layout: SlotLayout = field(repr=False, default=None)  # type: ignore[assignment]
    #: Per-slot write capabilities (client-held for requests, shard-held
    #: for responses).
    req_slot_rptrs: list[RemotePointer] = field(repr=False,
                                                default_factory=list)
    resp_slot_rptrs: list[RemotePointer] = field(repr=False,
                                                 default_factory=list)

    @property
    def n_slots(self) -> int:
        return self.layout.n_slots if self.layout is not None else 1

    def close(self) -> None:
        self.shard_qp.destroy()
        self.client_qp.destroy()


class Shard:
    """A primary shard process."""

    def __init__(self, sim: Simulator, config: SimConfig, shard_id: str,
                 machine: Machine, core: Core,
                 metrics: Optional[MetricSet] = None,
                 table_kind: str = "compact", numa_mode: str = "local",
                 scribble_on_reclaim: bool = False,
                 store: Optional[ShardStore] = None):
        self.sim = sim
        self.config = config
        self.hydra = config.hydra
        self.cpu = config.cpu
        self.shard_id = shard_id
        self.machine = machine
        self.nic: Nic = machine.nic
        self.core = core
        self.metrics = metrics or MetricSet(sim)
        self.store = store or ShardStore(
            sim, config, self.nic, core.numa_domain, shard_id,
            table_kind=table_kind, numa_mode=numa_mode,
            scribble_on_reclaim=scribble_on_reclaim,
        )
        self.conns: list[Connection] = []
        self.doorbell = Gate(sim)
        #: TCP-mode state (transport == "tcp"): epoll-style ready queue.
        self.tcp_port: int = -1
        self._tcp_ready = Store(sim)
        self._tcp_conns: list = []
        #: Replication hook; installed by the HA wiring (repro.replication).
        self.replicator = None
        self.alive = False
        self._proc = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self.alive:
            raise LifecycleError(f"{self.shard_id} already running")
        self.alive = True
        if self.hydra.transport == "tcp":
            stack = self.machine.tcp
            port = 7100
            while port in stack.listeners:
                port += 1
            self.tcp_port = port
            listener = stack.listen(port)
            self.sim.process(self._tcp_acceptor(listener),
                             name=f"{self.shard_id}.accept")
        self._proc = self.sim.process(self._run(), name=self.shard_id)
        if self.store.reclaimer._proc is None:
            self.store.reclaimer.start()

    def kill(self) -> None:
        """Crash the shard process (failure injection)."""
        self.alive = False
        self.store.reclaimer.stop()
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("killed")

    def store_for_key(self, key: bytes) -> ShardStore:
        """The store an out-of-band loader should install ``key`` into
        (sub-sharded instances override to route by key hash)."""
        return self.store

    # -- connection setup ------------------------------------------------
    def connect(self, client_nic: Nic,
                client_numa_domain: int = 0) -> Connection:
        """Establish a client connection (QP pair + slotted buffers).

        ``client_numa_domain`` places the response buffer on the *client*
        machine's memory — the request buffer lives on the shard's NUMA
        domain, the response buffer on the connecting client's, so both
        pollers pay consistent local-access costs.
        """
        fabric = self.nic.fabric
        client_qp, shard_qp = fabric.connect(client_nic, self.nic)
        buf = self.hydra.conn_buf_bytes
        layout = SlotLayout(buf, self.hydra.msg_slots_per_conn)
        req_region = MemoryRegion(buf, numa_domain=self.core.numa_domain,
                                  name=f"{self.shard_id}.req")
        self.nic.register(req_region)
        resp_region = MemoryRegion(buf, numa_domain=client_numa_domain,
                                   name=f"{self.shard_id}.resp")
        client_nic.register(resp_region)
        conn = Connection(
            conn_id=next(_conn_ids),
            shard_qp=shard_qp,
            client_qp=client_qp,
            req_region=req_region,
            req_rptr=RemotePointer(req_region.rkey, 0, buf),
            resp_region=resp_region,
            resp_rptr=RemotePointer(resp_region.rkey, 0, buf),
            client_doorbell=Gate(self.sim),
            layout=layout,
            req_slot_rptrs=[
                RemotePointer(req_region.rkey, layout.offset(i),
                              layout.slot_bytes)
                for i in range(layout.n_slots)],
            resp_slot_rptrs=[
                RemotePointer(resp_region.rkey, layout.offset(i),
                              layout.slot_bytes)
                for i in range(layout.n_slots)],
        )
        if self.hydra.rdma_write_messaging:
            req_region.subscribe(lambda _r: self.doorbell.fire())
            resp_region.subscribe(lambda _r, c=conn: c.client_doorbell.fire())
        else:
            # Two-sided mode: pre-post receives, doorbell on CQ pushes.
            for _ in range(max(16, self.hydra.max_inflight_per_conn)):
                shard_qp.post_recv()
            shard_qp.recv_cq.on_push.append(lambda _cq: self.doorbell.fire())
            client_qp.recv_cq.on_push.append(
                lambda _cq, c=conn: c.client_doorbell.fire())
        self.conns.append(conn)
        return conn

    def disconnect(self, conn: Connection) -> None:
        if conn in self.conns:
            self.conns.remove(conn)
        conn.close()

    # -- main loop ---------------------------------------------------------
    def _poll_conn(self, conn: Connection) -> list[tuple[int, bytes]]:
        """Non-blocking multi-slot request sweep for one connection.

        Returns every ready ``(slot, payload)`` pair, draining all slots
        (or all pending CQEs in two-sided mode) in one pass so the probe
        cost charged by :meth:`_sweep_cost` is amortized across requests.
        """
        ready: list[tuple[int, bytes]] = []
        if self.hydra.rdma_write_messaging:
            layout = conn.layout
            for slot in range(layout.n_slots):
                off = layout.offset(slot)
                payload = consume(conn.req_region, off)
                if payload is not None:
                    clear(conn.req_region, off, len(payload))
                    ready.append((slot, payload))
            return ready
        while True:
            cqe = conn.shard_qp.recv_cq.poll_one()
            if cqe is None or not cqe.ok:
                return ready
            conn.shard_qp.post_recv()  # replenish
            ready.append((-1, cqe.data))

    def _sweep_cost(self) -> int:
        if self.hydra.rdma_write_messaging:
            probes = sum(c.n_slots for c in self.conns)
            return self.cpu.poll_probe_ns * max(1, probes)
        return (self.cpu.cq_poll_ns * max(1, len(self.conns))
                + self.cpu.post_recv_ns)

    def _tcp_acceptor(self, listener):
        while self.alive:
            conn = yield listener.get()
            self._tcp_conns.append(conn)
            self.sim.process(self._tcp_reader(conn),
                             name=f"{self.shard_id}.rd")

    def _tcp_reader(self, conn):
        # Kernel-side socket readiness: payloads surface on the epoll-style
        # ready queue the (single) shard thread drains.
        while self.alive and conn.open:
            payload, _n = yield conn.recv()
            self._tcp_ready.put((conn, payload))

    def _tcp_run(self):
        try:
            while self.alive:
                conn, payload = yield self._tcp_ready.get()
                yield self.core.execute(self.cpu.poll_probe_ns)  # epoll wake
                yield from self._handle_tcp(conn, payload)
        except Interrupt:
            self.alive = False

    def _handle_tcp(self, conn, payload: bytes):
        self.metrics.counter("shard.requests").add()
        try:
            req = Request.decode(payload)
        except (ValueError, KeyError):
            self.metrics.counter("shard.bad_requests").add()
            return
        self.metrics.counter(f"shard.op.{req.op.name}").add()
        result = self._execute(req)
        yield self.core.execute(
            self.cpu.parse_ns + result.cost_ns + self.cpu.build_response_ns)
        if (self.replicator is not None and req.op in WRITE_OPS
                and result.status is Status.OK):
            rep_cost, wait_ev = self.replicator.replicate(
                req.op, req.key, req.value, result.version)
            yield self.core.execute(rep_cost)
            if wait_ev is not None:
                yield wait_ev
        # No remote pointer over TCP: one-sided reads are impossible.
        resp = Response(op=req.op, status=result.status, req_id=req.req_id,
                        value=result.value, version=result.version)
        data = resp.encode()
        # send() charges the kernel TX path to this (single) shard thread —
        # the CPU toll that separates TCP mode from RDMA-Write messaging.
        yield conn.send(data, resp.wire_len + 40)

    def _run(self):
        if self.hydra.transport == "tcp":
            yield from self._tcp_run()
            return
        idle_sweeps = 0
        try:
            while self.alive:
                if not self.conns:
                    yield self.doorbell.wait()
                    continue
                yield self.core.execute(self._sweep_cost())
                processed = 0
                for conn in list(self.conns):
                    for slot, payload in self._poll_conn(conn):
                        yield from self._handle(conn, slot, payload)
                        processed += 1
                if processed:
                    idle_sweeps = 0
                    continue
                idle_sweeps += 1
                if idle_sweeps < self.cpu.idle_polls_before_sleep:
                    continue
                if self.cpu.sleep_backoff:
                    # High-resolution sleep phase: block until a doorbell,
                    # then pay the average residual sleep before detection.
                    yield self.doorbell.wait()
                    yield self.core.execute(self.cpu.idle_sleep_ns // 2)
                else:
                    # Pure busy polling: the core stays pegged while idle
                    # (modeled by accounting the whole wait as busy) but a
                    # request is picked up by the very next probe.
                    self.core.busy.add(1.0)
                    yield self.doorbell.wait()
                    self.core.busy.add(-1.0)
                    yield self.core.execute(self.cpu.poll_probe_ns)
                idle_sweeps = 0
        except Interrupt:
            self.alive = False

    # -- request execution ---------------------------------------------------
    def _execute(self, req: Request) -> StoreResult:
        if req.op is Op.GET:
            return self.store.get(req.key)
        if req.op in (Op.PUT, Op.INSERT, Op.UPDATE):
            return self.store.upsert(req.key, req.value, req.op)
        if req.op is Op.DELETE:
            return self.store.remove(req.key)
        if req.op is Op.LEASE_RENEW:
            return self.store.lease_renew(req.key)
        return StoreResult(status=Status.ERROR, cost_ns=self.cpu.parse_ns)

    def _handle(self, conn: Connection, slot: int, payload: bytes):
        self.metrics.counter("shard.requests").add()
        try:
            req = Request.decode(payload)
        except (ValueError, KeyError):
            self.metrics.counter("shard.bad_requests").add()
            return
        self.metrics.counter(f"shard.op.{req.op.name}").add()
        result = self._execute(req)
        cost = (self.cpu.parse_ns + result.cost_ns
                + self.cpu.build_response_ns)
        if not self.hydra.rdma_write_messaging:
            cost += self.cpu.sendrecv_server_extra_ns
        yield self.core.execute(cost)
        if (self.replicator is not None and req.op in WRITE_OPS
                and result.status is Status.OK):
            # Replication is issued after local processing; in rdma_log
            # mode the shard moves on immediately and the secondary's merge
            # overlaps with the *next* requests, while strict mode blocks
            # for the full request/acknowledge round trip.
            rep_cost, wait_ev = self.replicator.replicate(
                req.op, req.key, req.value, result.version)
            yield self.core.execute(rep_cost)
            if wait_ev is not None:
                yield wait_ev
        resp = Response(
            op=req.op, status=result.status, req_id=req.req_id,
            value=result.value,
            rkey=(self.store.region.rkey
                  if result.status is Status.OK and result.offset >= 0
                  else 0),
            roffset=max(result.offset, 0),
            rlen=result.extent,
            lease_expiry_ns=result.lease_expiry_ns,
            version=result.version,
        )
        self._respond(conn, resp, slot)

    def _respond(self, conn: Connection, resp: Response,
                 slot: int = 0) -> None:
        data = resp.encode()
        if self.hydra.rdma_write_messaging:
            rptr = conn.resp_slot_rptrs[max(slot, 0)]
            if frame_len(len(data)) > rptr.length:
                # The item outgrew the response slot (e.g. it was PUT over
                # a bigger-buffered connection): degrade to an ERROR reply
                # rather than silently dropping — the client sees a clean
                # failure instead of a timeout.
                self.metrics.counter("shard.resp_overflow").add()
                resp = Response(op=resp.op, status=Status.ERROR,
                                req_id=resp.req_id)
                data = resp.encode()
        try:
            if self.hydra.rdma_write_messaging:
                conn.shard_qp.post_write(rptr, frame(data))
            else:
                conn.shard_qp.post_send(data)
        except QpError:
            # The client tore the connection down (failover retry or
            # teardown) between issuing the request and this response:
            # the response is undeliverable, not a shard failure.
            self.metrics.counter("shard.undeliverable_responses").add()
        # Fire-and-forget: the shard moves to the next request buffer
        # without waiting for the completion (§4.1.1).

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Shard {self.shard_id} conns={len(self.conns)} " \
               f"{'up' if self.alive else 'down'}>"
