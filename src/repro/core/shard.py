"""The shard: HydraDB's single-threaded server-side execution unit (§4.1.1).

One shard = one pinned core + one exclusively-owned :class:`ShardStore`.
The thread does *everything*: it sweeps its per-connection request buffers
(or receive CQs in the Send/Recv ablation mode), executes the operation
against the store, replicates mutations, and RDMA-Writes the response —
no hand-offs, no locks, no context switches.

Polling model: requests are detected by sustained polling with the
indicator format.  After ``idle_polls_before_sleep`` empty sweeps the
thread enters high-resolution sleep (§4.2.1); in the simulator the sleep
phase blocks on a doorbell and charges half a sleep quantum of detection
latency on wake-up, so the latency/CPU trade-off of the real design is
preserved without simulating dead sweeps.

Sweep scalability: three independently-ablatable layers keep server CPU
per op flat as connections x slots grow (each has a ``hydra`` knob):

* **Occupancy-word probing** (``hydra.occupancy_word``): each request
  buffer carries a 64-bit occupancy bitmap the client sets with the same
  doorbell as its slot write; a sweep probes one word per connection
  instead of every slot (§4.1.3's bucket filter applied to messaging).
* **Ready-connection scheduling** (``hydra.ready_hints``): the doorbell
  carries *which* connection fired and the shard keeps a ready set, so a
  sweep visits only dirty connections; every ``FULL_SWEEP_EVERY``-th
  sweep probes everything as a safety net, and the ready list is rotated
  so one hot connection cannot starve the rest.
* **Doorbell-batched responses + pipelined replication**
  (``hydra.resp_doorbell_batch``): responses produced by one sweep are
  buffered per connection and flushed as a single chained RDMA-Write
  post (slot order, one doorbell), and the sweep's replication waits are
  awaited once as a batch instead of stalling per request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from ..config import SimConfig
from ..hardware import Core, Machine
from ..index.export import IndexHandshake
from ..protocol import (
    Op,
    Request,
    Response,
    SlotLayout,
    Status,
    clear,
    consume,
    frame,
    frame_len,
    occ_probe,
    occ_restore,
)
from ..protocol.messages import _REQ, _RESP
from ..rdma import MemoryRegion, Nic, QpError, QueuePair, RemotePointer
from ..rdma.tcp import TcpError
from ..rdma.verbs import WcStatus
from ..sim import Gate, MetricSet, Interrupt, Simulator, Store
from .errors import LifecycleError
from .store import ShardStore, StoreResult

__all__ = ["Shard", "Connection", "WRITE_OPS", "FULL_SWEEP_EVERY"]

WRITE_OPS = frozenset({Op.PUT, Op.INSERT, Op.UPDATE, Op.DELETE})
#: With ready hints on, every N-th sweep probes all connections anyway —
#: the safety net that catches a connection whose hint was lost.
FULL_SWEEP_EVERY = 64
_conn_ids = count(1)

#: Wire opcode -> Op member: the flat parse path resolves opcodes with a
#: list index instead of the Op(...) enum call.
_OP_BY_CODE: list = [None] * (max(Op) + 1)
for _code_op in Op:
    _OP_BY_CODE[_code_op] = _code_op
_MAX_OP = int(max(Op))
#: The write opcodes are wire-contiguous (PUT..DELETE); the flat path
#: tests membership with a range compare instead of a set lookup.
_WRITE_LO, _WRITE_HI = int(Op.PUT), int(Op.DELETE)
assert all(_WRITE_LO <= int(o) <= _WRITE_HI for o in WRITE_OPS)


class _SweepBatch:
    """Deferred output of one sweep: responses + replication waits.

    Responses are buffered per connection and flushed in slot order with
    one chained post (one doorbell) per connection; replication waits
    accumulate so the sweep blocks once on the whole batch of acks
    instead of once per mutation.
    """

    __slots__ = ("resp", "rep_waits", "first_ns", "tenant_slots")

    def __init__(self):
        #: conn_id -> (conn, [(slot, encoded response), ...])
        self.resp: dict[int, tuple["Connection", list]] = {}
        self.rep_waits: list = []
        #: Sim time the oldest still-buffered response entered the batch
        #: (None while empty) — drives the age-based flush
        #: (``hydra.resp_flush_max_ns``).
        self.first_ns: Optional[int] = None
        #: Named-tenant occupancy this sweep: tenant -> slots handled.
        #: Drives the per-sweep shed cap (``qos.server_shed_slots``) and
        #: the ``shard.tenant.<t>.slots`` tallies.  Anonymous (legacy)
        #: requests are not tracked — the default path stays untouched.
        self.tenant_slots: dict[str, int] = {}


@dataclass
class Connection:
    """One client<->shard link: QP pair + the two slotted message buffers."""

    conn_id: int
    shard_qp: QueuePair
    client_qp: QueuePair
    #: Request buffer: lives on the server, written by the client.
    req_region: MemoryRegion
    req_rptr: RemotePointer
    #: Response buffer: lives on the client, written by the shard.
    resp_region: MemoryRegion
    resp_rptr: RemotePointer
    #: Client-side doorbell (fires on response-buffer writes / CQ pushes).
    client_doorbell: Gate = field(repr=False, default=None)  # type: ignore[assignment]
    #: Slot partition shared by both buffers (slot i of the request buffer
    #: pairs with slot i of the response buffer).
    layout: SlotLayout = field(repr=False, default=None)  # type: ignore[assignment]
    #: Per-slot write capabilities (client-held for requests, shard-held
    #: for responses).
    req_slot_rptrs: list[RemotePointer] = field(repr=False,
                                                default_factory=list)
    resp_slot_rptrs: list[RemotePointer] = field(repr=False,
                                                 default_factory=list)
    #: Client-held capability for the request buffer's occupancy word
    #: (None when the layout has no occupancy header).
    req_occ_rptr: Optional[RemotePointer] = field(repr=False, default=None)
    #: Slots consumed by this shard whose response has not been posted
    #: yet (``hydra.occ_announce_mask``).  The client frees a slot only
    #: after draining its response (every timeout/retry path drops the
    #: whole connection instead of reusing the slot), so an occupancy
    #: bit re-announcing one of these is provably stale.
    consumed_pending: set = field(repr=False, default_factory=set)
    #: Handshake advertisement of the shard's client-readable hash index
    #: (None = traversal unavailable; client demotes cold keys to the
    #: message path as before).
    index: Optional[IndexHandshake] = field(repr=False, default=None)
    #: Rotating probe cursor for drain-budgeted sweeps of layouts without
    #: an occupancy header, so deferred slots are reached eventually.
    sweep_cursor: int = field(repr=False, default=0)

    @property
    def n_slots(self) -> int:
        return self.layout.n_slots if self.layout is not None else 1

    def close(self) -> None:
        self.shard_qp.destroy()
        self.client_qp.destroy()


class Shard:
    """A primary shard process."""

    def __init__(self, sim: Simulator, config: SimConfig, shard_id: str,
                 machine: Machine, core: Core,
                 metrics: Optional[MetricSet] = None,
                 table_kind: str = "compact", numa_mode: str = "local",
                 scribble_on_reclaim: bool = False,
                 store: Optional[ShardStore] = None,
                 export_index: bool = True):
        self.sim = sim
        self.config = config
        self.hydra = config.hydra
        self.client_cfg = config.client
        self.qos_cfg = config.qos
        self.cpu = config.cpu
        self.shard_id = shard_id
        self.machine = machine
        self.nic: Nic = machine.nic
        self.core = core
        self.metrics = metrics or MetricSet(sim)
        self.store = store or ShardStore(
            sim, config, self.nic, core.numa_domain, shard_id,
            table_kind=table_kind, numa_mode=numa_mode,
            scribble_on_reclaim=scribble_on_reclaim,
            export_index=export_index,
        )
        self.conns: list[Connection] = []
        self.doorbell = Gate(sim)
        #: Ready-connection scheduling state: connections flagged dirty by
        #: their doorbell, drained by the next sweep (insertion-ordered).
        self._ready: dict[int, Connection] = {}
        self._rr = 0
        self._sweep_seq = 0
        #: TCP-mode state (transport == "tcp"): epoll-style ready queue.
        self.tcp_port: int = -1
        self._tcp_ready = Store(sim)
        self._tcp_conns: list = []
        #: Replication hook; installed by the HA wiring (repro.replication).
        self.replicator = None
        #: Durable write-behind log; installed by the cluster's durability
        #: wiring (repro.durable) when ``config.durability.enabled``.
        self.durable = None
        #: Gray-failure state: True = the shard thread has stopped sweeping
        #: while the process, NIC, and QPs all stay up (wedged core, lost
        #: scheduler quantum).  Heartbeats keep flowing, so SWAT never
        #: promotes — only client deadlines bound the damage.
        self._gray = False
        self._gray_gate = Gate(sim)
        self.alive = False
        self._proc = None
        # -- flat hot path (hydra.flat_hot_paths) --------------------------
        self._flat = (config.hydra.flat_hot_paths
                      and self.hydra.transport == "rdma")
        m = self.metrics
        self._c_requests = m.counter("shard.requests")
        self._c_bad_requests = m.counter("shard.bad_requests")
        #: Per-op counters indexed by the raw wire opcode — the scalar
        #: path's ``f"shard.op.{op.name}"`` lookup resolved once.
        self._c_op = [None] * (max(Op) + 1)
        for _op in Op:
            self._c_op[_op] = m.counter(f"shard.op.{_op.name}")
        self._c_index_mut = m.counter("shard.index_mutations_versioned")
        self._c_resp_overflow = m.counter("shard.resp_overflow")
        self._c_age_flushes = m.counter("shard.age_flushes")
        #: Reused parse scratch: parallel arrays one sweep batch wide
        #: (grown on demand, never shrunk) — the sweep's analogue of the
        #: kernel's flat calendar slots.
        self._ba_ops: list[int] = []
        self._ba_slots: list[int] = []
        self._ba_keys: list[bytes] = []
        self._ba_vals: list[bytes] = []
        self._ba_rids: list[int] = []
        self._ba_raw: list = []
        #: Connection-set generation: bumped on conn add/drop so holders
        #: of derived connection lists (pipelined I/O threads) re-derive
        #: them only when the set actually changed, instead of rebuilding
        #: every sweep.
        self._conn_gen = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self.alive:
            raise LifecycleError(f"{self.shard_id} already running")
        self.alive = True
        if self.hydra.transport == "tcp":
            stack = self.machine.tcp
            port = 7100
            while port in stack.listeners:
                port += 1
            self.tcp_port = port
            listener = stack.listen(port)
            self.sim.process(self._tcp_acceptor(listener),
                             name=f"{self.shard_id}.accept")
        self._proc = self.sim.process(self._run(), name=self.shard_id)
        if self.store.reclaimer._proc is None:
            self.store.reclaimer.start()

    def kill(self) -> None:
        """Crash the shard process (failure injection)."""
        self.alive = False
        self.store.reclaimer.stop()
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("killed")
        if self.durable is not None:
            self.durable.crash()
        self._teardown_conns()

    def _teardown_conns(self) -> None:
        """Destroy every connection's QPs on death.

        A crashed process's QPs must not linger in the fabric (they used
        to leak after failure injection): tearing them down flips the
        peers' ``usable`` probes and turns client posts into immediate
        ``QpError`` retries instead of full operation timeouts.
        """
        for conn in list(self.conns):
            conn.close()
        self._ready.clear()

    def gray_fail(self) -> None:
        """Enter gray failure: stop sweeping, keep everything else alive.

        The agent's liveness checks (``alive`` + NIC up) still pass, the
        QPs still accept writes, so requests land in the buffers and rot.
        Chaos-injection entry point.
        """
        self._gray = True
        self.metrics.counter("shard.gray_failures").add()

    def gray_recover(self) -> None:
        """Leave gray failure and resume sweeping (buffered requests are
        picked up by the next sweep)."""
        self._gray = False
        self._gray_gate.fire()
        self.doorbell.fire()

    def store_for_key(self, key: bytes) -> ShardStore:
        """The store an out-of-band loader should install ``key`` into
        (sub-sharded instances override to route by key hash)."""
        return self.store

    def _index_export(self) -> Optional[IndexHandshake]:
        """Index advertisement for new connections.  Sub-sharded shards
        return None — one connection fronts many tables there, so a
        single bucket region cannot be advertised."""
        return self.store.index_handshake()

    # -- connection setup ------------------------------------------------
    def connect(self, client_nic: Nic,
                client_numa_domain: int = 0) -> Connection:
        """Establish a client connection (QP pair + slotted buffers).

        ``client_numa_domain`` places the response buffer on the *client*
        machine's memory — the request buffer lives on the shard's NUMA
        domain, the response buffer on the connecting client's, so both
        pollers pay consistent local-access costs.
        """
        fabric = self.nic.fabric
        client_qp, shard_qp = fabric.connect(client_nic, self.nic)
        buf = self.hydra.conn_buf_bytes
        occupancy = (self.hydra.occupancy_word
                     and self.hydra.rdma_write_messaging)
        layout = SlotLayout(buf, self.hydra.msg_slots_per_conn,
                            occupancy=occupancy)
        req_region = MemoryRegion(buf, numa_domain=self.core.numa_domain,
                                  name=f"{self.shard_id}.req")
        self.nic.register(req_region)
        resp_region = MemoryRegion(buf, numa_domain=client_numa_domain,
                                   name=f"{self.shard_id}.resp")
        client_nic.register(resp_region)
        conn = Connection(
            conn_id=next(_conn_ids),
            shard_qp=shard_qp,
            client_qp=client_qp,
            req_region=req_region,
            req_rptr=RemotePointer(req_region.rkey, 0, buf),
            resp_region=resp_region,
            resp_rptr=RemotePointer(resp_region.rkey, 0, buf),
            client_doorbell=Gate(self.sim),
            layout=layout,
            req_slot_rptrs=[
                RemotePointer(req_region.rkey, layout.offset(i),
                              layout.slot_bytes)
                for i in range(layout.n_slots)],
            resp_slot_rptrs=[
                RemotePointer(resp_region.rkey, layout.offset(i),
                              layout.slot_bytes)
                for i in range(layout.n_slots)],
            req_occ_rptr=(RemotePointer(req_region.rkey, layout.occ_offset,
                                        layout.header_bytes)
                          if occupancy else None),
            index=self._index_export(),
        )
        if self.hydra.rdma_write_messaging:
            # The doorbell carries which connection fired so the sweep
            # can visit only dirty connections (ready hints).
            req_region.subscribe(lambda _r, c=conn: self._mark_ready(c))
            resp_region.subscribe(lambda _r, c=conn: c.client_doorbell.fire())
        else:
            # Two-sided mode: pre-post receives, doorbell on CQ pushes.
            for _ in range(max(16, self.client_cfg.max_inflight_per_conn)):
                shard_qp.post_recv()
            shard_qp.recv_cq.on_push.append(
                lambda _cq, c=conn: self._mark_ready(c))
            client_qp.recv_cq.on_push.append(
                lambda _cq, c=conn: c.client_doorbell.fire())
        self.conns.append(conn)
        self._conn_gen += 1
        return conn

    def disconnect(self, conn: Connection) -> None:
        if conn in self.conns:
            self.conns.remove(conn)
            self._conn_gen += 1
        self._ready.pop(conn.conn_id, None)
        conn.close()

    # -- main loop ---------------------------------------------------------
    def _mark_ready(self, conn: Connection) -> None:
        """Doorbell callback: flag ``conn`` dirty and wake the poller."""
        if self.hydra.ready_hints:
            self._ready[conn.conn_id] = conn
        self.doorbell.fire(conn)

    def _select_conns(self, owned: Optional[list] = None,
                      owned_fresh: bool = False) -> list[Connection]:
        """Pick the connections the next sweep should probe.

        With ready hints on, only flagged connections (drained from the
        ready set); every ``FULL_SWEEP_EVERY``-th *working* sweep is a
        full sweep over the whole pool — the safety net against a lost
        hint.  The cadence advances only when a sweep actually had ready
        work, so an idle shard spinning before sleep never degenerates
        into periodic O(conns x slots) walks.  The result is rotated so
        a hot connection at the front cannot starve the rest.
        ``owned`` restricts the pool (pipelined I/O threads partition the
        connections among themselves); ``owned_fresh`` promises the list
        was derived at the current ``_conn_gen`` — dropped connections
        already pruned — so the membership filter can be skipped.
        """
        pool = self.conns if owned is None else \
            (owned if owned_fresh else
             [c for c in owned if c in self.conns])
        if not pool:
            return []
        if not self.hydra.ready_hints:
            picked = pool
        else:
            picked = [c for c in pool if c.conn_id in self._ready]
            if not picked:
                return []
            self._sweep_seq += 1
            if self._sweep_seq % FULL_SWEEP_EVERY == 0:
                self.metrics.counter("shard.full_sweeps").add()
                for c in pool:
                    self._ready.pop(c.conn_id, None)
                picked = pool
            else:
                for c in picked:
                    del self._ready[c.conn_id]
        if len(picked) > 1:
            self._rr = (self._rr + 1) % len(picked)
            picked = picked[self._rr:] + picked[:self._rr]
        return picked

    def _poll_conn(self, conn: Connection
                   ) -> tuple[list[tuple[int, bytes]], int]:
        """Non-blocking request sweep for one connection.

        Returns ``(ready, extra_ns)``: every ready ``(slot, payload)``
        pair plus the per-slot probe cost *beyond* what
        :meth:`_sweep_cost` already charged.  With an occupancy layout
        the sweep cost covers only the one-word probe, so the slots the
        snapshot indicates are charged here.  The word is trusted even
        on safety-net full sweeps: the client writes it in the same
        chained WQE as the frame, so — unlike a doorbell hint — it can
        never under-report a landed request.
        """
        ready: list[tuple[int, bytes]] = []
        budget = self.hydra.sweep_drain_budget
        if self.hydra.rdma_write_messaging:
            layout = conn.layout
            if layout.occupancy:
                slots, word_probes = occ_probe(
                    conn.req_region, layout.n_slots, layout.occ_offset)
                mask = self.hydra.occ_announce_mask
                probed = 0
                deferred: list[int] = []
                for pos, slot in enumerate(slots):
                    if mask and slot in conn.consumed_pending:
                        # Consumed on an earlier sweep, response still
                        # unposted: no new frame can occupy this slot
                        # yet, so the re-announced bit is stale.
                        continue
                    if budget > 0 and len(ready) >= budget:
                        # Drain budget exhausted: re-announce the rest of
                        # the snapshot and re-mark the connection ready,
                        # so one hot connection cannot dominate a sweep.
                        deferred = slots[pos:]
                        break
                    probed += 1
                    off = layout.offset(slot)
                    payload = consume(conn.req_region, off)
                    if payload is not None:
                        clear(conn.req_region, off, len(payload))
                        ready.append((slot, payload))
                        if mask:
                            conn.consumed_pending.add(slot)
                if deferred:
                    occ_restore(conn.req_region, deferred, layout.n_slots,
                                layout.occ_offset)
                    self.metrics.counter("shard.drain_deferred").add(
                        len(deferred))
                    # occ_restore bypasses write() (no doorbell): re-mark
                    # explicitly so the next sweep picks the rest up.
                    self._mark_ready(conn)
                self.metrics.counter("shard.probes").add(probed)
                self.metrics.counter("shard.probes_skipped").add(
                    layout.n_slots - probed)
                return ready, self.cpu.poll_probe_ns * (
                    probed + max(0, word_probes - 1))
            start = conn.sweep_cursor if budget > 0 else 0
            deferred_plain = False
            for i in range(layout.n_slots):
                slot = (start + i) % layout.n_slots
                if budget > 0 and len(ready) >= budget:
                    conn.sweep_cursor = slot
                    deferred_plain = True
                    break
                off = layout.offset(slot)
                payload = consume(conn.req_region, off)
                if payload is not None:
                    clear(conn.req_region, off, len(payload))
                    ready.append((slot, payload))
            if deferred_plain:
                self.metrics.counter("shard.drain_deferred").add()
                self._mark_ready(conn)
            self.metrics.counter("shard.probes").add(layout.n_slots)
            return ready, 0
        while True:
            if budget > 0 and len(ready) >= budget:
                self.metrics.counter("shard.drain_deferred").add()
                self._mark_ready(conn)
                return ready, 0
            cqe = conn.shard_qp.recv_cq.poll_one()
            if cqe is None or not cqe.ok:
                return ready, 0
            conn.shard_qp.post_recv()  # replenish
            ready.append((-1, cqe.data))

    def _sweep_cost(self, conns: list[Connection]) -> int:
        """CPU cost of probing ``conns`` once (excluding per-ready-slot
        work, which :meth:`_poll_conn` reports as it finds it)."""
        if self.hydra.rdma_write_messaging:
            # One occupancy-word probe per connection, or every slot on
            # layouts without the header.
            probes = sum(1 if c.layout.occupancy else c.n_slots
                         for c in conns)
            return self.cpu.poll_probe_ns * max(1, probes)
        return (self.cpu.cq_poll_ns * max(1, len(conns))
                + self.cpu.post_recv_ns)

    def _idle_wait(self, core: Core):
        """Idle phase after ``idle_polls_before_sleep`` empty sweeps:
        high-resolution sleep, or pegged-core busy polling when the
        ``cpu.sleep_backoff`` ablation turns sleeping off."""
        if self.cpu.sleep_backoff:
            # Block until a doorbell, then pay the average residual
            # sleep before detection.
            yield self.doorbell.wait()
            yield core.execute(self.cpu.idle_sleep_ns // 2)
        else:
            # Pure busy polling: the core stays pegged while idle
            # (modeled by accounting the whole wait as busy) but a
            # request is picked up by the very next probe.
            core.busy.add(1.0)
            yield self.doorbell.wait()
            core.busy.add(-1.0)
            yield core.execute(self.cpu.poll_probe_ns)

    def _tcp_acceptor(self, listener):
        while self.alive:
            conn = yield listener.get()
            self._tcp_conns.append(conn)
            self.sim.process(self._tcp_reader(conn),
                             name=f"{self.shard_id}.rd")

    def _tcp_reader(self, conn):
        # Kernel-side socket readiness: payloads surface on the epoll-style
        # ready queue the (single) shard thread drains.
        while self.alive and conn.open:
            payload, _n = yield conn.recv()
            self._tcp_ready.put((conn, payload))

    def _tcp_run(self):
        try:
            while self.alive:
                if self._gray:
                    yield self._gray_gate.wait()
                    continue
                conn, payload = yield self._tcp_ready.get()
                yield self.core.execute(self.cpu.poll_probe_ns)  # epoll wake
                # Epoll-style ready-queue draining: one wake handles
                # everything already queued (up to tcp_drain_batch), and
                # each connection's responses flush as one batched
                # syscall — the TCP analogue of the RDMA sweep's
                # doorbell-coalesced response flush.
                drained = [(conn, payload)]
                cap = max(1, self.hydra.tcp_drain_batch)
                while len(drained) < cap:
                    got, item = self._tcp_ready.try_get()
                    if not got:
                        break
                    drained.append(item)
                if len(drained) > 1:
                    self.metrics.counter("shard.tcp_drained").add(
                        len(drained) - 1)
                outbox: dict[int, tuple] = {}
                for c, p in drained:
                    yield from self._handle_tcp(c, p, outbox)
                for c, resps in outbox.values():
                    self.metrics.counter("shard.tcp_resp_batched").add(
                        len(resps) - 1)
                    try:
                        yield c.send_many(resps)
                    except TcpError:
                        self.metrics.counter(
                            "shard.undeliverable_responses").add(len(resps))
        except Interrupt:
            self.alive = False

    def _handle_tcp(self, conn, payload: bytes, outbox=None):
        self.metrics.counter("shard.requests").add()
        try:
            req = Request.decode(payload)
        except (ValueError, KeyError):
            self.metrics.counter("shard.bad_requests").add()
            return
        self.metrics.counter(f"shard.op.{req.op.name}").add()
        result = self._execute(req)
        self._count_index_mutation(req, result)
        yield self.core.execute(
            self.cpu.parse_ns + result.cost_ns + self.cpu.build_response_ns)
        if (self.replicator is not None and req.op in WRITE_OPS
                and result.status is Status.OK):
            rep_cost, wait_ev = self.replicator.replicate(
                req.op, req.key, req.value, result.version)
            yield self.core.execute(rep_cost)
            if wait_ev is not None:
                yield wait_ev
        if (self.durable is not None and req.op in WRITE_OPS
                and result.status is Status.OK):
            dur_cost, flush_ev = self.durable.append(
                req.op, req.key, req.value, result.version)
            yield self.core.execute(dur_cost)
            if flush_ev is not None:
                yield flush_ev
        # No remote pointer over TCP: one-sided reads are impossible.
        resp = Response(op=req.op, status=result.status, req_id=req.req_id,
                        value=result.value, version=result.version)
        data = resp.encode()
        if outbox is not None and conn.open:
            outbox.setdefault(id(conn), (conn, []))[1].append(
                (data, resp.wire_len + 40))
            return
        # send() charges the kernel TX path to this (single) shard thread —
        # the CPU toll that separates TCP mode from RDMA-Write messaging.
        try:
            yield conn.send(data, resp.wire_len + 40)
        except TcpError:
            # The connection was reset under us (injected fault or client
            # teardown): the response is undeliverable, not a shard crash.
            self.metrics.counter("shard.undeliverable_responses").add()

    def _run(self):
        if self.hydra.transport == "tcp":
            yield from self._tcp_run()
            return
        idle_sweeps = 0
        try:
            while self.alive:
                if self._gray:
                    # Gray failure: the thread is wedged.  Doorbells still
                    # fire and QPs still deliver, but nothing sweeps until
                    # gray_recover() releases the gate.
                    yield self._gray_gate.wait()
                    continue
                if not self.conns:
                    yield self.doorbell.wait()
                    continue
                picked = self._select_conns()
                if picked:
                    self.metrics.counter("shard.sweeps").add()
                    yield self.core.execute(self._sweep_cost(picked))
                else:
                    # Nothing flagged ready: one probe to check the flag.
                    yield self.core.execute(self.cpu.poll_probe_ns)
                processed = 0
                batch = self._new_batch()
                for conn in picked:
                    ready, extra_ns = self._poll_conn(conn)
                    if extra_ns:
                        yield self.core.execute(extra_ns)
                    if self._flat and batch is not None:
                        if ready:
                            processed += len(ready)
                            yield from self._handle_batch(conn, ready,
                                                          batch)
                        continue
                    for slot, payload in ready:
                        yield from self._handle(conn, slot, payload, batch)
                        processed += 1
                        if self._batch_aged(batch):
                            # Mid-sweep age flush: don't let early
                            # responses wait out the rest of a big sweep.
                            self.metrics.counter("shard.age_flushes").add()
                            yield from self._finish_sweep(batch)
                yield from self._finish_sweep(batch)
                if processed:
                    idle_sweeps = 0
                    continue
                if self._ready:
                    continue  # a doorbell fired mid-sweep
                idle_sweeps += 1
                if idle_sweeps < self.cpu.idle_polls_before_sleep:
                    continue
                yield from self._idle_wait(self.core)
                idle_sweeps = 0
        except Interrupt:
            self.alive = False

    # -- request execution ---------------------------------------------------
    def _execute(self, req: Request) -> StoreResult:
        if req.op is Op.GET:
            return self.store.get(req.key)
        if req.op in (Op.PUT, Op.INSERT, Op.UPDATE):
            return self.store.upsert(req.key, req.value, req.op)
        if req.op is Op.DELETE:
            return self.store.remove(req.key)
        if req.op is Op.LEASE_RENEW:
            return self.store.lease_renew(req.key)
        return StoreResult(status=Status.ERROR, cost_ns=self.cpu.parse_ns)

    def _count_index_mutation(self, req: Request,
                              result: StoreResult) -> None:
        """Count mutations that version-bumped exported index buckets."""
        if (req.op in WRITE_OPS and result.status is Status.OK
                and self.store_for_key(req.key).export is not None):
            self.metrics.counter("shard.index_mutations_versioned").add()

    def _handle(self, conn: Connection, slot: int, payload: bytes,
                batch: Optional[_SweepBatch] = None):
        self.metrics.counter("shard.requests").add()
        try:
            req = Request.decode(payload)
        except (ValueError, KeyError):
            self.metrics.counter("shard.bad_requests").add()
            return
        self.metrics.counter(f"shard.op.{req.op.name}").add()
        yield from self._handle_req(conn, slot, req, batch)

    def _handle_req(self, conn: Connection, slot: int, req: Request,
                    batch: Optional[_SweepBatch] = None):
        if req.tenant and batch is not None:
            shed = yield from self._tenant_admit(conn, slot, req, batch,
                                                 self.core)
            if shed:
                return
        result = self._execute(req)
        self._count_index_mutation(req, result)
        cost = (self.cpu.parse_ns + result.cost_ns
                + self.cpu.build_response_ns)
        if not self.hydra.rdma_write_messaging:
            cost += self.cpu.sendrecv_server_extra_ns
        yield self.core.execute(cost)
        if (self.replicator is not None and req.op in WRITE_OPS
                and result.status is Status.OK):
            # Replication is issued after local processing; in rdma_log
            # mode the shard moves on immediately and the secondary's merge
            # overlaps with the *next* requests, while strict mode blocks
            # for the full request/acknowledge round trip.  When this
            # sweep batches responses, the ack wait joins the sweep's
            # batch (awaited once in _finish_sweep, before any response
            # of the sweep is flushed) instead of stalling here.
            rep_cost, wait_ev = self.replicator.replicate(
                req.op, req.key, req.value, result.version)
            yield self.core.execute(rep_cost)
            if wait_ev is not None:
                if batch is not None:
                    batch.rep_waits.append(wait_ev)
                else:
                    yield wait_ev
        if (self.durable is not None and req.op in WRITE_OPS
                and result.status is Status.OK):
            # Write-behind durable append: stage the record and move on.
            # Under ack_on_flush the group-commit flush event joins the
            # sweep batch exactly like a replication ack, so the response
            # flushes only once the write is on persistent media.
            dur_cost, flush_ev = self.durable.append(
                req.op, req.key, req.value, result.version)
            yield self.core.execute(dur_cost)
            if flush_ev is not None:
                if batch is not None:
                    batch.rep_waits.append(flush_ev)
                else:
                    yield flush_ev
        resp = Response(
            op=req.op, status=result.status, req_id=req.req_id,
            value=result.value,
            rkey=(self.store.region.rkey
                  if result.status is Status.OK and result.offset >= 0
                  else 0),
            roffset=max(result.offset, 0),
            rlen=result.extent,
            lease_expiry_ns=result.lease_expiry_ns,
            version=result.version,
        )
        self._respond(conn, resp, slot, batch)

    def _handle_batch(self, conn: Connection, ready: list,
                      batch: _SweepBatch):
        """Flat-array sweep inner loop (``hydra.flat_hot_paths``).

        Processes one connection's whole ready batch through
        parse→index→respond as parallel arrays: request headers are
        unpacked with ``struct.unpack_from`` into reused scratch lists
        (no Request objects), the store is dispatched on the raw opcode,
        and responses are packed straight to wire bytes (no Response
        objects, no ``encode()``).  Every simulated yield of the scalar
        path — the per-request ``core.execute``, replication issue and
        ack collection, mid-batch age flushes — is preserved 1:1, so the
        schedule digest stays bit-identical to the scalar oracle
        (``flat_hot_paths=False``).  Named-tenant requests fall back to
        the scalar per-request body: admission accounting needs the
        decoded tenant and is not a hot path.
        """
        c_req = self._c_requests
        c_op = self._c_op
        ops = self._ba_ops
        slots_a = self._ba_slots
        keys = self._ba_keys
        vals = self._ba_vals
        rids = self._ba_rids
        raws = self._ba_raw
        while len(ops) < len(ready):
            ops.append(0)
            slots_a.append(0)
            keys.append(b"")
            vals.append(b"")
            rids.append(0)
            raws.append(None)
        unpack = _REQ.unpack_from
        base = _REQ.size
        n = 0
        # Pass 1 — parse. No simulated time passes here (parsing cost is
        # charged with the execute below, as on the scalar path), so
        # batching the parses cannot reorder events.
        for slot, payload in ready:
            c_req.add()
            bad = len(payload) < base
            if not bad:
                op, tlen, klen, vlen, rid = unpack(payload, 0)
                bad = (len(payload) != base + klen + vlen + tlen
                       or not 1 <= op <= _MAX_OP)
            if bad:
                self._c_bad_requests.add()
                # Keep a no-op entry so pass 2 runs the same per-request
                # age-flush check the scalar loop runs after a bad one.
                ops[n] = -2
                n += 1
                continue
            c_op[op].add()
            slots_a[n] = slot
            rids[n] = rid
            if tlen:
                ops[n] = -1  # tenant request: scalar fallback in pass 2
                raws[n] = payload
            else:
                ops[n] = op
                keys[n] = payload[base:base + klen]
                vals[n] = payload[base + klen:base + klen + vlen]
            n += 1
        # Pass 2 — execute + respond, in arrival order.
        sim = self.sim
        cpu = self.cpu
        core_execute = self.core.execute
        store = self.store
        replicator = self.replicator
        durable = self.durable
        # Base shards execute every key against their one store
        # (store_for_key exists for the sub-sharded loops, which do not
        # route through this handler).
        exported = store.export is not None
        region_rkey = store.region.rkey
        parse_build = cpu.parse_ns + cpu.build_response_ns
        pack = _RESP.pack
        resp_rptrs = conn.resp_slot_rptrs
        consumed = conn.consumed_pending
        conn_id = conn.conn_id
        batch_resp = batch.resp
        rep_waits = batch.rep_waits
        ok = Status.OK
        for i in range(n):
            op = ops[i]
            slot = slots_a[i]
            if op == -2:
                pass  # bad request: counted in pass 1, nothing to do
            elif op == -1:
                req = Request.decode(raws[i])
                raws[i] = None
                yield from self._handle_req(conn, slot, req, batch)
            else:
                key = keys[i]
                if op == 1:
                    result = store.get(key)
                elif op <= 4:
                    result = store.upsert(key, vals[i], _OP_BY_CODE[op])
                elif op == 5:
                    result = store.remove(key)
                else:
                    result = store.lease_renew(key)
                status = result.status
                is_ok_write = (status is ok
                               and _WRITE_LO <= op <= _WRITE_HI)
                if is_ok_write and exported:
                    self._c_index_mut.add()
                yield core_execute(parse_build + result.cost_ns)
                if replicator is not None and is_ok_write:
                    rep_cost, wait_ev = replicator.replicate(
                        _OP_BY_CODE[op], key, vals[i], result.version)
                    yield core_execute(rep_cost)
                    if wait_ev is not None:
                        rep_waits.append(wait_ev)
                if durable is not None and is_ok_write:
                    dur_cost, flush_ev = durable.append(
                        _OP_BY_CODE[op], key, vals[i], result.version)
                    yield core_execute(dur_cost)
                    if flush_ev is not None:
                        rep_waits.append(flush_ev)
                # Respond: straight to wire bytes, buffered for the
                # sweep's doorbell-coalesced flush (the scalar _respond
                # batch branch, inlined).
                consumed.discard(slot)
                value = result.value
                offset = result.offset
                data = pack(op, status, 0, len(value), rids[i],
                            region_rkey if (status is ok and offset >= 0)
                            else 0,
                            offset if offset > 0 else 0,
                            result.extent, result.lease_expiry_ns,
                            result.version) + value
                if frame_len(len(data)) > resp_rptrs[slot].length:
                    self._c_resp_overflow.add()
                    data = pack(op, Status.ERROR, 0, 0, rids[i],
                                0, 0, 0, 0, 0)
                if batch.first_ns is None:
                    batch.first_ns = sim.now
                batch_resp.setdefault(conn_id, (conn, []))[1].append(
                    (slot, data))
            if self._batch_aged(batch):
                self._c_age_flushes.add()
                yield from self._finish_sweep(batch)
                # A flush clears the buffered-response map in place;
                # the cached locals stay valid for the next append.

    def _tenant_admit(self, conn: Connection, slot: int, req: Request,
                      batch: _SweepBatch, core: Core):
        """Named-tenant occupancy accounting + optional per-sweep shed.

        Anonymous (legacy) requests never reach this — the default client
        path stays bit-identical.  With ``qos.server_shed_slots > 0``, a
        tenant that already consumed its slot share of the current sweep
        is refused cheaply with a typed ``Status.THROTTLED`` response
        carrying the ``qos.shed_retry_after_ns`` hint — the overload
        never reaches the store.  Returns True when the request was shed.
        """
        tname = req.tenant.decode()
        used = batch.tenant_slots.get(tname, 0) + 1
        batch.tenant_slots[tname] = used
        self.metrics.counter(f"shard.tenant.{tname}.ops").add()
        shed_cap = self.qos_cfg.server_shed_slots
        if shed_cap <= 0 or used <= shed_cap:
            return False
        self.metrics.counter("shard.shed_ops").add()
        self.metrics.counter(f"shard.tenant.{tname}.shed").add()
        yield core.execute(self.cpu.parse_ns + self.cpu.build_response_ns)
        self._respond(conn, Response(
            op=req.op, status=Status.THROTTLED, req_id=req.req_id,
            lease_expiry_ns=self.qos_cfg.shed_retry_after_ns), slot, batch)
        return True

    # -- responses ---------------------------------------------------------
    def _new_batch(self) -> Optional[_SweepBatch]:
        """A fresh sweep batch, or None when response batching is off
        (``resp_doorbell_batch`` <= 0, or the two-sided/TCP paths)."""
        if (self.hydra.resp_doorbell_batch > 0
                and self.hydra.rdma_write_messaging):
            return _SweepBatch()
        return None

    def _batch_full(self, batch: _SweepBatch) -> bool:
        """Long-lived batches (executor/worker loops) flush at this cap
        even when their input queue never drains."""
        cap = max(1, self.hydra.resp_doorbell_batch)
        buffered = sum(len(entries) for _c, entries in batch.resp.values())
        return buffered >= cap or len(batch.rep_waits) >= cap

    def _batch_aged(self, batch: Optional[_SweepBatch]) -> bool:
        """Age-based flush trigger (``hydra.resp_flush_max_ns``): True once
        the oldest buffered response has sat longer than the bound.  Keeps
        doorbell batching from adding unbounded latency when the sweep or
        queue feeding the batch is long/slow (trickle load, giant sweeps)."""
        max_ns = self.hydra.resp_flush_max_ns
        if batch is None or max_ns <= 0 or batch.first_ns is None:
            return False
        return self.sim.now - batch.first_ns >= max_ns

    def _respond(self, conn: Connection, resp: Response, slot: int = 0,
                 batch: Optional[_SweepBatch] = None) -> None:
        if slot >= 0:
            # From here the response is on its way (buffered or posted):
            # the slot may legitimately carry a new frame once the client
            # drains it, so stop treating announce bits for it as stale.
            conn.consumed_pending.discard(slot)
        data = resp.encode()
        if self.hydra.rdma_write_messaging:
            rptr = conn.resp_slot_rptrs[max(slot, 0)]
            if frame_len(len(data)) > rptr.length:
                # The item outgrew the response slot (e.g. it was PUT over
                # a bigger-buffered connection): degrade to an ERROR reply
                # rather than silently dropping — the client sees a clean
                # failure instead of a timeout.
                self.metrics.counter("shard.resp_overflow").add()
                resp = Response(op=resp.op, status=Status.ERROR,
                                req_id=resp.req_id)
                data = resp.encode()
            if batch is not None:
                if batch.first_ns is None:
                    batch.first_ns = self.sim.now
                batch.resp.setdefault(conn.conn_id, (conn, []))[1].append(
                    (max(slot, 0), data))
                return
        try:
            if self.hydra.rdma_write_messaging:
                conn.shard_qp.post_write(rptr, frame(data))
                self.metrics.counter("shard.resp_doorbells").add()
            else:
                conn.shard_qp.post_send(data)
        except QpError:
            # The client tore the connection down (failover retry or
            # teardown) between issuing the request and this response:
            # the response is undeliverable, not a shard failure.
            self.metrics.counter("shard.undeliverable_responses").add()
        # Fire-and-forget: the shard moves to the next request buffer
        # without waiting for the completion (§4.1.1).

    def _respond_flat(self, conn: Connection, slot: int, op: int, rid: int,
                      result, store: ShardStore,
                      batch: _SweepBatch) -> None:
        """Buffer one response packed straight to wire bytes — the
        batched branch of :meth:`_respond` without the Response object.
        Used by the sub-sharded / pipelined flat executors, which respond
        one op at a time against varying stores (the base sweep inlines
        this in :meth:`_handle_batch` with the per-sweep state hoisted).
        """
        conn.consumed_pending.discard(slot)
        status = result.status
        value = result.value
        offset = result.offset
        data = _RESP.pack(op, status, 0, len(value), rid,
                          (store.region.rkey
                           if status is Status.OK and offset >= 0 else 0),
                          offset if offset > 0 else 0,
                          result.extent, result.lease_expiry_ns,
                          result.version) + value
        if frame_len(len(data)) > conn.resp_slot_rptrs[slot].length:
            self._c_resp_overflow.add()
            data = _RESP.pack(op, Status.ERROR, 0, 0, rid, 0, 0, 0, 0, 0)
        if batch.first_ns is None:
            batch.first_ns = self.sim.now
        batch.resp.setdefault(conn.conn_id, (conn, []))[1].append(
            (slot, data))

    def _count_undeliverable(self, batch_ev) -> None:
        """Batch-completion callback: count responses whose WQE failed to
        post at all (stale rkey, dead NIC — surfaced as ``LOCAL_QP_ERR``).
        Later transport-level failures are retried by the NIC and are not
        undeliverable from the shard's point of view."""
        wcs = batch_ev.value
        bad = sum(1 for wc in wcs
                  if not wc.ok and wc.status is WcStatus.LOCAL_QP_ERR)
        if bad:
            self.metrics.counter("shard.undeliverable_responses").add(bad)
        if self._flat:
            # The shard is the chain's only consumer: recycle the pooled
            # CQE records for the next doorbell-coalesced flush.
            release = self.nic.wc_pool.release
            for wc in wcs:
                if wc._live:
                    release(wc)

    def _flush_conn(self, conn: Connection, entries: list) -> None:
        """Flush one connection's buffered responses.

        Responses land in slot order before the (single) doorbell: the
        chain is posted slot-sorted on the RC QP, whose in-order delivery
        makes every frame visible to the client no later than the last
        write of the chain.  Chains longer than ``resp_doorbell_batch``
        are split, one doorbell per chain.
        """
        entries.sort(key=lambda e: e[0])
        cap = max(1, self.hydra.resp_doorbell_batch)
        for i in range(0, len(entries), cap):
            chunk = entries[i:i + cap]
            chain = [(conn.resp_slot_rptrs[slot], frame(data))
                     for slot, data in chunk]
            try:
                batch_ev = conn.shard_qp.post_write_batch(chain)
            except QpError:
                self.metrics.counter("shard.undeliverable_responses").add(
                    len(chunk))
                continue
            self.metrics.counter("shard.resp_doorbells").add()
            self.metrics.counter("shard.resp_coalesced").add(len(chunk) - 1)
            batch_ev.callbacks.append(self._count_undeliverable)

    def _finish_sweep(self, batch: Optional[_SweepBatch]):
        """Settle one sweep: wait once on the batch of replication acks,
        then flush every connection's buffered responses."""
        if batch is None:
            return
        if batch.rep_waits:
            self.metrics.tally("shard.rep_batch").observe(
                len(batch.rep_waits))
            yield self.sim.all_of(batch.rep_waits)
            batch.rep_waits.clear()
        if batch.resp:
            for conn, entries in list(batch.resp.values()):
                self._flush_conn(conn, entries)
            batch.resp.clear()
        if batch.tenant_slots:
            for tname, used in batch.tenant_slots.items():
                self.metrics.tally(f"shard.tenant.{tname}.slots").observe(
                    used)
            batch.tenant_slots.clear()
        batch.first_ns = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Shard {self.shard_id} conns={len(self.conns)} " \
               f"{'up' if self.alive else 'down'}>"
