"""Popularity-scaled leases for RDMA-readable items (§4.2.3, C-Hint [31]).

A lease is the server's promise that the extent behind a remote pointer
stays mapped (even if the item is retired) until the expiry timestamp, so
clients may RDMA-Read it without server coordination.  Every server-aware
GET extends the lease by 1–64 s depending on the key's observed
popularity; retiring an item *freezes* its lease, and the reclaimer frees
the extent only after the frozen lease lapses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HydraConfig
from ..sim import Simulator

__all__ = ["LeaseManager", "LeaseState"]


@dataclass
class LeaseState:
    expiry_ns: int
    get_count: int = 0


class LeaseManager:
    """Per-shard lease bookkeeping, keyed by arena offset."""

    def __init__(self, sim: Simulator, config: HydraConfig):
        self.sim = sim
        self.config = config
        self._leases: dict[int, LeaseState] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def duration_ns(self, get_count: int) -> int:
        """Lease term for a key with ``get_count`` observed GETs.

        Doubles with popularity: 1 s, 2 s, 4 s ... capped at 64 s
        (``lease_max_ns``), saturating at ``lease_popularity_saturation``.
        """
        capped = max(1, min(get_count, self.config.lease_popularity_saturation))
        term = self.config.lease_min_ns << (capped.bit_length() - 1)
        return min(term, self.config.lease_max_ns)

    def on_insert(self, offset: int) -> int:
        """Fresh item: baseline lease."""
        st = LeaseState(expiry_ns=self.sim.now + self.config.lease_min_ns)
        self._leases[offset] = st
        return st.expiry_ns

    def on_get(self, offset: int) -> int:
        """Server-aware GET: bump popularity and extend the lease."""
        st = self._leases.get(offset)
        if st is None:  # defensive: treat as fresh
            st = LeaseState(expiry_ns=0)
            self._leases[offset] = st
        st.get_count += 1
        st.expiry_ns = max(st.expiry_ns,
                           self.sim.now + self.duration_ns(st.get_count))
        return st.expiry_ns

    def renew(self, offset: int) -> int:
        """Explicit client renewal (LEASE_RENEW message)."""
        return self.on_get(offset)

    def expiry(self, offset: int) -> int:
        st = self._leases.get(offset)
        return st.expiry_ns if st else 0

    def freeze(self, offset: int) -> int:
        """Retire an item: drop its state and return the frozen expiry.

        A frozen lease is never extended again (§4.2.3); the returned value
        is the earliest safe reclamation time for the extent.
        """
        st = self._leases.pop(offset, None)
        return st.expiry_ns if st else self.sim.now
