"""Redis model (2.8-era): single-threaded instances, client-side sharding.

The paper runs 8 Redis instances per machine with fine-grained client-side
sharding.  Each instance is one event loop: requests on all of its
connections are serviced strictly serially (no locks needed), so the
per-instance throughput ceiling is ``1 / service_time`` and skewed
workloads overload the instance owning the hot keys — the behaviour the
Fig. 9 Zipfian columns expose.
"""

from __future__ import annotations

from typing import Optional

from ..config import SimConfig
from ..hardware import Machine
from ..index.hashing import hash64
from ..rdma.tcp import TcpConnection
from ..sim import MetricSet, Simulator, Store
from .base import WIRE_OVERHEAD, BaselineClient, BaselineServer

__all__ = ["RedisServer", "RedisInstance", "RedisClient"]

BASE_PORT = 6379
#: Extra per-op cost of redis's dynamic object machinery vs memcached.
OBJECT_OVERHEAD_NS = 500


class RedisInstance(BaselineServer):
    """One single-threaded redis-server process."""

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 port: int, metrics: Optional[MetricSet] = None):
        super().__init__(sim, config, machine, f"redis:{port}",
                         metrics=metrics)
        self.port = port
        self.store: dict[bytes, bytes] = {}
        #: The event-loop's ready queue: (conn, request) pairs.
        self._ready = Store(sim)

    def start(self) -> None:
        if self.started:
            raise RuntimeError("instance already started")
        self.started = True
        listener = self.machine.tcp.listen(self.port)
        self.sim.process(self._acceptor(listener), name=f"{self.name}.accept")
        self.sim.process(self._event_loop(), name=f"{self.name}.loop")

    def _acceptor(self, listener):
        while True:
            conn = yield listener.get()
            self.sim.process(self._reader(conn), name=f"{self.name}.rd")

    def _reader(self, conn: TcpConnection):
        while conn.open:
            request, _n = yield conn.recv()
            self._ready.put((conn, request))

    def _event_loop(self):
        while True:
            conn, (op, key, value) = yield self._ready.get()
            self.metrics.counter("redis.requests").add()
            cost = (self._service_cost_ns(op, len(key), len(value))
                    + OBJECT_OVERHEAD_NS)
            yield self.sim.timeout(cost)
            if op == "get":
                result = self.store.get(key)
            elif op == "set":
                self.store[key] = value
                result = b"OK"
            elif op == "delete":
                result = b"1" if self.store.pop(key, None) else b"0"
            else:
                result = None
            nbytes = WIRE_OVERHEAD + (len(result) if result else 0)
            yield conn.send(result, nbytes)


class RedisServer:
    """The machine-level deployment: N instances on consecutive ports."""

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 n_instances: int = 8, metrics: Optional[MetricSet] = None):
        self.machine = machine
        self.instances = [
            RedisInstance(sim, config, machine, BASE_PORT + i,
                          metrics=metrics)
            for i in range(n_instances)
        ]

    def start(self) -> None:
        for inst in self.instances:
            inst.start()


class RedisClient(BaselineClient):
    """Shards keys across instances by hash (client-side sharding)."""

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 server: RedisServer):
        super().__init__(sim, config, machine)
        self.server = server
        self._conns: dict[int, TcpConnection] = {}

    def _instance_for(self, key: bytes) -> RedisInstance:
        idx = hash64(key) % len(self.server.instances)
        return self.server.instances[idx]

    def _call(self, op: str, key: bytes, value: bytes):
        inst = self._instance_for(key)
        conn = self._conns.get(inst.port)
        if conn is None:
            ev = self.machine.tcp.connect(inst.machine.tcp, inst.port)
            conn = yield ev
            self._conns[inst.port] = conn
        yield self.sim.timeout(self.cpu.parse_ns)
        nbytes = WIRE_OVERHEAD + len(key) + len(value)
        yield conn.send((op, key, value), nbytes)
        result, _n = yield conn.recv()
        return result
