"""Memcached model (v1.4-era): threaded TCP server with a global cache lock.

Architecture priced by the model:

* every request crosses the kernel TCP stack twice on the server (the
  IPoIB path of the paper's evaluation),
* libevent worker threads multiplex connections — a counted
  :class:`~repro.sim.resources.Resource` of ``n_threads``,
* the 1.4-series global cache lock serializes item/table access across
  threads, which is what flattens its multicore scaling.
"""

from __future__ import annotations

from typing import Optional

from ..config import SimConfig
from ..hardware import Machine
from ..rdma.tcp import TcpConnection
from ..sim import MetricSet, Mutex, Resource, Simulator
from .base import WIRE_OVERHEAD, BaselineClient, BaselineServer

__all__ = ["MemcachedServer", "MemcachedClient"]

PORT = 11211
#: Time the global cache lock is held per operation.
LOCK_HOLD_NS = 350


class MemcachedServer(BaselineServer):
    """A single memcached instance with ``n_threads`` workers."""

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 n_threads: int = 8, metrics: Optional[MetricSet] = None):
        super().__init__(sim, config, machine, "memcached", metrics=metrics)
        self.n_threads = n_threads
        self.store: dict[bytes, bytes] = {}
        self.threads = Resource(sim, capacity=n_threads)
        self.cache_lock = Mutex(sim)

    def start(self) -> None:
        if self.started:
            raise RuntimeError("server already started")
        self.started = True
        listener = self.machine.tcp.listen(PORT)
        self.sim.process(self._acceptor(listener), name="memcached.accept")

    def _acceptor(self, listener):
        while True:
            conn = yield listener.get()
            self.sim.process(self._connection(conn), name="memcached.conn")

    def _connection(self, conn: TcpConnection):
        while conn.open:
            (op, key, value), _n = yield conn.recv()
            # A worker thread picks the ready event up.
            slot = self.threads.request()
            yield slot
            self.metrics.counter("memcached.requests").add()
            cost = self._service_cost_ns(op, len(key), len(value))
            lock = self.cache_lock.request()
            yield lock
            yield self.sim.timeout(LOCK_HOLD_NS)
            if op == "get":
                result = self.store.get(key)
            elif op == "set":
                self.store[key] = value
                result = b"STORED"
            elif op == "delete":
                result = b"DELETED" if self.store.pop(key, None) else None
            else:
                result = None
            self.cache_lock.release(lock)
            yield self.sim.timeout(cost)
            nbytes = WIRE_OVERHEAD + (len(result) if result else 0)
            yield conn.send(result, nbytes)
            self.threads.release(slot)


class MemcachedClient(BaselineClient):
    """Client using the kernel TCP transport."""

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 server: MemcachedServer):
        super().__init__(sim, config, machine)
        self.server = server
        self._conn: Optional[TcpConnection] = None

    def connect(self):
        ev = self.machine.tcp.connect(self.server.machine.tcp, PORT)
        self._conn = yield ev
        return self._conn

    def _call(self, op: str, key: bytes, value: bytes):
        if self._conn is None:
            yield from self.connect()
        yield self.sim.timeout(self.cpu.parse_ns)  # client marshalling
        nbytes = WIRE_OVERHEAD + len(key) + len(value)
        yield self._conn.send((op, key, value), nbytes)
        result, _n = yield self._conn.recv()
        return result
