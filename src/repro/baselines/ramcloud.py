"""RAMCloud model: native InfiniBand Send/Recv, dispatch + worker threads.

RAMCloud's infrc transport gives it microsecond-class RPCs (far ahead of
the IPoIB baselines), but its threading architecture caps throughput: a
single *dispatch* thread polls the receive CQs and hands each RPC to a
worker — every request pays the dispatch service time and a hand-off, so
the server saturates near ``1 / dispatch_cost`` regardless of worker
count.  Writes additionally pay a log append (log-structured memory).
This is the cost structure Fig. 9's RAMCloud columns show: decent latency,
an order of magnitude less throughput than HydraDB.
"""

from __future__ import annotations

from typing import Optional

from ..config import SimConfig
from ..hardware import Machine
from ..sim import Gate, MetricSet, Resource, Simulator, Store
from .base import WIRE_OVERHEAD, BaselineClient, BaselineServer

__all__ = ["RamcloudServer", "RamcloudClient"]

DISPATCH_NS = 1000     # dispatch thread per-RPC: CQ poll + demux + handoff
LOG_APPEND_NS = 600    # log-structured write path (append + hash update)


class RamcloudServer(BaselineServer):
    """One RAMCloud master with 1 dispatch + ``n_workers`` worker threads."""

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 n_workers: int = 7, metrics: Optional[MetricSet] = None):
        super().__init__(sim, config, machine, "ramcloud", metrics=metrics)
        self.n_workers = n_workers
        self.store: dict[bytes, bytes] = {}
        self.log_head = 0
        self._qps = []
        self._doorbell = Gate(sim)
        self._ready = Store(sim)
        self.workers = Resource(sim, capacity=n_workers)

    def start(self) -> None:
        if self.started:
            raise RuntimeError("server already started")
        self.started = True
        self.sim.process(self._dispatch(), name="ramcloud.dispatch")

    def accept(self, client_nic):
        """Connect a client: an RC QP pair with pre-posted receives."""
        fabric = self.machine.nic.fabric
        client_qp, server_qp = fabric.connect(client_nic, self.machine.nic)
        for _ in range(32):
            server_qp.post_recv()
        server_qp.recv_cq.on_push.append(lambda _cq: self._doorbell.fire())
        self._qps.append(server_qp)
        return client_qp

    def _dispatch(self):
        while True:
            progressed = False
            for qp in self._qps:
                cqe = qp.recv_cq.poll_one()
                if cqe is None or not cqe.ok:
                    continue
                qp.post_recv()
                # Dispatch thread demuxes and hands off to a worker.
                yield self.sim.timeout(DISPATCH_NS)
                self.sim.process(self._worker(qp, cqe.data),
                                 name="ramcloud.worker")
                progressed = True
            if not progressed:
                yield self._doorbell.wait()
                yield self.sim.timeout(self.cpu.cq_poll_ns)

    def _worker(self, qp, data):
        slot = self.workers.request()
        yield slot
        import pickle
        op, key, value = pickle.loads(data)
        self.metrics.counter("ramcloud.requests").add()
        cost = self._service_cost_ns(op, len(key), len(value))
        if op == "set":
            cost += LOG_APPEND_NS
            self.log_head += len(key) + len(value) + 16
        yield self.sim.timeout(cost)
        if op == "get":
            result = self.store.get(key)
        elif op == "set":
            self.store[key] = value
            result = b"OK"
        elif op == "delete":
            result = b"1" if self.store.pop(key, None) else b"0"
        else:
            result = None
        payload = pickle.dumps(result)
        qp.post_send(payload + bytes(WIRE_OVERHEAD))
        self.workers.release(slot)


class RamcloudClient(BaselineClient):
    """Issues RPCs over the RC Send/Recv transport."""

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 server: RamcloudServer):
        super().__init__(sim, config, machine)
        self.server = server
        self._qp = None
        self._cq_doorbell = Gate(sim)

    def _connect(self) -> None:
        self._qp = self.server.accept(self.machine.nic)
        self._qp.recv_cq.on_push.append(
            lambda _cq: self._cq_doorbell.fire())

    def _call(self, op: str, key: bytes, value: bytes):
        import pickle
        if self._qp is None:
            self._connect()
        yield self.sim.timeout(self.cpu.parse_ns)
        self._qp.post_recv()
        payload = pickle.dumps((op, key, value))
        self._qp.post_send(payload + bytes(WIRE_OVERHEAD))
        while True:
            cqe = self._qp.recv_cq.poll_one()
            if cqe is not None and cqe.ok:
                yield self.sim.timeout(self.cpu.cq_poll_ns)
                return pickle.loads(cqe.data[:-WIRE_OVERHEAD])
            yield self._cq_doorbell.wait()
