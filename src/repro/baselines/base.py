"""Shared machinery for the baseline key-value stores of Fig. 9.

The baselines are *behavioural* models: they reproduce each system's
architectural cost structure (kernel TCP stacks, shared locks, single
dispatch threads, client-side sharding) on the same simulated hardware,
not their code.  All expose the same minimal client protocol the YCSB
runner drives: generator ``get(key)`` / ``put(key, value)`` /
``update(key, value)`` / ``insert(key, value)``.
"""

from __future__ import annotations

from itertools import count
from typing import Optional

from ..config import SimConfig
from ..hardware import Machine
from ..sim import MetricSet, Simulator

__all__ = ["BaselineClient", "BaselineServer", "WIRE_OVERHEAD"]

#: Protocol framing bytes added to every request/response on the wire.
WIRE_OVERHEAD = 40

_ids = count(1)


class BaselineServer:
    """Base server: owns the machine, metrics, and a dict-backed store."""

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 name: str, metrics: Optional[MetricSet] = None):
        self.sim = sim
        self.config = config
        self.cpu = config.cpu
        self.machine = machine
        self.name = name
        self.metrics = metrics or MetricSet(sim)
        self.started = False

    def start(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _service_cost_ns(self, op: str, klen: int, vlen: int,
                         extra_lines: int = 3) -> int:
        """Generic per-request CPU: parse + index walk + payload copy."""
        cost = (self.cpu.parse_ns + self.cpu.hash_key_ns
                + self.cpu.cacheline_ns(extra_lines)
                + self.cpu.build_response_ns)
        if op == "get":
            cost += self.cpu.memcpy_ns(vlen)
        else:
            cost += self.cpu.memcpy_ns(klen + vlen) + self.cpu.alloc_ns
        return cost


class BaselineClient:
    """Base client: request/response over a provided transport hook."""

    def __init__(self, sim: Simulator, config: SimConfig, machine: Machine,
                 name: str = ""):
        self.sim = sim
        self.config = config
        self.cpu = config.cpu
        self.machine = machine
        self.name = name or f"bclient{next(_ids)}"

    # Subclasses implement _call(op, key, value) as a generator returning
    # the response value (bytes | None).
    def _call(self, op: str, key: bytes, value: bytes):  # pragma: no cover
        raise NotImplementedError
        yield

    def get(self, key: bytes):
        return (yield from self._call("get", key, b""))

    def put(self, key: bytes, value: bytes):
        return (yield from self._call("set", key, value))

    # YCSB-compatible aliases: the baselines treat all writes as SET.
    def update(self, key: bytes, value: bytes):
        return (yield from self._call("set", key, value))

    def insert(self, key: bytes, value: bytes):
        return (yield from self._call("set", key, value))

    def delete(self, key: bytes):
        return (yield from self._call("delete", key, b""))
