"""Baseline in-memory key-value stores for the Fig. 9 comparison."""

from .base import BaselineClient, BaselineServer, WIRE_OVERHEAD
from .memcached import MemcachedClient, MemcachedServer
from .ramcloud import RamcloudClient, RamcloudServer
from .redis import RedisClient, RedisInstance, RedisServer

__all__ = [
    "BaselineClient",
    "BaselineServer",
    "WIRE_OVERHEAD",
    "MemcachedServer",
    "MemcachedClient",
    "RedisServer",
    "RedisInstance",
    "RedisClient",
    "RamcloudServer",
    "RamcloudClient",
]
