"""Durable write-behind log tier (simulated persistent memory).

A :class:`PMDevice` models a byte-addressable persistent device whose
contents survive shard and server death; a :class:`DurableLog` group-
commits indicator-framed replication records onto it off the critical
path, so a shard whose primary *and* secondary die can be rebuilt by
replaying the log (``scan_log`` + ``replay_into``).
"""

from .device import PMDevice
from .log import (DurableLog, DurableScan, LOG_BASE, WATERMARK_BYTES,
                  read_watermark, scan_log, replay_into)

__all__ = [
    "PMDevice",
    "DurableLog",
    "DurableScan",
    "LOG_BASE",
    "WATERMARK_BYTES",
    "read_watermark",
    "scan_log",
    "replay_into",
]
