"""Simulated persistent-memory device with torn-write-at-crash semantics.

The device is plain ``bytearray`` media owned by the *cluster*, not by
the shard process that writes it — so it survives ``Shard.kill()`` and
machine death, which is the whole point of the durable tier.

Write timing follows a latency + bandwidth model
(``write_latency_ns + nbytes / bandwidth_bpns``).  A write is a two-step
protocol mirroring how the NIC engines stage work:

* ``begin_write(offset, data)`` stakes the write and returns its cost;
  the caller yields that long before calling ``commit_write()``.
* ``commit_write()`` lands every byte.
* ``crash()`` before the commit lands only a *prefix* of the in-flight
  bytes, proportional to elapsed time and cut at 8-byte granularity —
  the torn-write hazard real PM gives you beyond the 8-byte atomic unit
  (cf. the indicator/guardian framing in ``protocol/indicator.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator

__all__ = ["PMDevice"]


class PMDevice:
    """Byte-addressable simulated PM media for one shard's durable log."""

    def __init__(self, sim: "Simulator", capacity_bytes: int,
                 write_latency_ns: int = 3_000,
                 bandwidth_bpns: float = 2.0,
                 name: str = "pm") -> None:
        self.sim = sim
        self.name = name
        self.capacity = capacity_bytes
        self.media = bytearray(capacity_bytes)
        self.write_latency_ns = write_latency_ns
        self.bandwidth_bpns = bandwidth_bpns
        #: Highest byte offset ever landed (committed or torn); lets the
        #: log scanner distinguish "clean end" from "torn tail".
        self.hiwater = 0
        self.writes = 0
        self.bytes_written = 0
        self.torn_writes = 0
        self._inflight: Optional[tuple[int, bytes, int, int]] = None

    # -- cost model ----------------------------------------------------------
    def write_cost(self, nbytes: int) -> int:
        return self.write_latency_ns + int(nbytes / self.bandwidth_bpns)

    def read_cost(self, nbytes: int) -> int:
        # Reads on PM are cheaper than writes; model them at 2x bandwidth
        # with the same fixed latency.
        return self.write_latency_ns + int(nbytes / (2 * self.bandwidth_bpns))

    # -- write protocol ------------------------------------------------------
    def begin_write(self, offset: int, data: bytes) -> int:
        """Stake a write; returns its cost in ns.  One write in flight."""
        if self._inflight is not None:
            raise RuntimeError(f"{self.name}: overlapping PM writes")
        if offset < 0 or offset + len(data) > self.capacity:
            raise ValueError(
                f"{self.name}: write [{offset}, {offset + len(data)}) "
                f"outside capacity {self.capacity}")
        cost = self.write_cost(len(data))
        self._inflight = (offset, bytes(data), self.sim.now, cost)
        return cost

    def commit_write(self) -> None:
        """Land the in-flight write in full (no-op if already torn away)."""
        if self._inflight is None:
            return
        offset, data, _t0, _cost = self._inflight
        self._inflight = None
        self.media[offset:offset + len(data)] = data
        self.hiwater = max(self.hiwater, offset + len(data))
        self.writes += 1
        self.bytes_written += len(data)

    def crash(self) -> None:
        """Power-fail: land only an 8B-aligned prefix of any in-flight write.

        The landed fraction tracks how long the write had been in flight;
        a crash the instant after ``begin_write`` lands nothing, one just
        before the commit lands almost everything — but never the full
        payload (a full landing is what ``commit_write`` is for).
        """
        if self._inflight is None:
            return
        offset, data, t0, cost = self._inflight
        self._inflight = None
        elapsed = max(0, self.sim.now - t0)
        frac = min(elapsed, cost) / cost if cost else 0.0
        cut = (int(len(data) * frac) // 8) * 8
        cut = min(cut, (len(data) - 8) // 8 * 8) if len(data) > 8 else 0
        if cut <= 0:
            return
        self.media[offset:offset + cut] = data[:cut]
        self.hiwater = max(self.hiwater, offset + cut)
        self.torn_writes += 1
        self.bytes_written += cut

    # -- reads / maintenance -------------------------------------------------
    def read(self, offset: int, nbytes: int) -> bytes:
        return bytes(self.media[offset:offset + nbytes])

    def zero(self, offset: int, nbytes: int) -> None:
        """Scrub a range (torn-tail truncation during recovery)."""
        self.media[offset:offset + nbytes] = bytes(nbytes)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<PMDevice {self.name} {self.hiwater}/{self.capacity}B "
                f"writes={self.writes}>")
