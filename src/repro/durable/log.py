"""Per-shard write-behind durable log: group commit, watermark, replay.

Record encoding reuses :class:`repro.replication.log.LogRecord` — the
same bytes the replication ring carries — wrapped in an on-media frame
derived from the indicator discipline of ``protocol/indicator.py``:

    +-----------------------------+-------------+----------------------+
    | head u64                    | payload     | guardian u64         |
    | (HEAD_MAGIC << 32) | length | LogRecord   | BLAKE2b-64(payload)  |
    +-----------------------------+-------------+----------------------+

The head word is the *indicator* (a reader knows a frame was staked and
how long it claims to be); the guardian is a content checksum, so a torn
group-commit blob — the PM device lands only a prefix at crash — is
detected and truncated, while in-place corruption mid-log (guardian
fails but later media is non-zero) is reported distinctly and stops
replay.

The first :data:`WATERMARK_BYTES` of the device hold an A/B pair of
watermark slots recording ``flushed_seq``: the writer alternates slots
each flush so a crash mid-watermark-write always leaves one valid slot
(pick the higher epoch that checks out).

Appends are asynchronous and off the replication path: the shard calls
:meth:`DurableLog.append` at write-commit time, paying only a small CPU
cost; a flusher process group-commits everything pending after an aging
window (or once ``group_commit_records`` pile up).  Under
``ack_mode="ack_on_flush"`` the append also returns the batch's shared
flush event, which the shard joins into the same wait-set as the
replication ack — an acked write is then durable once *either* the
secondary ack or the log flush has landed.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..protocol import Op
from ..protocol.indicator import HEAD_MAGIC
from ..replication.log import LogRecord, RecordType
from ..sim import Event, Gate, Interrupt, MetricSet

if TYPE_CHECKING:  # pragma: no cover
    from ..config import SimConfig
    from ..core.store import ShardStore
    from ..sim import Simulator
    from .device import PMDevice

__all__ = ["DurableLog", "DurableScan", "LOG_BASE", "WATERMARK_BYTES",
           "read_watermark", "scan_log", "replay_into"]

_U64 = struct.Struct("<Q")
_WM = struct.Struct("<QQ")        # flushed_seq, epoch

#: u64 head + u64 guardian around each payload.
FRAME_OVERHEAD = 16
#: Two 24-byte watermark slots (A at 0, B at 32), padded to one line.
WATERMARK_BYTES = 64
_WM_SLOT_BYTES = 32
#: Log frames start here.
LOG_BASE = WATERMARK_BYTES


def _guardian(payload: bytes) -> int:
    return _U64.unpack(hashlib.blake2b(payload, digest_size=8).digest())[0]


def _frame(payload: bytes) -> bytes:
    head = (HEAD_MAGIC << 32) | len(payload)
    return _U64.pack(head) + payload + _U64.pack(_guardian(payload))


# ---------------------------------------------------------------------------
# Replay-side scanning
# ---------------------------------------------------------------------------

@dataclass
class DurableScan:
    """Result of validating a device's log area."""

    records: list[LogRecord] = field(default_factory=list)
    #: Bytes of valid frames past LOG_BASE (where a fresh log may resume).
    valid_bytes: int = 0
    #: Bytes discarded as a torn tail (crash mid-group-commit).
    torn_bytes: int = 0
    #: Non-torn guardian/head failures (corruption mid-log); replay stops.
    guardian_mismatches: int = 0
    #: Highest flushed_seq recoverable from the A/B watermark slots.
    watermark_seq: int = 0
    stop_reason: str = "clean_end"   # clean_end | torn_tail | guardian_mismatch

    @property
    def next_seq(self) -> int:
        return max([self.watermark_seq] + [r.seq for r in self.records])


def read_watermark(device: "PMDevice") -> tuple[int, int]:
    """(flushed_seq, epoch) from the best valid A/B watermark slot."""
    best = (0, 0)
    for slot in (0, _WM_SLOT_BYTES):
        raw = device.read(slot, _WM.size + 8)
        payload, guard = raw[:_WM.size], raw[_WM.size:]
        if _U64.unpack(guard)[0] != _guardian(payload):
            continue
        seq, epoch = _WM.unpack(payload)
        if epoch >= best[1]:
            best = (seq, epoch)
    return best


def scan_log(device: "PMDevice") -> DurableScan:
    """Walk frames from LOG_BASE, guardian-validating each.

    A failure whose suffix (through the device high-water mark) is all
    zero is a *torn tail* — the expected crash artifact — and is simply
    truncated.  A failure followed by non-zero media is corruption; the
    scan stops there and reports it distinctly.
    """
    scan = DurableScan()
    seq, _epoch = read_watermark(device)
    scan.watermark_seq = seq
    media = device.media
    hi = max(device.hiwater, LOG_BASE)
    off = LOG_BASE

    def _suffix_zero(start: int) -> bool:
        return not any(media[start:hi])

    while off + 8 <= device.capacity:
        head = _U64.unpack_from(media, off)[0]
        if head == 0:
            if not _suffix_zero(off):
                scan.torn_bytes = hi - off
                scan.stop_reason = "torn_tail"
            break
        magic, plen = head >> 32, head & 0xFFFFFFFF
        end = off + 8 + plen + 8
        if magic != HEAD_MAGIC or end > device.capacity:
            # A damaged head word can't be trusted for length; classify by
            # what follows the word itself.
            if _suffix_zero(off + 8):
                scan.torn_bytes = hi - off
                scan.stop_reason = "torn_tail"
            else:
                scan.guardian_mismatches += 1
                scan.stop_reason = "guardian_mismatch"
            break
        payload = bytes(media[off + 8:off + 8 + plen])
        guard = _U64.unpack_from(media, off + 8 + plen)[0]
        record: Optional[LogRecord] = None
        if guard == _guardian(payload):
            try:
                record = LogRecord.decode(payload)
            except ValueError:
                record = None
        if record is None:
            if _suffix_zero(end):
                scan.torn_bytes = hi - off
                scan.stop_reason = "torn_tail"
            else:
                scan.guardian_mismatches += 1
                scan.stop_reason = "guardian_mismatch"
            break
        if record.rtype is RecordType.DATA:
            scan.records.append(record)
        off = end
        scan.valid_bytes = off - LOG_BASE
    return scan


def replay_into(sim: "Simulator", device: "PMDevice", scan: DurableScan,
                store: "ShardStore", config: "SimConfig"):
    """Apply a scan's records in log order (generator; returns count).

    Versions ride each record and are force-applied, so a double replay
    is idempotent: re-applying record *n* rewrites the same version and
    never regresses a newer value (version monotonicity is preserved by
    log order, the same ordering contract the secondary merge path has).
    """
    dur = config.durability
    cost = device.read_cost(LOG_BASE + scan.valid_bytes)
    applied = 0
    for rec in scan.records:
        res = store.apply(rec.op, rec.key, rec.value, version=rec.version)
        cost += dur.replay_apply_ns + res.cost_ns
        applied += 1
    if cost:
        yield sim.timeout(cost)
    return applied


# ---------------------------------------------------------------------------
# Write-behind appender
# ---------------------------------------------------------------------------

class DurableLog:
    """Group-committed write-behind appender over one :class:`PMDevice`."""

    def __init__(self, sim: "Simulator", config: "SimConfig",
                 device: "PMDevice", metrics: Optional[MetricSet] = None,
                 name: str = "dlog", start_seq: int = 0,
                 tail: int = LOG_BASE, wm_epoch: int = 0) -> None:
        self.sim = sim
        self.config = config
        self.dur = config.durability
        self.device = device
        self.metrics = metrics or MetricSet(sim)
        self.name = name
        #: Last sequence number assigned to an append.
        self.seq = start_seq
        #: Highest sequence persisted (data + watermark landed).
        self.flushed_seq = start_seq
        self.tail = tail
        self.wm_epoch = wm_epoch
        self.pending: list[LogRecord] = []
        self.alive = False
        self._arm = Gate(sim)
        self._full = Gate(sim)
        self._flush_ev: Optional[Event] = None
        self._proc = None

    @property
    def ack_on_flush(self) -> bool:
        return self.dur.ack_mode == "ack_on_flush"

    # -- primary-side hook ---------------------------------------------------
    def append(self, op: Op, key: bytes, value: bytes,
               version: int) -> tuple[int, Optional[Event]]:
        """Stage one record; returns (cpu_cost_ns, optional flush event).

        Mirrors the replicator hook shape: the caller charges the CPU
        cost and, when an event comes back (``ack_on_flush``), joins it
        into the sweep's wait-set alongside replication acks.  All
        records staged before the next flush share one event.
        """
        self.seq += 1
        self.pending.append(LogRecord(RecordType.DATA, self.seq, op=op,
                                      key=key, value=value, version=version))
        if len(self.pending) == 1:
            self._arm.fire()
        if len(self.pending) >= self.dur.group_commit_records:
            self._full.fire()
        ev = None
        if self.ack_on_flush:
            if self._flush_ev is None:
                self._flush_ev = Event(self.sim)
            ev = self._flush_ev
        return self.dur.append_cost_ns, ev

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        self.alive = True
        self._proc = self.sim.process(self._flusher(),
                                      name=f"{self.name}.flush")

    def crash(self) -> None:
        """Shard death: tear any in-flight PM write, drop staged records.

        Staged-but-unflushed records are exactly the write-behind
        exposure; under ``ack_on_flush`` none of them were acked on the
        durability path (their flush event never fired), so losing them
        here cannot lose an acked write.
        """
        self.alive = False
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("crashed")
        self.device.crash()
        if self.pending:
            self.metrics.counter("durable.lost_pending").add(
                len(self.pending))
        self.pending = []
        self._flush_ev = None

    # -- flusher -------------------------------------------------------------
    def _flusher(self):
        try:
            while self.alive:
                if not self.pending:
                    yield self._arm.wait()
                    continue
                if len(self.pending) < self.dur.group_commit_records:
                    # Age the group: more appends coalesce into this flush.
                    yield self.sim.any_of([
                        self.sim.timeout(self.dur.group_commit_ns),
                        self._full.wait(),
                    ])
                batch, ev = self.pending, self._flush_ev
                self.pending, self._flush_ev = [], None
                blob = b"".join(_frame(r.encode()) for r in batch)
                if self.tail + len(blob) > self.device.capacity:
                    # Fail-soft: the replication path still protects these
                    # writes; count loudly so benches can hard-fail on it.
                    self.metrics.counter("durable.log_full").add(len(batch))
                    if ev is not None:
                        ev.succeed(None)
                    continue
                cost = self.device.begin_write(self.tail, blob)
                yield self.sim.timeout(cost)
                self.device.commit_write()
                self.tail += len(blob)
                self.flushed_seq = batch[-1].seq
                yield from self._write_watermark()
                self.metrics.counter("durable.flushes").add()
                self.metrics.counter("durable.records").add(len(batch))
                self.metrics.tally("durable.group_records").observe(
                    len(batch))
                if ev is not None:
                    ev.succeed(None)
        except Interrupt:
            pass

    def _write_watermark(self):
        self.wm_epoch += 1
        slot = _WM_SLOT_BYTES * (self.wm_epoch % 2)
        payload = _WM.pack(self.flushed_seq, self.wm_epoch)
        blob = payload + _U64.pack(_guardian(payload))
        cost = self.device.begin_write(slot, blob)
        yield self.sim.timeout(cost)
        self.device.commit_write()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<DurableLog {self.name} seq={self.seq} "
                f"flushed={self.flushed_seq} tail={self.tail}>")
