"""Index structures: compact signature table, chained baseline, lock-free map."""

from .chained import ChainedHashTable
from .compact import SLOTS_PER_BUCKET, CompactHashTable
from .hashing import bucket_index, hash64, signature16
from .lockfree import LockFreeMap

__all__ = [
    "CompactHashTable",
    "SLOTS_PER_BUCKET",
    "ChainedHashTable",
    "LockFreeMap",
    "hash64",
    "signature16",
    "bucket_index",
]
