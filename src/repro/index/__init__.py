"""Index structures: compact signature table, chained baseline, lock-free map."""

from .chained import ChainedHashTable
from .compact import SLOTS_PER_BUCKET, CompactHashTable
from .export import (
    BUCKET_EXPORT_BYTES,
    BucketExport,
    ExportedBucket,
    IndexHandshake,
    parse_bucket,
)
from .hashing import bucket_index, hash64, signature16
from .lockfree import LockFreeMap

__all__ = [
    "CompactHashTable",
    "SLOTS_PER_BUCKET",
    "ChainedHashTable",
    "BucketExport",
    "ExportedBucket",
    "IndexHandshake",
    "parse_bucket",
    "BUCKET_EXPORT_BYTES",
    "LockFreeMap",
    "hash64",
    "signature16",
    "bucket_index",
]
