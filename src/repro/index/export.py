"""Client-readable export of the compact hash index (HiStore-style).

The compact table's numpy buckets are server-private; this module mirrors
them into a registered :class:`~repro.rdma.memory.MemoryRegion` so clients
can traverse the index with one-sided Reads (bucket Read -> item Read, two
RTTs for a cold key, zero server CPU).

Export frame layout — one 64 B cacheline per bucket, eight little-endian
u64 words, atomic per simulated DMA instant exactly like the real system's
cacheline-granular PCIe reads:

``word0``  bits 0-6   occupancy filter (which of the 7 slots hold entries)
           bit 7      demote flag — chain not fully exportable, clients
                      must fall back to the message path instead of
                      concluding NOT_FOUND
           bits 8-31  24-bit seqlock version, even when stable; bumped on
                      every mutation that touches the bucket's chain
           bits 32-63 link: next export *frame index* + 1, 0 terminates
``word1-7``            ``sig16 << 48 | class_idx << 44 | offset``; the
                      4-bit size-class index tells the client how many
                      bytes to Read at ``offset`` (items are written at
                      size-class granularity, parsed by prefix).

Coherence contract (the part clients rely on):

* every mutation of a chain re-encodes and version-bumps **every** frame
  of that chain — ``_merge`` may move entries between any two buckets of
  a chain, so a multi-bucket NOT_FOUND is only believable if re-reading
  the *head* frame shows an unchanged version;
* a freed overflow bucket's frame is emptied and bumped before it can be
  reused by another chain, so a stale link lands on an empty frame with a
  moved version, never on another chain's entries presented as this one's.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..rdma.memory import MemoryRegion

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .compact import CompactHashTable

__all__ = [
    "BucketExport", "ExportedBucket", "IndexHandshake", "parse_bucket",
    "BUCKET_EXPORT_BYTES",
]

#: One export frame is one cacheline, like the table's own buckets.
BUCKET_EXPORT_BYTES = 64

_FILTER_MASK = 0x7F
_DEMOTE_BIT = 0x80
_VERSION_SHIFT = 8
_VERSION_MASK = (1 << 24) - 1
_LINK_SHIFT = 32
_SLOT_SIG_SHIFT = 48
_SLOT_CLASS_SHIFT = 44
_SLOT_CLASS_MASK = 0xF
_SLOT_OFFSET_MASK = (1 << 44) - 1

_FRAME = struct.Struct("<8Q")


@dataclass(frozen=True)
class IndexHandshake:
    """Connection-handshake advertisement of a shard's readable index."""

    export_rkey: int
    n_buckets: int
    n_frames: int
    arena_rkey: int
    arena_nbytes: int
    size_classes: tuple[int, ...]


@dataclass(frozen=True)
class ExportedBucket:
    """A decoded export frame, as seen by a traversing client."""

    version: int
    demote: bool
    #: Next export frame index, or None at end of chain.
    link: Optional[int]
    #: (slot_index, signature16, class_idx, arena_offset) per live slot.
    slots: tuple[tuple[int, int, int, int], ...]


def parse_bucket(data: bytes) -> ExportedBucket:
    """Decode a 64 B frame snapshot fetched by an RDMA Read."""
    if len(data) != BUCKET_EXPORT_BYTES:
        raise ValueError(
            f"bucket frame must be {BUCKET_EXPORT_BYTES}B, got {len(data)}"
        )
    words = _FRAME.unpack(data)
    header = words[0]
    filt = header & _FILTER_MASK
    link_raw = header >> _LINK_SHIFT
    slots = tuple(
        (
            i,
            words[1 + i] >> _SLOT_SIG_SHIFT,
            (words[1 + i] >> _SLOT_CLASS_SHIFT) & _SLOT_CLASS_MASK,
            words[1 + i] & _SLOT_OFFSET_MASK,
        )
        for i in range(7)
        if (filt >> i) & 1
    )
    return ExportedBucket(
        version=(header >> _VERSION_SHIFT) & _VERSION_MASK,
        demote=bool(header & _DEMOTE_BIT),
        link=(link_raw - 1) if link_raw else None,
        slots=slots,
    )


class BucketExport:
    """Server-side mirror of a :class:`CompactHashTable` in RDMA memory.

    ``class_index_of(offset)`` maps a live arena offset to its size-class
    index (what the slab allocator knows); entries whose offset or class
    cannot be encoded demote their frame rather than silently vanish.
    """

    def __init__(self, n_buckets: int, overflow_frames: int,
                 class_index_of: Callable[[int], int],
                 numa_domain: int = 0, name: str = "index"):
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        if overflow_frames < 0:
            raise ValueError("overflow_frames must be >= 0")
        self.n_buckets = n_buckets
        self.overflow_frames = overflow_frames
        self.n_frames = n_buckets + overflow_frames
        self.class_index_of = class_index_of
        self.region = MemoryRegion(
            self.n_frames * BUCKET_EXPORT_BYTES,
            numa_domain=numa_domain, name=f"{name}.export",
        )
        #: Observables for the bench / tests.
        self.mutations = 0          # sync_chain calls (one per index mutation)
        self.frames_written = 0     # frames re-encoded (version bumps)
        self.demoted_frames = 0     # frames flagged unexportable
        #: Frames touched by the most recent sync — feeds the shard CPU
        #: model (one extra cacheline write per frame).
        self.last_frames = 0

    # -- frame addressing -------------------------------------------------
    def frame_index(self, ref: int) -> Optional[int]:
        """Export frame index for a table bucket ref, None if past the cap."""
        if ref >= 0:
            return ref
        overflow_idx = -ref - 1
        if overflow_idx >= self.overflow_frames:
            return None
        return self.n_buckets + overflow_idx

    def frame_offset(self, frame_idx: int) -> int:
        return frame_idx * BUCKET_EXPORT_BYTES

    # -- seqlock helpers --------------------------------------------------
    def _bump_version(self, frame_idx: int) -> int:
        off = self.frame_offset(frame_idx)
        old = (self.region.read_u64(off) >> _VERSION_SHIFT) & _VERSION_MASK
        return (old + 2) & _VERSION_MASK

    def _write_frame(self, frame_idx: int, filt: int, demote: bool,
                     link_frame: Optional[int], slot_words: list[int]) -> None:
        header = (filt & _FILTER_MASK) \
            | (_DEMOTE_BIT if demote else 0) \
            | (self._bump_version(frame_idx) << _VERSION_SHIFT) \
            | ((link_frame + 1) << _LINK_SHIFT if link_frame is not None
               else 0)
        words = [header] + slot_words + [0] * (7 - len(slot_words))
        self.region.write(self.frame_offset(frame_idx), _FRAME.pack(*words))
        self.frames_written += 1
        self.last_frames += 1
        if demote:
            self.demoted_frames += 1

    # -- mutation hooks (called by CompactHashTable) ----------------------
    def sync_chain(self, table: "CompactHashTable", main_bucket: int) -> None:
        """Re-export every bucket of ``main_bucket``'s chain, bumping each
        frame's version.  Called after any put/remove touching the chain."""
        self.mutations += 1
        self.last_frames = 0
        refs = list(table._chain(main_bucket))
        frames = [self.frame_index(r) for r in refs]
        # The exportable prefix ends at the first frame past the overflow
        # cap; its predecessor carries the demote flag so clients stop
        # trusting the chain for NOT_FOUND conclusions.
        cut = len(refs)
        for pos, fidx in enumerate(frames):
            if fidx is None:
                cut = pos
                break
        for pos in range(cut):
            ref = refs[pos]
            fidx = frames[pos]
            header = table._header(ref)
            filt = header & _FILTER_MASK
            demote = False
            slot_words: list[int] = []
            out_filt = 0
            for i in range(7):
                if not (filt >> i) & 1:
                    continue
                word = table._slot(ref, i)
                sig = word >> 48
                offset = word & ((1 << 48) - 1)
                try:
                    cls = self.class_index_of(offset)
                except KeyError:
                    cls = -1
                if offset > _SLOT_OFFSET_MASK or not 0 <= cls <= _SLOT_CLASS_MASK:
                    # Entry not encodable: keep it out of the filter and
                    # flag the frame so clients never infer its absence.
                    demote = True
                    continue
                out_filt |= 1 << len(slot_words)
                slot_words.append(
                    (sig << _SLOT_SIG_SHIFT)
                    | (cls << _SLOT_CLASS_SHIFT)
                    | offset
                )
            link = frames[pos + 1] if pos + 1 < cut else None
            if pos + 1 < len(refs) and pos + 1 >= cut:
                # Chain continues into unexportable territory.
                demote = True
            self._write_frame(fidx, out_filt, demote, link, slot_words)

    def invalidate_frame(self, ref: int) -> None:
        """Empty + bump a freed overflow bucket's frame before reuse."""
        fidx = self.frame_index(ref)
        if fidx is None:
            return
        self.last_frames = 0
        self._write_frame(fidx, 0, False, None, [])

    def handshake(self, arena: MemoryRegion,
                  size_classes: tuple[int, ...]) -> Optional[IndexHandshake]:
        """Advertisement for the connection handshake (None if unregistered)."""
        if self.region.rkey is None or arena.rkey is None:
            return None
        return IndexHandshake(
            export_rkey=self.region.rkey,
            n_buckets=self.n_buckets,
            n_frames=self.n_frames,
            arena_rkey=arena.rkey,
            arena_nbytes=arena.nbytes,
            size_classes=tuple(size_classes),
        )
