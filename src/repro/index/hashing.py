"""Key hashing: 64-bit hashcodes and 16-bit slot signatures.

The same 64-bit hashcode drives three things, exactly as in the paper:
consistent-hashing placement (client side), bucket selection within a
shard, and the 16-bit signature stored in compact-table slots that filters
out full-key comparisons (§4.1.3).
"""

from __future__ import annotations

__all__ = ["hash64", "signature16", "bucket_index"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def hash64(key: bytes) -> int:
    """FNV-1a 64-bit hash with an avalanche finalizer.

    Plain FNV-1a keeps low-byte patterns visible in the low bits, which
    would correlate bucket choice with key suffixes; the xmx finalizer
    (from splitmix64) scrambles them.
    """
    h = _FNV_OFFSET
    for b in key:
        h ^= b
        h = (h * _FNV_PRIME) & _MASK64
    # splitmix64 finalizer
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (h ^ (h >> 31)) & _MASK64


def signature16(hashcode: int) -> int:
    """The 16-bit short hash stored in a compact-table slot."""
    return (hashcode >> 48) & 0xFFFF


def bucket_index(hashcode: int, n_buckets: int) -> int:
    """Main-branch bucket for a hashcode (``n_buckets`` power of two)."""
    return hashcode & (n_buckets - 1)
