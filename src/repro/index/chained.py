"""Baseline chained hash table for the §4.1.3 ablation.

The naive design the paper argues against: each bucket heads a linked list
of nodes, every node visited is a pointer dereference (one cacheline), and
every node visit requires a full key comparison because nothing filters
candidates.  API-compatible with :class:`~repro.index.compact.CompactHashTable`
so the shard can run on either.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from .hashing import bucket_index

__all__ = ["ChainedHashTable"]


class _Node:
    __slots__ = ("hashcode", "offset", "next")

    def __init__(self, hashcode: int, offset: int, nxt: Optional["_Node"]):
        self.hashcode = hashcode
        self.offset = offset
        self.next = nxt


class ChainedHashTable:
    """Separate-chaining table with per-op cacheline accounting."""

    def __init__(self, n_buckets: int, key_at: Callable[[int], bytes]):
        if n_buckets <= 0 or n_buckets & (n_buckets - 1):
            raise ValueError("n_buckets must be a positive power of two")
        self.n_buckets = n_buckets
        self.key_at = key_at
        self._heads: list[Optional[_Node]] = [None] * n_buckets
        self.entries = 0
        self.last_lines = 0
        self.last_keycmps = 0
        self.total_lines = 0
        self.total_keycmps = 0

    def _begin_op(self) -> None:
        self.last_lines = 0
        self.last_keycmps = 0

    def _walk(self, key: bytes, hashcode: int
              ) -> tuple[Optional[_Node], Optional[_Node]]:
        """Returns (node, predecessor); counts every dereference."""
        b = bucket_index(hashcode, self.n_buckets)
        self.last_lines += 1  # the bucket head array line
        self.total_lines += 1
        prev: Optional[_Node] = None
        node = self._heads[b]
        while node is not None:
            self.last_lines += 1
            self.total_lines += 1
            # The naive design §4.1.3 argues against: nothing filters
            # candidates, so every node visited costs a full key compare.
            self.last_keycmps += 1
            self.total_keycmps += 1
            if self.key_at(node.offset) == key:
                return node, prev
            prev, node = node, node.next
        return None, prev

    def lookup(self, key: bytes, hashcode: int) -> Optional[int]:
        self._begin_op()
        node, _ = self._walk(key, hashcode)
        return node.offset if node else None

    def put(self, key: bytes, hashcode: int, offset: int) -> Optional[int]:
        self._begin_op()
        node, _ = self._walk(key, hashcode)
        if node is not None:
            old = node.offset
            node.offset = offset
            return old
        b = bucket_index(hashcode, self.n_buckets)
        self._heads[b] = _Node(hashcode, offset, self._heads[b])
        self.entries += 1
        return None

    def remove(self, key: bytes, hashcode: int) -> Optional[int]:
        self._begin_op()
        node, prev = self._walk(key, hashcode)
        if node is None:
            return None
        if prev is None:
            self._heads[bucket_index(hashcode, self.n_buckets)] = node.next
        else:
            prev.next = node.next
        self.entries -= 1
        return node.offset

    def items(self) -> Iterator[tuple[int, int]]:
        for head in self._heads:
            node = head
            while node is not None:
                yield node.hashcode >> 48, node.offset
                node = node.next

    def __len__(self) -> int:
        return self.entries
