"""Lock-free map for the shared remote-pointer cache (§4.2.4).

Models the IBM lock-free hash table [Michael, SPAA'02] that co-located
HydraDB clients use to share one remote-pointer cache.  In the simulator a
machine's clients interleave deterministically, so correctness is trivial;
what matters is the *cost model*: a lock-free probe costs a near-constant
``lockfree_op_ns``, while the mutex-protected variant (the ablation
baseline) pays a contention term that grows with the number of clients
using the cache.

Capacity is enforced with CLOCK (second-chance) eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator, Optional

__all__ = ["LockFreeMap"]


class LockFreeMap:
    """A bounded hash map with CLOCK eviction and an access cost model."""

    LOCKFREE_OP_NS = 60
    LOCKED_BASE_NS = 150
    LOCKED_CONTENTION_NS = 90  # per concurrent sharer beyond the first

    def __init__(self, capacity: int, mode: str = "lockfree"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if mode not in ("lockfree", "locked"):
            raise ValueError(f"unknown mode {mode!r}")
        self.capacity = capacity
        self.mode = mode
        #: key -> value; OrderedDict order is the CLOCK hand sweep order.
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._refbit: dict[Hashable, bool] = {}
        self.sharers = 1
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- cost model --------------------------------------------------------
    def op_cost_ns(self) -> int:
        """CPU cost of one map operation under the current sharing level."""
        if self.mode == "lockfree":
            return self.LOCKFREE_OP_NS
        return (self.LOCKED_BASE_NS
                + self.LOCKED_CONTENTION_NS * max(0, self.sharers - 1))

    # -- map operations ------------------------------------------------------
    def get(self, key: Hashable) -> Optional[Any]:
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._refbit[key] = True
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data[key] = value
            self._refbit[key] = True
            return
        while len(self._data) >= self.capacity:
            self._evict_one()
        self._data[key] = value
        self._refbit[key] = False

    def remove(self, key: Hashable) -> Optional[Any]:
        self._refbit.pop(key, None)
        return self._data.pop(key, None)

    def _evict_one(self) -> None:
        # CLOCK: sweep from the oldest; referenced entries get a second
        # chance (refbit cleared, moved behind the hand).
        while True:
            key, value = self._data.popitem(last=False)
            if self._refbit.get(key, False):
                self._refbit[key] = False
                self._data[key] = value  # reinsert at the tail
            else:
                self._refbit.pop(key, None)
                self.evictions += 1
                return

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def keys(self) -> Iterator[Hashable]:
        return iter(self._data.keys())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
