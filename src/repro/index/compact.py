"""The compact cache-friendly hash table of §4.1.3.

The main branch is a contiguous array of 64-byte buckets, each one
cacheline: an 8-byte header (7 occupancy filter bits + a 56-bit link to a
dynamically allocated overflow bucket) followed by 7 slots of
``16-bit signature | 48-bit item offset``.  Lookups read one cacheline,
compare signatures, and only dereference the arena for a full key compare
when a signature matches.  After removals, tail overflow buckets are merged
back into earlier buckets of the chain and freed.

The table stores *offsets into the shard arena*, never data; the caller
supplies ``key_at(offset)`` for full-key comparison.  Per-operation cost
observables (``last_lines``, ``last_keycmps``) feed the shard's CPU model
and the compact-vs-chained ablation bench.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from .hashing import bucket_index, signature16

__all__ = ["CompactHashTable"]

SLOTS_PER_BUCKET = 7
_WORDS_PER_BUCKET = 8
_FILTER_MASK = 0x7F
_LINK_SHIFT = 8
_SIG_SHIFT = 48
_OFFSET_MASK = (1 << 48) - 1
_MAX_LINK = (1 << 56) - 1


class CompactHashTable:
    """Signature-filtered open hash table with 64 B buckets."""

    def __init__(self, n_buckets: int, key_at: Callable[[int], bytes]):
        if n_buckets <= 0 or n_buckets & (n_buckets - 1):
            raise ValueError("n_buckets must be a positive power of two")
        self.n_buckets = n_buckets
        self.key_at = key_at
        self._main = np.zeros(n_buckets * _WORDS_PER_BUCKET, dtype=np.uint64)
        # Overflow buckets live in a growable second array; link fields hold
        # (overflow_index + 1) so 0 means "no overflow".
        self._overflow = np.zeros(16 * _WORDS_PER_BUCKET, dtype=np.uint64)
        self._overflow_cap = 16
        self._overflow_free: list[int] = list(range(15, -1, -1))
        self.entries = 0
        self.overflow_buckets = 0
        #: Cachelines touched / full key compares by the most recent op.
        self.last_lines = 0
        self.last_keycmps = 0
        #: Lifetime counters for the ablation bench.
        self.total_lines = 0
        self.total_keycmps = 0
        #: Optional client-readable mirror (:class:`.export.BucketExport`):
        #: when attached, every mutation re-exports the touched chain.
        self.export = None

    def attach_export(self, export) -> None:
        """Mirror the table into ``export`` and keep it coherent."""
        self.export = export
        # An untouched bucket's frame is already the all-zero encoding of
        # an empty bucket; only occupied chains need an initial sync.
        for b in range(self.n_buckets):
            if self._header(b):
                export.sync_chain(self, b)

    def _sync(self, main_bucket: int) -> None:
        if self.export is not None:
            self.export.sync_chain(self, main_bucket)

    # -- word access -------------------------------------------------------
    def _words(self, bucket_ref: int) -> tuple[np.ndarray, int]:
        """(array, base word index) for a bucket reference.

        ``bucket_ref`` is ``("main", i)`` flattened: non-negative values are
        main buckets, negative values are ``-(overflow_index + 1)``.
        """
        if bucket_ref >= 0:
            return self._main, bucket_ref * _WORDS_PER_BUCKET
        return self._overflow, (-bucket_ref - 1) * _WORDS_PER_BUCKET

    def _header(self, ref: int) -> int:
        arr, base = self._words(ref)
        return int(arr[base])

    def _set_header(self, ref: int, value: int) -> None:
        arr, base = self._words(ref)
        arr[base] = value

    def _slot(self, ref: int, i: int) -> int:
        arr, base = self._words(ref)
        return int(arr[base + 1 + i])

    def _set_slot(self, ref: int, i: int, value: int) -> None:
        arr, base = self._words(ref)
        arr[base + 1 + i] = value

    @staticmethod
    def _link_of(header: int) -> int:
        """Next bucket ref encoded in a header (0 terminates)."""
        link = header >> _LINK_SHIFT
        return -link if link else 0

    def _chain(self, main_bucket: int) -> Iterator[int]:
        ref = main_bucket
        while True:
            yield ref
            link = self._link_of(self._header(ref))
            if link == 0:
                return
            ref = link

    # -- overflow management ---------------------------------------------
    def _alloc_overflow(self) -> int:
        if not self._overflow_free:
            old_cap = self._overflow_cap
            self._overflow_cap *= 2
            grown = np.zeros(self._overflow_cap * _WORDS_PER_BUCKET,
                             dtype=np.uint64)
            grown[: old_cap * _WORDS_PER_BUCKET] = self._overflow
            self._overflow = grown
            self._overflow_free.extend(
                range(self._overflow_cap - 1, old_cap - 1, -1)
            )
        idx = self._overflow_free.pop()
        if idx + 1 > _MAX_LINK:  # pragma: no cover - 56-bit bound
            raise OverflowError("overflow link exceeds 56 bits")
        self.overflow_buckets += 1
        base = idx * _WORDS_PER_BUCKET
        self._overflow[base:base + _WORDS_PER_BUCKET] = 0
        return -(idx + 1)

    def _free_overflow(self, ref: int) -> None:
        assert ref < 0
        self._overflow_free.append(-ref - 1)
        self.overflow_buckets -= 1
        if self.export is not None:
            # Empty + version-bump the frame *before* the index can be
            # reused by another chain, so stale links read as empty.
            self.export.invalidate_frame(ref)

    # -- operations --------------------------------------------------------
    def _begin_op(self) -> None:
        self.last_lines = 0
        self.last_keycmps = 0

    def _touch(self) -> None:
        self.last_lines += 1
        self.total_lines += 1

    def _keycmp(self) -> None:
        self.last_keycmps += 1
        self.total_keycmps += 1

    def _find(self, key: bytes, hashcode: int
              ) -> Optional[tuple[int, int, int]]:
        """Locate ``key``; returns (bucket_ref, slot_index, offset)."""
        sig = signature16(hashcode)
        for ref in self._chain(bucket_index(hashcode, self.n_buckets)):
            self._touch()
            header = self._header(ref)
            filt = header & _FILTER_MASK
            if not filt:
                continue
            for i in range(SLOTS_PER_BUCKET):
                if not (filt >> i) & 1:
                    continue
                word = self._slot(ref, i)
                if (word >> _SIG_SHIFT) != sig:
                    continue
                offset = word & _OFFSET_MASK
                self._keycmp()
                if self.key_at(offset) == key:
                    return ref, i, offset
        return None

    def lookup(self, key: bytes, hashcode: int) -> Optional[int]:
        """Arena offset of ``key``, or None."""
        self._begin_op()
        found = self._find(key, hashcode)
        return found[2] if found else None

    def put(self, key: bytes, hashcode: int, offset: int) -> Optional[int]:
        """Insert or replace; returns the previous offset if key existed."""
        if offset > _OFFSET_MASK:
            raise ValueError("offset exceeds 48 bits")
        self._begin_op()
        sig = signature16(hashcode)
        word = (sig << _SIG_SHIFT) | offset
        main = bucket_index(hashcode, self.n_buckets)
        found = self._find(key, hashcode)
        if found is not None:
            ref, i, old = found
            self._set_slot(ref, i, word)
            self._sync(main)
            return old
        # Not present: first free slot along the chain, extending if needed.
        last_ref = main
        for ref in self._chain(last_ref):
            self._touch()
            header = self._header(ref)
            filt = header & _FILTER_MASK
            for i in range(SLOTS_PER_BUCKET):
                if not (filt >> i) & 1:
                    self._set_slot(ref, i, word)
                    self._set_header(ref, header | (1 << i))
                    self.entries += 1
                    self._sync(main)
                    return None
            last_ref = ref
        new_ref = self._alloc_overflow()
        self._set_slot(new_ref, 0, word)
        self._set_header(new_ref, 0x01)
        tail_header = self._header(last_ref)
        self._set_header(last_ref,
                         (tail_header & _FILTER_MASK)
                         | ((-new_ref) << _LINK_SHIFT))
        self.entries += 1
        self._sync(main)
        return None

    def remove(self, key: bytes, hashcode: int) -> Optional[int]:
        """Delete ``key``; returns its offset or None. Merges tail buckets."""
        self._begin_op()
        found = self._find(key, hashcode)
        if found is None:
            return None
        ref, i, offset = found
        header = self._header(ref)
        self._set_header(ref, header & ~(1 << i))
        self._set_slot(ref, i, 0)
        self.entries -= 1
        main = bucket_index(hashcode, self.n_buckets)
        self._merge(main)
        self._sync(main)
        return offset

    def _merge(self, main_bucket: int) -> None:
        """Fold tail overflow entries into free slots of earlier buckets.

        Repeats while the chain's last bucket can be emptied; this is the
        "merge multiple buckets after remove" behaviour from §4.1.3.
        """
        while True:
            chain = list(self._chain(main_bucket))
            if len(chain) < 2:
                return
            tail = chain[-1]
            tail_header = self._header(tail)
            tail_filt = tail_header & _FILTER_MASK
            tail_slots = [i for i in range(SLOTS_PER_BUCKET)
                          if (tail_filt >> i) & 1]
            # Free slots available in the rest of the chain.
            homes: list[tuple[int, int]] = []
            for ref in chain[:-1]:
                filt = self._header(ref) & _FILTER_MASK
                homes.extend(
                    (ref, i)
                    for i in range(SLOTS_PER_BUCKET)
                    if not (filt >> i) & 1
                )
            if len(homes) < len(tail_slots):
                return  # cannot empty the tail yet
            for slot_i, (home_ref, home_i) in zip(tail_slots, homes):
                self._set_slot(home_ref, home_i, self._slot(tail, slot_i))
                home_header = self._header(home_ref)
                self._set_header(home_ref, home_header | (1 << home_i))
            # Unlink and free the tail.
            prev = chain[-2]
            prev_header = self._header(prev)
            self._set_header(prev, prev_header & _FILTER_MASK)
            self._free_overflow(tail)

    def items(self) -> Iterator[tuple[int, int]]:
        """Yield (signature, offset) of every entry — migration/debug."""
        for b in range(self.n_buckets):
            for ref in self._chain(b):
                header = self._header(ref)
                filt = header & _FILTER_MASK
                for i in range(SLOTS_PER_BUCKET):
                    if (filt >> i) & 1:
                        word = self._slot(ref, i)
                        yield word >> _SIG_SHIFT, word & _OFFSET_MASK

    def __len__(self) -> int:
        return self.entries
