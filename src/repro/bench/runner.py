"""Closed-loop YCSB driver over HydraDB or a baseline store.

Mirrors the paper's methodology (§6): requests are pre-generated and
loaded before measurement; every client runs a synchronous closed loop
(one outstanding request — the arithmetic behind the paper's
latency/throughput figures); the first ``warmup_fraction`` of each
client's stream is excluded from latency *and* the throughput window.

Record preload happens out-of-band (directly into the stores, costing no
simulated time), matching YCSB's separate load phase.
"""

from __future__ import annotations

import gc
import sys
from typing import Callable, Optional, Sequence

from ..core import HydraCluster
from ..protocol import Op
from ..sim import Simulator, Tally, kernel_snapshot
from ..workloads.ycsb import OP_GET, YcsbWorkload
from .stats import RunResult, summarize

__all__ = ["drive_ycsb", "preload_hydra", "preload_dicts", "run_hydra_ycsb"]


def preload_hydra(cluster: HydraCluster, workload: YcsbWorkload) -> None:
    """Load phase: install every record directly into its owning shard."""
    ks = workload.keyspace
    for i in range(workload.spec.n_records):
        key = ks.key(i)
        shard = cluster.route(key)
        result = shard.store_for_key(key).upsert(key, ks.value(i), Op.PUT)
        if result.status.name != "OK":
            raise RuntimeError(f"preload failed for record {i}: "
                               f"{result.status.name}")


def preload_dicts(stores: Sequence[dict], shard_of: Callable[[bytes], int],
                  workload: YcsbWorkload) -> None:
    """Load phase for dict-backed baselines (memcached/redis/ramcloud)."""
    ks = workload.keyspace
    for i in range(workload.spec.n_records):
        key = ks.key(i)
        stores[shard_of(key)][key] = ks.value(i)


def drive_ycsb(sim: Simulator, clients: Sequence, workload: YcsbWorkload,
               name: str = "", warmup_fraction: float = 0.1,
               extras: Optional[dict] = None) -> RunResult:
    """Run the transaction phase and collect the paper's metrics.

    ``clients`` may be HydraDB clients or baseline clients — anything with
    generator ``get(key)`` / ``update(key, value)`` methods.
    """
    ks = workload.keyspace
    get_lat = Tally("get")
    upd_lat = Tally("update")
    windows: list[tuple[int, int, int]] = []  # (warm_t, end_t, measured)

    def client_proc(idx: int, client):
        ops, key_idx = workload.slice_for(idx, len(clients))
        n = len(ops)
        warmup = int(n * warmup_fraction)
        warm_t = sim.now
        measured = 0
        for j in range(n):
            if j == warmup:
                warm_t = sim.now
            key = ks.key(int(key_idx[j]))
            t0 = sim.now
            if ops[j] == OP_GET:
                value = yield from client.get(key)
                if value is None or len(value) != ks.value_len:
                    raise AssertionError(
                        f"GET returned bad value for preloaded key {key!r}")
                if j >= warmup:
                    get_lat.observe(sim.now - t0)
            else:
                yield from client.update(key, ks.value(int(key_idx[j])))
                if j >= warmup:
                    upd_lat.observe(sim.now - t0)
            if j >= warmup:
                measured += 1
        windows.append((warm_t, sim.now, measured))

    procs = [sim.process(client_proc(i, c), name=f"ycsb.c{i}")
             for i, c in enumerate(clients)]
    # Timed section runs with the collector parked: a GC pass mid-run
    # adds wall-clock jitter without touching simulated results, and the
    # allocation delta below would otherwise under-count churn.
    gc.collect()
    blocks_before = sys.getallocatedblocks()
    gc.disable()
    try:
        sim.run(until=sim.all_of(procs))
    finally:
        gc.enable()
    alloc_delta = sys.getallocatedblocks() - blocks_before
    start = max(w for w, _e, _m in windows)
    end = max(e for _w, e, _m in windows)
    measured = sum(m for _w, _e, m in windows)
    result = RunResult(
        name=name or workload.spec.name,
        measured_ops=measured,
        duration_ns=max(1, end - start),
        get_latency=summarize(get_lat),
        update_latency=summarize(upd_lat),
        extras=extras or {},
    )
    result.extras.setdefault("kernel", kernel_snapshot(sim))
    result.extras.setdefault("allocated_blocks_delta", alloc_delta)
    return result


def run_hydra_ycsb(cluster: HydraCluster, workload: YcsbWorkload,
                   n_clients: int, clients_per_machine: Optional[int] = None,
                   name: str = "",
                   warmup_fraction: float = 0.1) -> RunResult:
    """Convenience wrapper: build clients, preload, start, drive."""
    preload_hydra(cluster, workload)
    if not cluster._started:
        cluster.start()
    n_machines = len(cluster.client_machines)
    clients = []
    for i in range(n_clients):
        if clients_per_machine:
            machine_idx = min(i // clients_per_machine, n_machines - 1)
        else:
            machine_idx = i % n_machines
        clients.append(cluster.client(machine_idx))
    result = drive_ycsb(cluster.sim, clients, workload, name=name,
                        warmup_fraction=warmup_fraction)
    result.extras.setdefault("rptr", cluster.rptr_stats())
    return result
