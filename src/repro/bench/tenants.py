"""Multi-tenant fairness bench: aggressor vs well-behaved tenant, one shard.

The scenario the QoS layer exists for: two tenants share one client
machine (one transport, one connection, one slot pool) against a single
shard, with a ~100:1 offered-load skew.  Cells cover the three QoS
levers and the window autotuner:

* ``w1`` / ``w16`` — single tenant, closed-loop GET bursts at a static
  in-flight window of 1 / 16 (the knob AIMD replaces).
* ``auto`` — same workload, but the client starts at window 1 and
  ``qos.autotune`` (AIMD) must climb to the best static window on its
  own: throughput within a few percent of ``max(w1, w16)``.
* ``solo`` — the paced victim alone (one GET per 50 us): its offered
  load and no-contention p99, the latency baselines.
* ``share-nofq`` / ``share-fq`` / ``share-fq-w4`` — closed-loop victim
  (one proc, batch 16) vs closed-loop aggressor (two procs, batch 32).
  Without fair queueing the aggressor's 4x pending-op pressure wins the
  slot races and the victim's throughput share collapses below its fair
  half (Jain < 0.9, the contrast row); DRR restores the weighted share
  (Jain >= 0.9).
* ``throttle`` — paced victim + *admission-shaped* aggressor
  (``qos.rate_ops`` cap, small burst).  Fair queueing alone cannot
  protect tail latency under a saturating aggressor (the shared server
  queue is FIFO); shaping the aggressor leaves headroom, and the
  victim's p99 must stay <= 2x its no-aggressor baseline while the
  aggressor's client-side throttle counter trips (typed, counted —
  never a silent stall).
* ``shed`` — paced victim + unshaped aggressor with the server-side
  per-tenant occupancy cap (``qos.server_shed_slots``): the shard sheds
  the aggressor's surplus as cheap THROTTLED responses the retry engine
  absorbs (shed counter > 0).

Fairness is scored with Jain's index over *demand-satisfaction* shares:
``x_i = min(1, served_i / fair_i)`` where the fair shares come from
weighted water-filling (a tenant is never owed more than it offered,
and unused share spills to the hungry).  A bit-greedy aggressor
therefore does not hurt the score as long as the victim gets its
weighted share.

``BENCH_tenants.json`` records the cells across PRs;
``python -m repro.bench.validate`` enforces the acceptance floors.
"""

from __future__ import annotations

import json
import math

from ..config import QosConfig, SimConfig
from ..core import HydraCluster
from ..protocol import Op

__all__ = ["tenant_fairness", "write_tenants_artifact"]

#: Default paced-victim op count at scale=1.0.
BASE_VICTIM_OPS = 2_000
_US = 1_000
_THINK_NS = 50 * _US       # paced victim: one GET per 50 us
_VICTIM_BATCH = 16         # closed-loop victim batch (share-* cells)
_AGG_BATCH = 32            # aggressor multi-op batch
_AGG_VALUE = 512           # aggressor PUT payload (keeps slots busy)
_N_KEYS = 256


def _jain(shares: list[float]) -> float:
    """Jain's fairness index over demand-satisfaction shares."""
    if not shares:
        return 1.0
    num = sum(shares) ** 2
    den = len(shares) * sum(x * x for x in shares)
    return num / den if den else 1.0


def _fair_shares(offered: list[float], weights: list[float],
                 capacity: float) -> list[float]:
    """Weighted max-min (water-filling) fair allocation of ``capacity``.

    Tenants whose demand sits below their weighted share keep their
    demand; the surplus is re-divided among the still-hungry by weight.
    """
    n = len(offered)
    alloc = [0.0] * n
    active = list(range(n))
    cap = capacity
    while active and cap > 1e-9:
        wsum = sum(weights[i] for i in active)
        quantum = cap / wsum
        satisfied = [i for i in active if offered[i] <= quantum * weights[i]]
        if not satisfied:
            for i in active:
                alloc[i] = quantum * weights[i]
            return alloc
        for i in satisfied:
            alloc[i] = offered[i]
            cap -= offered[i]
            active.remove(i)
    return alloc


def _cell_jain(victim_kops: float, agg_kops: float, offered_v: float,
               offered_a: float, weights: list[float]) -> float:
    """Jain over demand-satisfaction: each tenant's share is what it was
    served over its water-filling fair allocation, where a tenant's
    demand is capped by its own offered load (an admission-shaped
    aggressor *demands* only its token rate — holding it to that rate is
    fair, not unfair)."""
    total = victim_kops + agg_kops
    fair = _fair_shares([min(offered_v, total), min(offered_a, total)],
                        weights, total)
    shares = [min(1.0, victim_kops / fair[0]) if fair[0] else 1.0,
              min(1.0, agg_kops / fair[1]) if fair[1] else 1.0]
    return _jain(shares)


def _base_config(*, window: int = 16, **qos) -> SimConfig:
    """All-message-path config: 16 slots, caches off."""
    return SimConfig().with_overrides(
        hydra={"msg_slots_per_conn": 16},
        client={"max_inflight_per_conn": window,
                "rptr_cache_enabled": False},
        traversal={"enabled": False},
        qos=qos,
    )


def _new_cluster(cfg: SimConfig) -> HydraCluster:
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    for i in range(_N_KEYS):
        key = f"k{i:06d}".encode()
        cluster.route(key).store_for_key(key).upsert(key, b"v" * 64, Op.PUT)
    cluster.start()
    return cluster


def _paced_victim(cluster, client, n_ops, lat_ns, done):
    """Open-loop paced GETs on an absolute schedule (latency does not
    shrink the offered load)."""
    keys = [f"k{i:06d}".encode() for i in range(_N_KEYS)]
    t_next = cluster.sim.now
    for i in range(n_ops):
        t_next += _THINK_NS
        if t_next > cluster.sim.now:
            yield cluster.sim.timeout(t_next - cluster.sim.now)
        t0 = cluster.sim.now
        yield from client.get(keys[i % _N_KEYS])
        lat_ns.append(cluster.sim.now - t0)
    done["at"] = cluster.sim.now


def _closed_victim(cluster, client, served, done, horizon_ns):
    """Closed-loop batched GETs until the horizon (share-* cells)."""
    keys = [f"k{i:06d}".encode() for i in range(_N_KEYS)]
    j = 0
    while cluster.sim.now < horizon_ns:
        batch = [keys[(j + k) % _N_KEYS] for k in range(_VICTIM_BATCH)]
        yield from client.get_many(batch)
        j += _VICTIM_BATCH
        if cluster.sim.now < horizon_ns:
            served["n"] += _VICTIM_BATCH
    done["at"] = cluster.sim.now


def _aggressor(cluster, client, served, done, horizon_ns=None):
    """Closed-loop batched churn until the victim finishes."""
    keys = [f"a{i:06d}".encode() for i in range(_N_KEYS)]
    value = b"w" * _AGG_VALUE
    j = 0
    while "at" not in done:
        pairs = [(keys[(j + k) % _N_KEYS], value) for k in range(_AGG_BATCH)]
        yield from client.put_many(pairs)
        j += _AGG_BATCH
        if "at" not in done and (horizon_ns is None
                                 or cluster.sim.now < horizon_ns):
            served["n"] += _AGG_BATCH


def _single_aggressor(cluster, client, served, done, stagger_ns=0):
    """Closed-loop single-op churn: each PUT passes admission on its
    own, so a ``qos.rate_ops`` cap truly paces the wire (a batched
    aggressor would admit the whole batch, then post it at once).

    ``stagger_ns`` phase-shifts the first op.  The token bucket then
    grants on a fixed beat from that instant; an off-grid stagger keeps
    the deterministic sim's shaped aggressor from beating in lockstep
    with the paced victim's schedule (a real cluster gets this phase
    noise for free)."""
    keys = [f"a{i:06d}".encode() for i in range(_N_KEYS)]
    value = b"w" * _AGG_VALUE
    if stagger_ns:
        yield cluster.sim.timeout(stagger_ns)
    j = 0
    while "at" not in done:
        yield from client.put(keys[j % _N_KEYS], value)
        j += 1
        if "at" not in done:
            served["n"] += 1


def _burst_driver(cluster, client, n_ops, elapsed):
    """Closed-loop GET bursts (the window-tuning workload)."""
    keys = [f"k{i:06d}".encode() for i in range(_N_KEYS)]
    t0 = cluster.sim.now
    for s in range(0, n_ops, _AGG_BATCH):
        batch = [keys[(s + k) % _N_KEYS] for k in range(_AGG_BATCH)]
        yield from client.get_many(batch)
    elapsed["ns"] = cluster.sim.now - t0


def _row(cell, kops, victim_kops, agg_kops, p99_us, jain, throttled, shed):
    return {"cell": cell, "kops": kops, "victim_kops": victim_kops,
            "agg_kops": agg_kops, "victim_p99_us": p99_us, "jain": jain,
            "throttled": throttled, "shed": shed}


def _window_cell(cell: str, n_ops: int) -> dict:
    """Single-tenant window cell: static w1/w16 or AIMD autotune.

    The ``auto`` cell deliberately starts from the *worst* static window
    (1): the AIMD controller has to discover the deeper window itself
    (+1 per clean probe interval) and hold it there, so matching the
    best static cell is a genuine search result, not an initial value.
    """
    if cell == "auto":
        cfg = _base_config(window=1)
        cluster = _new_cluster(cfg)
        client = cluster.client(tenant="tuner", qos=QosConfig(
            autotune=True, aimd_min_window=1, aimd_max_window=16,
            aimd_rtt_inflation=32.0, aimd_probe_interval=4))
    else:
        window = {"w1": 1, "w16": 16}[cell]
        cluster = _new_cluster(_base_config(window=window))
        client = cluster.client()
    elapsed: dict[str, int] = {}
    cluster.run(_burst_driver(cluster, client, n_ops, elapsed))
    kops = n_ops / max(1, elapsed["ns"]) * 1e6
    return _row(cell, kops, kops, 0.0, 0.0, 1.0, 0, 0)


def _metrics_counters(cluster) -> tuple[int, int]:
    m = cluster.metrics
    throttled = (m.counter("client.tenant.agg.throttled").value
                 + m.counter("client.tenant.victim.throttled").value)
    return throttled, m.counter("shard.shed_ops").value


def _p99_us(lat_ns: list[int]) -> float:
    if not lat_ns:
        return 0.0
    lat = sorted(lat_ns)
    return lat[min(len(lat) - 1, int(len(lat) * 0.99))] / 1_000.0


def _paced_cell(cell: str, n_ops: int, offered_kops: float,
                victim_qos: QosConfig, agg_qos: QosConfig | None,
                shed_slots: int = 0, single_op_agg: bool = False) -> dict:
    """Paced victim (+ optional aggressor): the latency cells."""
    cfg = _base_config(server_shed_slots=shed_slots)
    cluster = _new_cluster(cfg)
    victim = cluster.client(tenant="victim", qos=victim_qos)
    lat_ns: list[int] = []
    done: dict[str, int] = {}
    agg_served = {"n": 0}
    procs = [_paced_victim(cluster, victim, n_ops, lat_ns, done)]
    weights = [victim_qos.weight]
    if agg_qos is not None:
        agg = cluster.client(tenant="agg", qos=agg_qos)
        if single_op_agg:
            procs.append(_single_aggressor(cluster, agg, agg_served, done,
                                           stagger_ns=23 * _US))
            procs.append(_single_aggressor(cluster, agg, agg_served, done,
                                           stagger_ns=31 * _US))
        else:
            procs.append(_aggressor(cluster, agg, agg_served, done))
            procs.append(_aggressor(cluster, agg, agg_served, done))
        weights.append(agg_qos.weight)
    t0 = cluster.sim.now
    cluster.run(*procs)
    span = max(1, done["at"] - t0)
    victim_kops = n_ops / span * 1e6
    agg_kops = agg_served["n"] / span * 1e6
    offered_a = math.inf
    if agg_qos is not None and agg_qos.rate_ops > 0:
        offered_a = agg_qos.rate_ops / 1e3  # ops/s -> kops
    jain = (_cell_jain(victim_kops, agg_kops, offered_kops, offered_a,
                       weights)
            if agg_qos is not None else 1.0)
    throttled, shed = _metrics_counters(cluster)
    return _row(cell, victim_kops + agg_kops, victim_kops, agg_kops,
                _p99_us(lat_ns), jain, throttled, shed)


def _share_cell(cell: str, horizon_ns: int, fair_queueing: bool,
                victim_weight: float = 1.0) -> dict:
    """Closed-loop victim vs closed-loop aggressor: the Jain cells."""
    cfg = _base_config()
    cluster = _new_cluster(cfg)
    victim = cluster.client(tenant="victim", qos=QosConfig(
        fair_queueing=fair_queueing, weight=victim_weight))
    agg = cluster.client(tenant="agg", qos=QosConfig(
        fair_queueing=fair_queueing))
    done: dict[str, int] = {}
    v_served, a_served = {"n": 0}, {"n": 0}
    t0 = cluster.sim.now
    horizon = t0 + horizon_ns
    cluster.run(
        _closed_victim(cluster, victim, v_served, done, horizon),
        _aggressor(cluster, agg, a_served, done, horizon_ns=horizon),
        _aggressor(cluster, agg, a_served, done, horizon_ns=horizon),
    )
    span = max(1, done["at"] - t0)
    victim_kops = v_served["n"] / span * 1e6
    agg_kops = a_served["n"] / span * 1e6
    # Both tenants are closed-loop: unbounded demand on each side, so
    # the fair split is purely the weighted share of what was served.
    jain = _cell_jain(victim_kops, agg_kops, math.inf, math.inf,
                      [victim_weight, 1.0])
    throttled, shed = _metrics_counters(cluster)
    return _row(cell, victim_kops + agg_kops, victim_kops, agg_kops,
                0.0, jain, throttled, shed)


def tenant_fairness(scale: float = 1.0) -> list[dict]:
    """Run every cell; see the module docstring for the cell catalog."""
    n_ops = max(200, int(BASE_VICTIM_OPS * scale))
    burst_ops = 4 * n_ops
    horizon_ns = n_ops * 25 * _US  # share cells: half the paced runtime
    rows = [
        _window_cell("w1", burst_ops),
        _window_cell("w16", burst_ops),
        _window_cell("auto", burst_ops),
        _paced_cell("solo", n_ops, 0.0, QosConfig(), None),
    ]
    offered = rows[-1]["victim_kops"]
    rows.append(_share_cell("share-nofq", horizon_ns, fair_queueing=False))
    rows.append(_share_cell("share-fq", horizon_ns, fair_queueing=True))
    rows.append(_share_cell("share-fq-w4", horizon_ns, fair_queueing=True,
                            victim_weight=4.0))
    # Admission-shape the aggressor to a quarter of the victim's demand:
    # fair queueing keeps the slot order honest, the token bucket keeps
    # the server unsaturated, and the victim's p99 stays near solo.
    rows.append(_paced_cell(
        "throttle", n_ops, offered, QosConfig(),
        QosConfig(rate_ops=offered * 250.0, burst=1),
        single_op_agg=True))
    rows.append(_paced_cell(
        "shed", n_ops, offered, QosConfig(), QosConfig(),
        shed_slots=8))
    solo_p99 = next(r for r in rows if r["cell"] == "solo")["victim_p99_us"]
    best_static = max(r["kops"] for r in rows if r["cell"] in ("w1", "w16"))
    for row in rows:
        row["solo_p99_us"] = solo_p99
        row["best_static_kops"] = best_static
    return rows


def write_tenants_artifact(rows: list[dict],
                           path: str = "BENCH_tenants.json") -> str:
    """Dump the fairness cells as a machine-readable perf artifact."""
    payload = {
        "experiment": "tenant_fairness",
        "description": "multi-tenant fair queueing / admission control: "
                       "well-behaved tenant vs closed-loop aggressor "
                       "sharing one transport against one shard (Jain's "
                       "index over weighted demand-satisfaction, victim "
                       "p99 vs solo, AIMD vs static windows)",
        "unit": "kops",
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path
