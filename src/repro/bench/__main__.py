"""Command-line experiment harness: ``python -m repro.bench <figure> ...``.

Examples::

    python -m repro.bench fig9              # one figure
    python -m repro.bench fig12out fig12up  # several
    python -m repro.bench all --scale 1.0   # everything (slow)
    python -m repro.bench fig13 --out results.txt

Prints the same rows/series the paper reports; EXPERIMENTS.md records a
reference run of this harness.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from .experiments import (
    ablation_ack_interval,
    chaos_soak,
    failover_availability,
    ablation_lease_length,
    ablation_sleep_backoff,
    ablation_transport,
    ablation_ud_messaging,
    ablation_value_size,
    ablation_subsharding,
    ablation_hash_table,
    ablation_numa,
    ablation_rptr_sharing,
    fig2_mapreduce,
    fig3_sensemaking,
    fig9_overall,
    fig10_rdma_choices,
    fig11_hit_analysis,
    fig12_scale_out,
    fig12_scale_up,
    fig13_replication,
    inflight_sweep,
    multiget_sweep,
    recovery_dualfail,
    server_sweep,
    write_chaos_artifact,
    write_failover_artifact,
    write_inflight_artifact,
    write_multiget_artifact,
    write_recovery_artifact,
    write_sweep_artifact,
)
from .report import format_table
from .scale import scale_matrix, write_scale_artifact
from .simcore import simcore_kernel, write_simcore_artifact
from .tenants import tenant_fairness, write_tenants_artifact

EXPERIMENTS: dict[str, tuple[str, Callable[..., list[dict]], bool]] = {
    # name -> (title, function, takes_scale)
    "fig2": ("Fig. 2 — MapReduce acceleration (speedups vs in-memory HDFS)",
             fig2_mapreduce, True),
    "fig3": ("Fig. 3 — G2 Sensemaking: events/s vs engines",
             fig3_sensemaking, True),
    "fig9": ("Fig. 9 — HydraDB vs Memcached/Redis/RAMCloud (6 YCSB mixes)",
             fig9_overall, True),
    "fig10": ("Fig. 10 — incremental RDMA design choices",
              fig10_rdma_choices, True),
    "fig11": ("Fig. 11 — remote-pointer hit analysis",
              fig11_hit_analysis, True),
    "fig12out": ("Fig. 12(a,b) — scale-out 1..7 machines",
                 fig12_scale_out, True),
    "fig12up": ("Fig. 12(c,d) — scale-up 1..8 shards",
                fig12_scale_up, True),
    "fig13": ("Fig. 13 — replication protocol latency overhead",
              fig13_replication, True),
    "ab-table": ("Ablation — compact vs chained hash table",
                 ablation_hash_table, True),
    "ab-numa": ("Ablation — NUMA placement", ablation_numa, True),
    "ab-sharing": ("Ablation — shared vs exclusive rptr cache",
                   ablation_rptr_sharing, True),
    "ab-subshard": ("Ablation — sub-sharding vs plain shards (§6.3)",
                    ablation_subsharding, True),
    "ab-sleep": ("Ablation — sleep backoff vs busy polling (§4.2.1)",
                 ablation_sleep_backoff, True),
    "ab-lease": ("Ablation — lease length trade-off (§4.2.3 / C-Hint)",
                 ablation_lease_length, True),
    "ab-transport": ("Ablation — HydraDB-RDMA vs HydraDB-TCP",
                     ablation_transport, True),
    "ab-ud": ("Ablation — RC messaging vs HERD-style UD (§3)",
              lambda scale=None: ablation_ud_messaging(), False),
    "ab-valsize": ("Ablation — value size sweep (§6 large items)",
                   lambda scale=None: ablation_value_size(), False),
    "ab-ack": ("Ablation — replication ack interval",
               lambda scale=None: ablation_ack_interval(), False),
    "inflight": ("Pipelined client — throughput vs in-flight window",
                 inflight_sweep, True),
    "multiget": ("Batched one-sided GET fan-out — message vs hybrid vs "
                 "mixed vs cold/mixed-hit index traversal",
                 multiget_sweep, True),
    "failover": ("Availability — blackout + recovered throughput after a "
                 "primary kill", failover_availability, True),
    "recovery": ("Durable-log recovery — correlated primary+secondary "
                 "kill, replay from the PM write-behind log per ack mode",
                 recovery_dualfail, True),
    "server_sweep": ("Server sweep scalability — CPU ns/op vs connections "
                     "(occupancy word / ready hints / resp batching)",
                     server_sweep, True),
    "chaos": ("Chaos soak — seeded fault storms vs the resilience "
              "contract (acked writes, guardian words, typed errors)",
              chaos_soak, True),
    "simcore": ("Kernel microbench — two-tier calendar + now-queue + "
                "pooled timers vs the seed heapq event loop",
                simcore_kernel, True),
    "tenants": ("Multi-tenant QoS — fair queueing, admission throttling, "
                "server shed, AIMD autotune (victim vs aggressor)",
                tenant_fairness, True),
    "scale": ("Fig. 12 at cluster scale — 64 servers x 2048 clients, "
              "flat hot paths + calendar kernel vs the seed stack",
              scale_matrix, True),
}

#: Experiments that also emit a machine-readable perf artifact (one per
#: repo checkout; re-run the matching ``make bench-*`` target to refresh).
ARTIFACTS: dict[str, Callable[[list[dict]], str]] = {
    "inflight": write_inflight_artifact,
    "multiget": write_multiget_artifact,
    "failover": write_failover_artifact,
    "recovery": write_recovery_artifact,
    "server_sweep": write_sweep_artifact,
    "chaos": write_chaos_artifact,
    "simcore": write_simcore_artifact,
    "tenants": write_tenants_artifact,
    "scale": write_scale_artifact,
}


def _profile_table(pr, title: str) -> str:
    """Top-20 cumulative-time hotspots of one profiled experiment."""
    import pstats
    stats = pstats.Stats(pr)
    entries = sorted(stats.stats.items(), key=lambda kv: kv[1][3],
                     reverse=True)[:20]
    rows = []
    for (filename, lineno, func), (_cc, ncalls, tt, ct, _callers) in entries:
        parts = filename.replace("\\", "/").rsplit("/", 3)
        where = "/".join(parts[-2:]) if len(parts) > 1 else filename
        rows.append({
            "function": f"{where}:{lineno}({func})",
            "calls": ncalls,
            "tottime_ns": int(tt * 1e9),
            "cumtime_ns": int(ct * 1e9),
        })
    return format_table(rows, title=title)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the HydraDB paper's figures.")
    parser.add_argument("figures", nargs="+",
                        help=f"one of: {', '.join(EXPERIMENTS)}, or 'all'")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="fraction of the 10k-op default per run "
                             "(default 0.5)")
    parser.add_argument("--out", type=str, default=None,
                        help="also append the tables to this file")
    parser.add_argument("--profile", action="store_true",
                        help="run each experiment under cProfile and "
                             "append a top-20 cumulative-time hotspot "
                             "table to the report")
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.figures else args.figures
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")

    sink = open(args.out, "a") if args.out else None
    try:
        for name in names:
            title, fn, takes_scale = EXPERIMENTS[name]
            t0 = time.time()
            if args.profile:
                import cProfile
                pr = cProfile.Profile()
                pr.enable()
                try:
                    rows = fn(scale=args.scale) if takes_scale else fn()
                finally:
                    pr.disable()
            else:
                rows = fn(scale=args.scale) if takes_scale else fn()
            table = format_table(rows, title=title)
            footer = f"[{name}: {len(rows)} rows in {time.time()-t0:.1f}s " \
                     f"wall at scale={args.scale}]"
            print(table)
            print(footer)
            print()
            if sink:
                sink.write(table + "\n" + footer + "\n\n")
            if args.profile:
                hot = _profile_table(
                    pr, title=f"{name} — top 20 hotspots by cumulative "
                              f"time")
                print(hot)
                print()
                if sink:
                    sink.write(hot + "\n\n")
            if name in ARTIFACTS:
                path = ARTIFACTS[name](rows)
                print(f"[{name}: artifact written to {path}]")
    finally:
        if sink:
            sink.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
