"""Benchmark harness: stats, the YCSB driver, canned per-figure experiments."""

from .runner import drive_ycsb, preload_dicts, preload_hydra, run_hydra_ycsb
from .stats import LatencySummary, RunResult, summarize

__all__ = [
    "drive_ycsb",
    "preload_hydra",
    "preload_dicts",
    "run_hydra_ycsb",
    "LatencySummary",
    "RunResult",
    "summarize",
]
